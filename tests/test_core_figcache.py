"""Tests for the FIGARO engine, FIGCache tag store, policies, and mechanisms."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import BaseMechanism, LISAVillaConfig, LISAVillaMechanism
from repro.core import (FIGCache, FIGCacheConfig, FigTagStore, FigaroEngine,
                        InsertAnyMissPolicy, MissCountThresholdPolicy,
                        RelocationRequest, make_replacement_policy)
from repro.core.replacement import (LRUReplacement, RandomReplacement,
                                    RowBenefitReplacement,
                                    SegmentBenefitReplacement,
                                    available_replacement_policies)
from repro.dram import Channel, DRAMConfig


def make_channel(fast_subarrays=2, channels=1):
    config = DRAMConfig(channels=channels,
                        fast_subarrays_per_bank=fast_subarrays)
    return config, Channel(config, 0, refresh_enabled=False)


# ----------------------------------------------------------------------
# FIGARO engine.
# ----------------------------------------------------------------------
class TestFigaroEngine:
    def test_relocation_latency_matches_paper_63_5ns(self):
        engine = FigaroEngine(DRAMConfig(fast_subarrays_per_bank=2))
        latency = engine.relocation_latency_ns(1, source_already_open=False,
                                               destination_fast=False)
        assert latency == pytest.approx(63.5)

    def test_open_source_row_reduces_latency(self):
        engine = FigaroEngine(DRAMConfig(fast_subarrays_per_bank=2))
        closed = engine.relocation_latency_ns(16, source_already_open=False)
        opened = engine.relocation_latency_ns(16, source_already_open=True)
        assert opened < closed

    def test_validate_rejects_same_subarray(self):
        config = DRAMConfig(fast_subarrays_per_bank=2)
        engine = FigaroEngine(config)
        request = RelocationRequest(flat_bank=0, source_row=0,
                                    source_column=0, destination_row=1,
                                    destination_column=0, num_blocks=1)
        with pytest.raises(ValueError):
            engine.validate(request)

    def test_validate_rejects_out_of_row_columns(self):
        config = DRAMConfig(fast_subarrays_per_bank=2)
        engine = FigaroEngine(config)
        request = RelocationRequest(flat_bank=0, source_row=0,
                                    source_column=120,
                                    destination_row=config.fast_region_row(0),
                                    destination_column=0, num_blocks=16)
        with pytest.raises(ValueError):
            engine.validate(request)

    def test_relocate_executes_on_channel(self):
        config, channel = make_channel()
        engine = FigaroEngine(config)
        request = RelocationRequest(flat_bank=0, source_row=5,
                                    source_column=0,
                                    destination_row=config.fast_region_row(0),
                                    destination_column=16, num_blocks=16)
        outcome = engine.relocate(channel, 0, request)
        assert outcome.reloc_commands == 16
        assert channel.counters.relocs == 16

    def test_unaligned_columns_are_allowed(self):
        config = DRAMConfig(fast_subarrays_per_bank=2)
        engine = FigaroEngine(config)
        request = RelocationRequest(flat_bank=0, source_row=5,
                                    source_column=48,
                                    destination_row=config.fast_region_row(0),
                                    destination_column=96, num_blocks=16)
        engine.validate(request)  # must not raise


# ----------------------------------------------------------------------
# Tag store.
# ----------------------------------------------------------------------
class TestTagStore:
    def test_geometry(self):
        tags = FigTagStore(num_cache_rows=64, segments_per_row=8)
        assert tags.num_slots == 512
        assert tags.cache_row_of_slot(17) == 2
        assert tags.slot_offset_in_row(17) == 1
        assert tags.slots_of_cache_row(1) == list(range(8, 16))

    def test_insert_lookup_evict_cycle(self):
        tags = FigTagStore(4, 8)
        entry = tags.insert(3, source_row=100, source_segment=2)
        assert tags.lookup(100, 2) is entry
        assert entry.benefit == 1
        snapshot = tags.evict(3)
        assert snapshot.source_row == 100
        assert tags.lookup(100, 2) is None

    def test_double_insert_same_slot_rejected(self):
        tags = FigTagStore(2, 8)
        tags.insert(0, 1, 1)
        with pytest.raises(ValueError):
            tags.insert(0, 2, 2)

    def test_duplicate_segment_rejected(self):
        tags = FigTagStore(2, 8)
        tags.insert(0, 1, 1)
        with pytest.raises(ValueError):
            tags.insert(1, 1, 1)

    def test_touch_saturates_benefit(self):
        tags = FigTagStore(2, 8, benefit_bits=5)
        entry = tags.insert(0, 1, 1)
        for _ in range(100):
            tags.touch(entry, is_write=False)
        assert entry.benefit == 31

    def test_touch_write_sets_dirty(self):
        tags = FigTagStore(2, 8)
        entry = tags.insert(0, 1, 1)
        tags.touch(entry, is_write=True)
        assert entry.dirty

    def test_row_benefit_sums_valid_entries(self):
        tags = FigTagStore(2, 4)
        tags.insert(0, 1, 0)
        entry = tags.insert(1, 2, 0)
        tags.touch(entry, False)
        assert tags.row_benefit(0) == 3
        assert tags.row_benefit(1) == 0

    def test_storage_bits_match_paper(self):
        tags = FigTagStore(64, 8, benefit_bits=5)
        # 32K rows x 8 segments -> 256K segments -> 19-bit tag per the paper,
        # 26 bits per entry in total (tag + benefit + valid + dirty).
        assert tags.storage_bits_per_entry(32768, 8) in (25, 26)

    @given(st.lists(st.tuples(st.integers(0, 499), st.integers(0, 7)),
                    min_size=1, max_size=64, unique=True))
    @settings(max_examples=50, deadline=None)
    def test_occupancy_matches_valid_entries(self, segments):
        tags = FigTagStore(16, 8)
        free = tags.free_slots()
        for slot, (row, segment) in zip(free, segments):
            tags.insert(slot, row, segment)
        inserted = min(len(free), len(segments))
        assert tags.occupancy() == pytest.approx(inserted / tags.num_slots)
        assert len(tags.valid_entries()) == inserted


# ----------------------------------------------------------------------
# Replacement policies.
# ----------------------------------------------------------------------
def filled_tag_store(rows=4, segments=4):
    tags = FigTagStore(rows, segments)
    for slot in range(tags.num_slots):
        tags.insert(slot, source_row=1000 + slot, source_segment=0)
    return tags


class TestReplacementPolicies:
    def test_available_policies(self):
        assert set(available_replacement_policies()) == {
            "LRU", "Random", "RowBenefit", "SegmentBenefit"}

    def test_factory_rejects_unknown(self):
        with pytest.raises(ValueError):
            make_replacement_policy("MRU", FigTagStore(2, 2))

    def test_segment_benefit_evicts_lowest(self):
        tags = filled_tag_store()
        hot = tags.lookup(1000 + 5, 0)
        for _ in range(10):
            tags.touch(hot, False)
        policy = SegmentBenefitReplacement(tags)
        assert policy.choose_victim() != 5

    def test_lru_evicts_least_recently_used(self):
        tags = filled_tag_store()
        for slot in range(1, tags.num_slots):
            tags.touch(tags.entry(slot), False)
        policy = LRUReplacement(tags)
        assert policy.choose_victim() == 0

    def test_random_is_deterministic_given_seed(self):
        tags = filled_tag_store()
        a = RandomReplacement(tags, seed=7).choose_victim()
        b = RandomReplacement(filled_tag_store(), seed=7).choose_victim()
        assert a == b

    def test_row_benefit_drains_one_row_before_moving_on(self):
        tags = filled_tag_store(rows=4, segments=4)
        # Make cache row 2 the coldest row.
        for slot in range(tags.num_slots):
            if tags.cache_row_of_slot(slot) != 2:
                tags.touch(tags.entry(slot), False)
        policy = RowBenefitReplacement(tags)
        victims = []
        for _ in range(4):
            victim = policy.choose_victim()
            victims.append(victim)
            tags.evict(victim)
            policy.notify_eviction(victim)
            # Refill the slot with a new segment, as FIGCache would.
            tags.insert(victim, 5000 + victim, 1)
        assert all(tags.cache_row_of_slot(v) == 2 for v in victims)
        assert policy.eviction_row is None

    def test_row_benefit_requires_valid_entries(self):
        tags = FigTagStore(2, 2)
        policy = RowBenefitReplacement(tags)
        with pytest.raises(ValueError):
            policy.choose_victim()


# ----------------------------------------------------------------------
# Insertion policies.
# ----------------------------------------------------------------------
class TestInsertionPolicies:
    def test_insert_any_miss_always_inserts(self):
        policy = InsertAnyMissPolicy()
        assert policy.should_insert(1, 1)
        assert policy.should_insert(2, 3)

    def test_threshold_policy_counts_misses(self):
        policy = MissCountThresholdPolicy(threshold=3)
        assert not policy.should_insert(1, 0)
        assert not policy.should_insert(1, 0)
        assert policy.should_insert(1, 0)
        # Counter resets once the segment is inserted.
        assert not policy.should_insert(1, 0)

    def test_threshold_one_behaves_like_insert_any_miss(self):
        policy = MissCountThresholdPolicy(threshold=1)
        assert policy.should_insert(9, 9)

    def test_threshold_policy_bounds_tracking(self):
        policy = MissCountThresholdPolicy(threshold=4, max_tracked=10)
        for row in range(50):
            policy.should_insert(row, 0)
        assert policy.tracked_segments <= 10

    def test_threshold_must_be_positive(self):
        with pytest.raises(ValueError):
            MissCountThresholdPolicy(threshold=0)


# ----------------------------------------------------------------------
# FIGCache mechanism.
# ----------------------------------------------------------------------
class TestFIGCacheMechanism:
    def test_config_validation(self):
        dram = DRAMConfig(fast_subarrays_per_bank=2)
        FIGCacheConfig().validate(dram)
        with pytest.raises(ValueError):
            FIGCacheConfig(placement="bogus").validate(dram)
        with pytest.raises(ValueError):
            FIGCacheConfig(segment_blocks=10).validate(dram)
        with pytest.raises(ValueError):
            FIGCacheConfig(cache_rows_per_bank=65).validate(dram)

    def test_miss_then_hit_sequence(self):
        config, channel = make_channel()
        cache = FIGCache(config, FIGCacheConfig())
        decoded = channel.config and None
        device_decoded = __import__("repro.dram.address",
                                    fromlist=["AddressMapper"])
        mapper = device_decoded.AddressMapper(config)
        decoded = mapper.decode(0x40000)
        first = cache.service(channel, 0, decoded, 0, False)
        assert first.in_dram_cache_hit is False
        assert cache.stats.insertions == 1
        second = cache.service(channel, first.bank_busy_until + 1000,
                               decoded, 0, False)
        assert second.in_dram_cache_hit is True
        assert cache.stats.cache_hit_rate == pytest.approx(0.5)

    def test_effective_row_redirects_after_insertion(self):
        config, channel = make_channel()
        cache = FIGCache(config, FIGCacheConfig())
        from repro.dram.address import AddressMapper

        decoded = AddressMapper(config).decode(0x80000)
        cache.service(channel, 0, decoded, 0, False)
        # Close the bank so the open-row preference does not apply.
        channel.bank(0).precharge(10 ** 6)
        effective = cache.effective_row(channel, decoded, 0)
        assert effective >= config.regular_rows_per_bank

    def test_ideal_placement_has_zero_relocation_cycles(self):
        config, channel = make_channel()
        cache = FIGCache(config, FIGCacheConfig(placement="ideal"))
        from repro.dram.address import AddressMapper

        decoded = AddressMapper(config).decode(0x90000)
        result = cache.service(channel, 0, decoded, 0, False)
        assert result.relocation_cycles == 0
        assert cache.stats.insertions == 1

    def test_slow_placement_excludes_reserved_subarray(self):
        config = DRAMConfig()
        channel = Channel(config, 0, refresh_enabled=False)
        cache = FIGCache(config, FIGCacheConfig(placement="slow"))
        from repro.dram.address import DecodedAddress

        reserved_row = config.regular_rows_per_bank - 1
        decoded = DecodedAddress(channel=0, rank=0, bankgroup=0, bank=0,
                                 row=reserved_row, column_block=0)
        cache.service(channel, 0, decoded, 0, False)
        assert cache.stats.insertions == 0

    def test_eviction_after_filling_cache(self):
        config, channel = make_channel()
        cache_config = FIGCacheConfig(cache_rows_per_bank=1,
                                      segment_blocks=16)
        cache = FIGCache(config, cache_config)
        from repro.dram.address import DecodedAddress

        now = 0
        segments_per_row = config.blocks_per_row // 16
        for index in range(segments_per_row + 2):
            decoded = DecodedAddress(channel=0, rank=0, bankgroup=0, bank=0,
                                     row=index * 7 + 1, column_block=0)
            result = cache.service(channel, now, decoded, 0, False)
            now = result.bank_busy_until + 100
        assert cache.stats.evictions == 2

    def test_dirty_eviction_triggers_writeback(self):
        config, channel = make_channel()
        cache_config = FIGCacheConfig(cache_rows_per_bank=1,
                                      segment_blocks=64)
        cache = FIGCache(config, cache_config)
        from repro.dram.address import DecodedAddress

        now = 0
        for index in range(3):
            decoded = DecodedAddress(channel=0, rank=0, bankgroup=0, bank=0,
                                     row=index * 11 + 1, column_block=0)
            result = cache.service(channel, now, decoded, 0, True)
            now = result.bank_busy_until + 100
        assert cache.stats.dirty_writebacks >= 1


# ----------------------------------------------------------------------
# Baselines.
# ----------------------------------------------------------------------
class TestBaselines:
    def test_base_mechanism_never_reports_cache_hits(self):
        config, channel = make_channel(fast_subarrays=0)
        base = BaseMechanism()
        from repro.dram.address import AddressMapper

        decoded = AddressMapper(config).decode(0x1234 * 64)
        result = base.service(channel, 0, decoded, 0, False)
        assert result.in_dram_cache_hit is None
        assert base.effective_row(channel, decoded, 0) == decoded.row

    def test_lisa_villa_requires_fast_rows(self):
        with pytest.raises(ValueError):
            LISAVillaMechanism(DRAMConfig(fast_subarrays_per_bank=0))

    def test_lisa_villa_hop_distance_bounded_by_period(self):
        config = DRAMConfig(fast_subarrays_per_bank=16)
        lisa = LISAVillaMechanism(config, LISAVillaConfig())
        period = config.subarrays_per_bank // 16
        for row in range(0, config.regular_rows_per_bank,
                         config.rows_per_subarray):
            assert 1 <= lisa.hop_distance(row) <= period

    def test_lisa_villa_miss_then_hit(self):
        config = DRAMConfig(fast_subarrays_per_bank=16)
        channel = Channel(config, 0, refresh_enabled=False)
        lisa = LISAVillaMechanism(config)
        from repro.dram.address import AddressMapper

        decoded = AddressMapper(config).decode(0x200000)
        first = lisa.service(channel, 0, decoded, 0, False)
        assert first.in_dram_cache_hit is False
        channel.bank(0).precharge(first.bank_busy_until + 10)
        second = lisa.service(channel, first.bank_busy_until + 1000, decoded,
                              0, False)
        assert second.in_dram_cache_hit is True
        assert second.served_fast

    def test_lisa_villa_caches_whole_rows(self):
        config = DRAMConfig(fast_subarrays_per_bank=16)
        channel = Channel(config, 0, refresh_enabled=False)
        lisa = LISAVillaMechanism(config)
        from repro.dram.address import DecodedAddress

        a = DecodedAddress(0, 0, 0, 0, row=77, column_block=0)
        b = DecodedAddress(0, 0, 0, 0, row=77, column_block=100)
        first = lisa.service(channel, 0, a, 0, False)
        channel.bank(0).precharge(first.bank_busy_until + 10)
        second = lisa.service(channel, first.bank_busy_until + 500, b, 0,
                              False)
        assert second.in_dram_cache_hit is True
