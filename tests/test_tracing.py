"""Tests for event-level tracing and the unified metrics export (PR 8).

Pins the four contracts the observability layer makes:

* **Zero overhead when off** — the tracer attribute defaults to ``None``
  everywhere, and running with a tracer installed never changes the
  simulated result (tracing observes; it must not perturb).
* **Bounded memory** — the ring buffer keeps at most ``max_events``
  records and counts what it dropped.
* **Valid Chrome trace JSON** — ``to_chrome_trace`` emits events the
  Perfetto / ``chrome://tracing`` loaders accept: known phase codes,
  microsecond timestamps, matched async begin/end pairs, and metadata
  naming rows after channels and banks.
* **One metrics snapshot** — ``metrics_snapshot`` exposes cache,
  executor, and controller counters as one JSON-ready dict, and
  ``to_prometheus_text`` renders its numeric leaves as gauges.
"""

import json

import pytest

from repro.cli import main
from repro.experiments.engine import ExperimentScale, JobExecutor, ResultCache
from repro.experiments.engine.spec import SimJob
from repro.sim.config import make_system_config
from repro.sim.metrics_export import (METRICS_SCHEMA_VERSION,
                                      metrics_snapshot, to_prometheus_text,
                                      write_metrics)
from repro.sim.system import System, run_workload
from repro.sim.tracing import (CMD, MECH, REQ, TRACE_SCHEMA_VERSION,
                               EventTracer, to_chrome_trace,
                               write_chrome_trace)
from repro.workloads.catalog import get_benchmark

#: Enough records to fill queues and trigger FIGCache inserts/evicts.
TRACE_RECORDS = 600

#: Chrome trace-event phase codes this exporter is allowed to emit.
ALLOWED_PHASES = {"i", "b", "n", "e", "X", "M"}


def _traced_run(configuration="FIGCache-Fast", workload="mcf",
                backend="python", tracer=None, **kwargs):
    """Run one single-core workload, returning (result_dict, tracer)."""
    config = make_system_config(configuration, channels=1, backend=backend,
                                **kwargs)
    traces = [get_benchmark(workload).make_trace(TRACE_RECORDS)]
    result = run_workload(config, traces, workload, tracer=tracer)
    return result.to_dict(), config


class TestZeroOverheadOff:
    def test_tracer_defaults_to_none_everywhere(self):
        config = make_system_config("FIGCache-Fast", channels=1)
        traces = [get_benchmark("mcf").make_trace(64)]
        system = System(config, traces)
        assert system.tracer is None
        for cc in system.controller.channel_controllers:
            assert cc.tracer is None
            assert cc.channel.tracer is None
        for mechanism in system.mechanisms:
            assert mechanism.tracer is None

    @pytest.mark.parametrize("backend", ("python", "turbo"))
    @pytest.mark.parametrize("configuration",
                             ("Base", "FIGCache-Fast", "LISA-VILLA"))
    def test_tracing_never_changes_results(self, configuration, backend):
        baseline, _ = _traced_run(configuration, backend=backend)
        traced, _ = _traced_run(configuration, backend=backend,
                                tracer=EventTracer())
        assert traced == baseline


class TestRingBuffer:
    def test_bounding_and_drop_accounting(self):
        tracer = EventTracer(max_events=50)
        _traced_run(tracer=tracer)
        assert len(tracer.events) == 50
        assert tracer.total_events > 50
        assert tracer.dropped_events == tracer.total_events - 50

    def test_unbounded_enough_buffer_drops_nothing(self):
        tracer = EventTracer()
        _traced_run(tracer=tracer)
        assert tracer.total_events == len(tracer.events)
        assert tracer.dropped_events == 0

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            EventTracer(max_events=0)

    def test_records_every_kind(self):
        tracer = EventTracer()
        _traced_run(tracer=tracer)
        kinds = {event[0] for event in tracer.events}
        # Refresh events need a longer run than this to come due; the
        # command, request, and mechanism hooks must all have fired.
        assert {CMD, REQ, MECH} <= kinds


class TestChromeTraceExport:
    @pytest.fixture(scope="class")
    def trace_doc(self):
        tracer = EventTracer()
        config = make_system_config("FIGCache-Fast", channels=1)
        traces = [get_benchmark("mcf").make_trace(TRACE_RECORDS)]
        run_workload(config, traces, "mcf", tracer=tracer)
        return to_chrome_trace(tracer, config.dram,
                               metadata={"workload": "mcf"})

    def test_document_shape(self, trace_doc):
        assert isinstance(trace_doc["traceEvents"], list)
        assert trace_doc["traceEvents"]
        assert trace_doc["displayTimeUnit"] == "ns"
        other = trace_doc["otherData"]
        assert other["schema"] == TRACE_SCHEMA_VERSION
        assert other["dropped_events"] == 0
        assert other["recorded_events"] == other["total_events"]
        assert other["workload"] == "mcf"

    def test_json_serializable(self, trace_doc):
        payload = json.dumps(trace_doc)
        assert json.loads(payload) == trace_doc

    def test_events_have_required_fields(self, trace_doc):
        for event in trace_doc["traceEvents"]:
            assert event["ph"] in ALLOWED_PHASES
            assert "pid" in event
            if event["ph"] == "M":
                assert event["name"] in ("process_name", "thread_name")
            else:
                assert "tid" in event
                assert isinstance(event["ts"], float)
                assert event["ts"] >= 0.0

    def test_async_request_spans_are_matched(self, trace_doc):
        begins = [e for e in trace_doc["traceEvents"]
                  if e["ph"] == "b" and e["cat"] == "request"]
        ends = [e for e in trace_doc["traceEvents"]
                if e["ph"] == "e" and e["cat"] == "request"]
        assert begins
        assert sorted(e["id"] for e in begins) == \
            sorted(e["id"] for e in ends)

    def test_command_and_mechanism_instants_present(self, trace_doc):
        names = {e["name"] for e in trace_doc["traceEvents"]
                 if e["ph"] == "i" and e.get("cat") == "dram"}
        assert {"ACT", "RD"} <= names
        mech = [e for e in trace_doc["traceEvents"]
                if e.get("cat") == "mechanism"]
        assert mech
        assert all("args" in e for e in mech)

    def test_metadata_names_channels_and_banks(self, trace_doc):
        names = [e for e in trace_doc["traceEvents"] if e["ph"] == "M"]
        process_names = {e["args"]["name"] for e in names
                         if e["name"] == "process_name"}
        assert any(n.startswith("channel ") for n in process_names)
        thread_names = {e["args"]["name"] for e in names
                        if e["name"] == "thread_name"}
        assert any(n.startswith("bank ") for n in thread_names)

    def test_write_chrome_trace_round_trips(self, tmp_path):
        tracer = EventTracer()
        config = make_system_config("Base", channels=1)
        traces = [get_benchmark("gcc").make_trace(64)]
        run_workload(config, traces, "gcc", tracer=tracer)
        path = write_chrome_trace(tmp_path / "trace.json", tracer,
                                  config.dram)
        doc = json.loads(path.read_text(encoding="utf-8"))
        assert doc["otherData"]["schema"] == TRACE_SCHEMA_VERSION
        assert doc["traceEvents"]


class TestTraceCLI:
    def test_trace_command_writes_valid_json(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert main(["trace", "mcf", "--config", "FIGCache-Fast",
                     "--scale", "tiny", "--out", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "trace written to" in printed
        doc = json.loads(out.read_text(encoding="utf-8"))
        assert doc["traceEvents"]

    def test_trace_command_rejects_unknown_workload(self, capsys):
        assert main(["trace", "not-a-workload"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err


class TestMetricsExport:
    def test_snapshot_always_has_schema_and_host(self):
        snapshot = metrics_snapshot()
        assert snapshot["schema"] == METRICS_SCHEMA_VERSION
        assert snapshot["host"]["cpu_count"] >= 1
        assert "cache" not in snapshot

    def test_executor_section_implies_cache_section(self, tmp_path):
        executor = JobExecutor(cache=ResultCache(str(tmp_path)), jobs=1)
        executor.run([SimJob.single_core("Base", "gcc",
                                         ExperimentScale.tiny())])
        snapshot = metrics_snapshot(executor=executor)
        assert snapshot["executor"]["simulations_executed"] == 1
        assert snapshot["cache"]["stores"] == 1
        assert snapshot["cache"]["disk_entries"] == 1
        executor.close()

    def test_system_section_reports_controller_counters(self):
        config = make_system_config("FIGCache-Fast", channels=1)
        traces = [get_benchmark("mcf").make_trace(TRACE_RECORDS)]
        system = System(config, traces)
        system.run("mcf")
        snapshot = metrics_snapshot(system=system)
        assert snapshot["controller"]["channels"] == 1
        assert snapshot["controller"]["completed_reads"] > 0
        assert snapshot["dram"]["activates"] > 0
        assert snapshot["mechanism"]

    def test_prometheus_text_renders_numeric_leaves(self):
        snapshot = metrics_snapshot()
        text = to_prometheus_text(snapshot)
        assert "# TYPE repro_host_cpu_count gauge" in text
        assert "repro_schema 1" in text
        # Strings never leak into the exposition format.
        assert "python_version" not in text

    def test_write_metrics_picks_format_from_suffix(self, tmp_path):
        snapshot = metrics_snapshot()
        json_path = write_metrics(tmp_path / "m.json", snapshot)
        assert json.loads(json_path.read_text(encoding="utf-8")) == snapshot
        prom_path = write_metrics(tmp_path / "m.prom", snapshot)
        assert "# TYPE" in prom_path.read_text(encoding="utf-8")

    def test_metrics_cli_json_and_prometheus(self, tmp_path, capsys):
        assert main(["metrics", "--cache-dir", "none"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == METRICS_SCHEMA_VERSION
        assert main(["metrics", "--format", "prometheus",
                     "--cache-dir", "none"]) == 0
        assert "# TYPE" in capsys.readouterr().out
        out = tmp_path / "metrics.prom"
        assert main(["metrics", "--format", "prometheus",
                     "--cache-dir", "none", "--out", str(out)]) == 0
        assert "# TYPE" in out.read_text(encoding="utf-8")
