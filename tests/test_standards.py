"""Tests for the multi-standard DRAM device catalog (PR 3).

Covers the profile registry and its validation rules, the per-standard
timing behaviours (bank-group tCCD_S/tCCD_L and tRRD_L pacing, per-bank
vs. all-bank refresh, tREFI/tRFC scaling), the threading of profiles
through ``make_system_config`` / energy, golden-stability of the DDR4-1600
default path against the PR-2 fixtures, and the ``dram-types`` study.
"""

import dataclasses
import json
from pathlib import Path

import pytest

from repro.dram.config import DRAMConfig
from repro.dram.channel import Channel
from repro.dram.standards import (PROFILES, STANDARD_NAMES, DeviceProfile,
                                  get_profile, list_profiles,
                                  register_profile)
from repro.dram.timings import DRAMTimings, TimingSet
from repro.energy.standard_power import STANDARD_ENERGY
from repro.experiments.engine import ExperimentScale, SimJob
from repro.experiments.figures import figure_dram_types
from repro.sim.config import config_digest, make_system_config
from repro.sim.system import run_workload
from repro.workloads.catalog import get_benchmark

GOLDEN_PATH = Path(__file__).parent / "golden" / "scheduler_equivalence.json"


# ----------------------------------------------------------------------
# Registry and profiles.
# ----------------------------------------------------------------------
class TestCatalog:
    def test_required_standards_present(self):
        assert {"DDR4-1600", "DDR4-2400", "DDR4-3200", "LPDDR4-3200",
                "HBM2", "DDR5-4800"} <= set(PROFILES)
        assert STANDARD_NAMES == tuple(PROFILES)

    def test_unknown_standard_raises(self):
        with pytest.raises(ValueError, match="unknown DRAM standard"):
            get_profile("DDR3-1333")

    def test_profiles_are_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            get_profile("HBM2").name = "HBM3"

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_profile(get_profile("DDR4-1600"))

    def test_every_profile_builds_a_valid_config(self):
        for profile in list_profiles():
            config = profile.dram_config()
            assert config.standard == profile.name
            assert config.refresh_mode == profile.refresh_mode
            assert config.banks_per_rank == profile.banks_per_rank
            # The cycle conversion must accept every profile's table.
            TimingSet.from_timings(config.timings, config.cpu_clock_ghz)

    def test_ddr4_1600_profile_matches_historical_defaults(self):
        config = get_profile("DDR4-1600").dram_config()
        default = DRAMConfig()
        for field in dataclasses.fields(DRAMConfig):
            assert getattr(config, field.name) == \
                getattr(default, field.name), field.name


class TestProfileValidation:
    def _base_kwargs(self, **overrides):
        kwargs = dict(name="TEST", family="DDR4", data_rate_mts=1600,
                      bankgroups_per_rank=4, banks_per_bankgroup=4,
                      subarrays_per_bank=4, rows_per_subarray=128,
                      row_size_bytes=8192, timings=DRAMTimings())
        kwargs.update(overrides)
        return kwargs

    def test_valid_profile_constructs(self):
        DeviceProfile(**self._base_kwargs())

    def test_row_size_divisibility(self):
        with pytest.raises(ValueError, match="multiple of the 64 B"):
            DeviceProfile(**self._base_kwargs(row_size_bytes=100))

    def test_non_power_of_two_banks(self):
        with pytest.raises(ValueError, match="power of two"):
            DeviceProfile(**self._base_kwargs(banks_per_bankgroup=3))

    def test_tccd_split_requires_bank_groups(self):
        timings = DRAMTimings(tccd_s_ns=2.5)
        with pytest.raises(ValueError, match="single bank group"):
            DeviceProfile(**self._base_kwargs(bankgroups_per_rank=1,
                                              banks_per_bankgroup=8,
                                              timings=timings))

    def test_tccd_s_must_not_exceed_tccd_l(self):
        timings = DRAMTimings(tccd_ns=5.0, tccd_s_ns=6.0)
        with pytest.raises(ValueError, match="tCCD_S"):
            DeviceProfile(**self._base_kwargs(timings=timings))

    def test_trrd_l_must_not_be_below_trrd(self):
        timings = DRAMTimings(trrd_ns=6.25, trrd_l_ns=5.0)
        with pytest.raises(ValueError, match="tRRD_L"):
            DeviceProfile(**self._base_kwargs(timings=timings))

    def test_tfaw_trrd_consistency(self):
        timings = DRAMTimings(trrd_ns=10.0, tfaw_ns=5.0)
        with pytest.raises(ValueError, match="tFAW"):
            DeviceProfile(**self._base_kwargs(timings=timings))

    def test_per_bank_refresh_needs_trfc_pb(self):
        with pytest.raises(ValueError, match="trfc_pb_ns"):
            DeviceProfile(**self._base_kwargs(refresh_mode="per-bank"))

    def test_trefi_must_exceed_trfc(self):
        timings = DRAMTimings(trefi_ns=100.0, trfc_ns=350.0)
        with pytest.raises(ValueError, match="tREFI"):
            DeviceProfile(**self._base_kwargs(timings=timings))

    def test_negative_timing_rejected(self):
        timings = DRAMTimings(twr_ns=-1.0)
        with pytest.raises(ValueError, match="twr_ns"):
            DeviceProfile(**self._base_kwargs(timings=timings))


# ----------------------------------------------------------------------
# Bank-group timing behaviour (tCCD_S/tCCD_L, tRRD_L).
# ----------------------------------------------------------------------
def _channel_for(standard: str) -> Channel:
    config = get_profile(standard).dram_config()
    return Channel(config, 0, refresh_enabled=False)


class TestBankGroupPacing:
    def test_flat_standard_has_pacing_disabled(self):
        channel = _channel_for("DDR4-1600")
        assert not channel.bank(0)._col_pacing
        assert not channel.bank(0)._act_bg_pacing

    def test_bank_grouped_standard_has_pacing_enabled(self):
        for standard in ("DDR4-2400", "DDR4-3200", "HBM2", "DDR5-4800"):
            bank = _channel_for(standard).bank(0)
            assert bank._col_pacing, standard
            assert bank._act_bg_pacing, standard

    @staticmethod
    def _hit_gap(standard: str, first_bank: int, second_bank: int) -> int:
        """Completion gap of back-to-back row hits to two open banks."""
        channel = _channel_for(standard)
        channel.access(0, first_bank, 100, False)       # open the rows,
        channel.access(2000, second_bank, 100, False)   # well separated
        start = 10_000
        first = channel.access(start, first_bank, 100, False)
        second = channel.access(start, second_bank, 100, False)
        assert first.outcome == second.outcome == "hit"
        return second.completion_cycle - first.completion_cycle

    def test_same_group_columns_spaced_at_tccd_l(self):
        # Banks 0 and 1 share bank group 0; banks 0 and 4 are in different
        # groups.  Row hits isolate the column-command spacing.
        timing = get_profile("DDR4-3200").dram_config().slow_timing_set()
        assert timing.tccd_s < timing.tccd  # the split is real
        same_gap = self._hit_gap("DDR4-3200", 0, 1)
        cross_gap = self._hit_gap("DDR4-3200", 0, 4)
        assert same_gap == timing.tccd
        assert cross_gap == max(timing.tccd_s, timing.tbl)
        assert same_gap > cross_gap

    def test_ddr4_1600_cross_bank_gap_is_burst_limited(self):
        # The flat standard keeps the historical behaviour: consecutive
        # hit bursts are paced by bus occupancy only.
        timing = get_profile("DDR4-1600").dram_config().slow_timing_set()
        assert self._hit_gap("DDR4-1600", 0, 1) == timing.tbl

    def test_tccd_l_survives_an_interleaved_other_group_command(self):
        # bg0 -> bg1 -> bg0: the third command is paced at tCCD_L from
        # the FIRST one (per-group tracking), not tCCD_S from the second.
        profile = get_profile("DDR4-3200")
        exotic = dataclasses.replace(profile.timings, tccd_s_ns=0.625)
        config = dataclasses.replace(profile.dram_config(), timings=exotic)
        timing = config.slow_timing_set()
        assert 2 * timing.tccd_s < timing.tccd
        channel = Channel(config, 0, refresh_enabled=False)
        for bank in (0, 1, 4):                      # open the rows
            channel.access(0, bank, 100, False)
        start = 10_000
        first = channel.access(start, 0, 100, False)
        channel.access(start, 4, 100, False)        # other bank group
        third = channel.access(start, 1, 100, False)  # bg0 again
        assert third.completion_cycle - first.completion_cycle \
            >= timing.tccd

    def test_same_group_activates_spaced_at_trrd_l(self):
        timing = get_profile("DDR5-4800").dram_config().slow_timing_set()
        assert timing.trrd_l > timing.trrd

        same = _channel_for("DDR5-4800")
        first = same.access(0, 0, 100, False)
        second = same.access(0, 1, 200, False)
        same_gap = second.completion_cycle - first.completion_cycle

        cross = _channel_for("DDR5-4800")
        first = cross.access(0, 0, 100, False)
        second = cross.access(0, 4, 200, False)
        cross_gap = second.completion_cycle - first.completion_cycle

        assert same_gap == timing.trrd_l
        assert cross_gap < same_gap


# ----------------------------------------------------------------------
# Refresh behaviour per standard.
# ----------------------------------------------------------------------
class TestRefreshPerStandard:
    def test_all_bank_refresh_closes_every_bank(self):
        channel = _channel_for_refresh("DDR4-1600")
        timing = get_profile("DDR4-1600").dram_config().slow_timing_set()
        channel.access(0, 3, 100, False)
        assert channel.bank(3).open_row == 100
        channel.access(timing.trefi + 1, 0, 50, False)
        assert channel.counters.refreshes == 1
        assert channel.bank(3).open_row is None

    def test_per_bank_refresh_touches_only_the_target(self):
        channel = _channel_for_refresh("HBM2")
        config = get_profile("HBM2").dram_config()
        rank = channel.rank_of_bank(0)
        interval = rank.refresh_interval
        assert interval == config.slow_timing_set().trefi \
            // config.banks_per_rank
        channel.access(0, 3, 100, False)
        assert channel.bank(3).open_row == 100
        # One pending refresh; the round-robin pointer targets bank 0.
        channel.access(interval + 1, 1, 50, False)
        assert channel.counters.refreshes == 1
        assert rank.last_refreshed_bank == 0
        assert rank.refresh_bank_pointer == 1
        assert channel.bank(0).open_row is None       # refreshed
        assert channel.bank(3).open_row == 100        # untouched

    def test_per_bank_refresh_blocks_the_accessed_target(self):
        channel = _channel_for_refresh("LPDDR4-3200")
        rank = channel.rank_of_bank(0)
        interval, duration = rank.refresh_interval, rank.refresh_duration
        # Bank 0 is the refresh target; an access to it right after the
        # due cycle must wait out tRFCpb from the due slot.
        result = channel.access(interval + 1, 0, 10, False)
        assert result.issue_cycle >= interval + duration

    def test_per_bank_catchup_does_not_serialise_the_backlog(self):
        # A long idle gap accrues many pending refreshes; they are stamped
        # at their due slots, so the bank blocked longest is only blocked
        # from its own last slot, not now + backlog * tRFCpb.
        channel = _channel_for_refresh("HBM2")
        rank = channel.rank_of_bank(0)
        interval, duration = rank.refresh_interval, rank.refresh_duration
        gap = 50 * interval
        result = channel.access(gap + 1, 0, 10, False)
        assert channel.counters.refreshes == 50
        assert result.completion_cycle < gap + 2 * (interval + duration)

    def test_trefi_scaling_changes_refresh_count(self):
        # Halving tREFI doubles the refreshes observed over the same span.
        base_profile = get_profile("DDR4-1600")
        fast_refresh = dataclasses.replace(base_profile.timings,
                                           trefi_ns=3900.0)
        slow = DRAMConfig.from_profile(base_profile)
        fast = dataclasses.replace(slow, timings=fast_refresh)
        span = slow.slow_timing_set().trefi * 6 + 1
        counts = []
        for config in (slow, fast):
            channel = Channel(config, 0, refresh_enabled=True)
            channel.access(span, 0, 10, False)
            counts.append(channel.counters.refreshes)
        assert counts[1] == 2 * counts[0]

    def test_refresh_disabled_per_bank_mode(self):
        config = get_profile("LPDDR4-3200").dram_config()
        channel = Channel(config, 0, refresh_enabled=False)
        channel.access(10 ** 7, 0, 10, False)
        assert channel.counters.refreshes == 0


def _channel_for_refresh(standard: str) -> Channel:
    return Channel(get_profile(standard).dram_config(), 0,
                   refresh_enabled=True)


# ----------------------------------------------------------------------
# Threading through the system configuration and energy model.
# ----------------------------------------------------------------------
class TestSystemThreading:
    def test_standard_flows_into_config_and_digest(self):
        default = make_system_config("Base")
        explicit = make_system_config("Base", standard="DDR4-1600")
        hbm = make_system_config("Base", standard="HBM2")
        assert default == explicit
        assert config_digest(default) == config_digest(explicit)
        assert hbm.standard == "HBM2"
        assert hbm.dram.standard == "HBM2"
        assert config_digest(hbm) != config_digest(default)

    def test_profile_energy_params_are_threaded(self):
        hbm = make_system_config("Base", standard="HBM2")
        assert hbm.dram_energy == STANDARD_ENERGY["HBM2"]

    def test_sim_jobs_key_on_standard(self):
        scale = ExperimentScale.tiny()
        a = SimJob.single_core("Base", "lbm", scale)
        b = SimJob.single_core("Base", "lbm", scale, standard="DDR5-4800")
        assert a.key() != b.key()

    def test_energy_differs_per_standard(self):
        trace = [get_benchmark("lbm").make_trace(400)]
        ddr4 = run_workload(make_system_config("Base"), trace, "lbm")
        hbm = run_workload(make_system_config("Base", standard="HBM2"),
                          trace, "lbm")
        # HBM2's per-access and background energy are far lower; even with
        # different cycle counts the DRAM share must drop.
        assert hbm.energy.dram_nj < ddr4.energy.dram_nj


# ----------------------------------------------------------------------
# Golden stability: the catalog must not disturb the DDR4-1600 path.
# ----------------------------------------------------------------------
class TestGoldenStability:
    def test_default_standard_reproduces_pr2_fixture(self):
        with GOLDEN_PATH.open(encoding="utf-8") as handle:
            golden = json.load(handle)
        key = "single:Base:gcc"
        scale = ExperimentScale.smoke()
        config = make_system_config("Base", channels=1,
                                    standard="DDR4-1600")
        traces = [get_benchmark("gcc").make_trace(scale.single_core_records)]
        assert run_workload(config, traces, "gcc").to_dict() == golden[key]


# ----------------------------------------------------------------------
# The dram-types study.
# ----------------------------------------------------------------------
class TestDramTypesStudy:
    def test_structure_and_positive_speedups(self):
        scale = ExperimentScale.tiny()
        data = figure_dram_types(
            scale, standards=("DDR4-1600", "LPDDR4-3200", "HBM2"),
            benchmarks=("lbm", "mcf"))
        assert data["columns"][0] == "standard"
        # Two non-Base configurations per standard.
        assert len(data["rows"]) == 3 * 2
        standards_seen = {row[0] for row in data["rows"]}
        assert standards_seen == {"DDR4-1600", "LPDDR4-3200", "HBM2"}
        for row in data["rows"]:
            assert row[3] in ("FIGCache-Fast", "LISA-VILLA")
            assert row[4] > 0.0

    def test_figcache_improves_over_base_on_every_standard(self):
        # The headline acceptance claim, at a scale where the in-DRAM
        # cache actually warms up (default-scale trace length).  Two
        # benchmarks keep this affordable; the full six-benchmark study
        # is the CLI run (`python -m repro run-figure dram-types`).
        data = figure_dram_types(ExperimentScale(),
                                 configurations=("FIGCache-Fast",),
                                 benchmarks=("lbm", "bwaves"))
        speedups = {row[0]: row[4] for row in data["rows"]}
        assert set(speedups) == set(STANDARD_NAMES)
        for standard, speedup in speedups.items():
            assert speedup > 1.0, (standard, speedup)

    def test_cli_exposes_dram_types(self):
        from repro.cli import FIGURE_CHOICES, build_parser
        assert "dram-types" in FIGURE_CHOICES
        args = build_parser().parse_args(["run-figure", "dram-types"])
        assert args.figure == "dram-types"
