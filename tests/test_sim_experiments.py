"""Integration tests: system assembly, the event-driven simulator, metrics,
and the experiment runners."""

import pytest

from repro.experiments import (ExperimentScale, figure7_single_core,
                               format_table, rowhammer_activation_study,
                               section42_reloc_timing, section83_overhead,
                               table1_configuration, table2_workloads)
from repro.experiments.runner import geometric_mean
from repro.sim import (CONFIGURATION_NAMES, SystemConfig, make_mechanism,
                       make_system_config, run_workload, weighted_speedup)
from repro.sim.metrics import speedup_over
from repro.workloads import get_benchmark
from repro.workloads.multiprogram import make_multiprogrammed_workload

RECORDS = 2500


def quick_result(configuration, benchmark="lbm", records=RECORDS, **overrides):
    spec = get_benchmark(benchmark)
    trace = spec.make_trace(records)
    config = make_system_config(configuration, channels=1, **overrides)
    return run_workload(config, [trace], benchmark)


class TestSystemConfig:
    def test_all_named_configurations_build(self):
        for name in CONFIGURATION_NAMES:
            config = make_system_config(name, channels=1)
            assert isinstance(config, SystemConfig)
            mechanisms = make_mechanism(config)
            assert len(mechanisms) == 1

    def test_unknown_configuration_rejected(self):
        with pytest.raises(ValueError):
            make_system_config("FancyCache")

    def test_lisa_villa_gets_16_fast_subarrays(self):
        config = make_system_config("LISA-VILLA")
        assert config.dram.fast_subarrays_per_bank == 16
        assert config.dram.fast_rows_per_bank == 512

    def test_figcache_fast_gets_enough_fast_rows(self):
        config = make_system_config("FIGCache-Fast", cache_rows_per_bank=128)
        assert config.dram.fast_rows_per_bank >= 128

    def test_ll_dram_marks_all_subarrays_fast(self):
        config = make_system_config("LL-DRAM")
        assert config.dram.all_subarrays_fast


class TestEndToEndSimulation:
    def test_base_run_produces_consistent_metrics(self):
        result = quick_result("Base")
        assert result.cores[0].instructions > 0
        assert result.total_cycles > 0
        assert 0.0 < result.cores[0].ipc < 3.0
        assert result.memory_reads > 0
        assert result.energy is not None and result.energy.total_nj > 0
        assert result.in_dram_cache_hit_rate == 0.0

    def test_simulation_is_deterministic(self):
        a = quick_result("FIGCache-Fast", records=1200)
        b = quick_result("FIGCache-Fast", records=1200)
        assert a.total_cycles == b.total_cycles
        assert a.dram_counters.activates == b.dram_counters.activates

    def test_figcache_fast_beats_base_on_intensive_workload(self):
        base = quick_result("Base", records=6000)
        fig = quick_result("FIGCache-Fast", records=6000)
        assert fig.in_dram_cache_hit_rate > 0.5
        assert speedup_over(fig, base) > 1.0

    def test_ll_dram_is_the_performance_upper_bound(self):
        base = quick_result("Base", records=4000)
        ll = quick_result("LL-DRAM", records=4000)
        fig = quick_result("FIGCache-Fast", records=4000)
        assert speedup_over(ll, base) >= speedup_over(fig, base) - 0.02

    def test_figcache_ideal_at_least_matches_fast(self):
        fast = quick_result("FIGCache-Fast", records=4000)
        ideal = quick_result("FIGCache-Ideal", records=4000)
        assert ideal.cores[0].ipc >= fast.cores[0].ipc - 0.02

    def test_all_configurations_complete_on_multicore_mix(self):
        workload = make_multiprogrammed_workload(1.0, 0, num_cores=4)
        traces = workload.make_traces(800)
        for name in CONFIGURATION_NAMES:
            config = make_system_config(name, channels=2)
            result = run_workload(config, traces, workload.name)
            assert len(result.cores) == 4
            assert all(core.ipc > 0 for core in result.cores)

    def test_refresh_can_be_disabled(self):
        with_refresh = quick_result("Base", records=2000)
        without = quick_result("Base", records=2000, refresh_enabled=False)
        assert without.dram_counters.refreshes == 0
        assert with_refresh.dram_counters.refreshes >= 0

    def test_memory_writes_counted(self):
        result = quick_result("Base", benchmark="lbm", records=4000)
        assert result.memory_writes > 0

    def test_relocations_recorded_for_figcache(self):
        result = quick_result("FIGCache-Fast", records=3000)
        assert result.relocation_operations > 0
        assert result.dram_counters.relocs > 0


class TestMetrics:
    def test_weighted_speedup_identity(self):
        result = quick_result("Base", records=1500)
        alone = [result.cores[0].ipc]
        assert weighted_speedup(result, alone) == pytest.approx(1.0)

    def test_weighted_speedup_validates_input(self):
        result = quick_result("Base", records=1200)
        with pytest.raises(ValueError):
            weighted_speedup(result, [1.0, 1.0])
        with pytest.raises(ValueError):
            weighted_speedup(result, [0.0])

    def test_row_buffer_hit_rate_in_unit_range(self):
        result = quick_result("Base", records=1500)
        assert 0.0 <= result.row_buffer_hit_rate <= 1.0

    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])


class TestExperimentRunners:
    def test_figure7_smoke(self):
        data = figure7_single_core(ExperimentScale.smoke())
        assert data["figure"] == "Figure 7"
        configurations = {row[1] for row in data["rows"]}
        assert "FIGCache-Fast" in configurations
        assert all(row[2] > 0 for row in data["rows"])

    def test_table1_lists_figaro_and_figcache(self):
        data = table1_configuration()
        text = format_table("Table 1", data["columns"], data["rows"])
        assert "FIGARO" in text
        assert "FIGCache" in text

    def test_table2_reports_all_benchmarks(self):
        data = table2_workloads(records=800)
        assert len(data["rows"]) == 20
        intensive = [row for row in data["rows"] if row[2] == "intensive"]
        non_intensive = [row for row in data["rows"]
                         if row[2] == "non-intensive"]
        mean_intensive = sum(row[3] for row in intensive) / len(intensive)
        mean_non = sum(row[3] for row in non_intensive) / len(non_intensive)
        assert mean_intensive > mean_non

    def test_section42_runner(self):
        data = section42_reloc_timing(iterations=300)
        values = dict((row[0], row[1]) for row in data["rows"])
        assert values["guardbanded RELOC latency (ns)"] == pytest.approx(1.0)

    def test_section83_runner(self):
        data = section83_overhead()
        values = dict((row[0], row[1]) for row in data["rows"])
        assert values["FTS storage per channel (kB)"] == pytest.approx(26.0)

    def test_rowhammer_study_reports_reduced_regular_row_pressure(self):
        data = rowhammer_activation_study(ExperimentScale.smoke(),
                                          benchmark="lbm")
        rows = {row[0]: row for row in data["rows"]}
        base_row = rows["Base"]
        fig_row = rows["FIGCache-Fast"]
        # FIGCache serves most hits from cache rows, so regular rows are
        # activated less often than in the Base system.
        assert fig_row[1] <= base_row[1]

    def test_format_table_renders_all_rows(self):
        text = format_table("T", ["a", "b"], [[1, 2.5], ["x", 3.0]])
        assert "2.500" in text and "x" in text
