"""Tests for the memory controller substrate and the processor-side models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import BaseMechanism
from repro.controller import (FRFCFSScheduler, MemoryController,
                              MemoryRequest)
from repro.core import FIGCache
from repro.cpu import (CacheConfig, CacheHierarchy, CoreConfig,
                       HierarchyConfig, MSHRFile, SetAssociativeCache,
                       TraceCore)
from repro.dram import DRAMConfig, DRAMDevice
from repro.workloads.trace import TraceRecord


def make_controller(mechanism_name="base", channels=1):
    config = DRAMConfig(channels=channels, fast_subarrays_per_bank=2)
    device = DRAMDevice(config, refresh_enabled=False)
    if mechanism_name == "base":
        mechanisms = [BaseMechanism() for _ in range(channels)]
    else:
        mechanisms = [FIGCache(config) for _ in range(channels)]
    controller = MemoryController(device, mechanisms)
    return device, controller


def make_request(device, address, is_write=False, core_id=0, arrival=0):
    request = MemoryRequest(core_id=core_id, address=address,
                            is_write=is_write, arrival_cycle=arrival)
    decoded = device.decode(address)
    request.decoded = decoded
    request.flat_bank = device.flat_bank(decoded)
    return request


# ----------------------------------------------------------------------
# Requests and scheduler.
# ----------------------------------------------------------------------
class TestRequests:
    def test_latency_requires_completion(self):
        request = MemoryRequest(core_id=0, address=64, is_write=False,
                                arrival_cycle=10)
        with pytest.raises(ValueError):
            _ = request.latency
        request.issue_cycle = 20
        request.completion_cycle = 110
        assert request.latency == 100
        assert request.queueing_delay == 10

    def test_request_ids_are_unique_and_increasing(self):
        first = MemoryRequest(0, 0, False, 0)
        second = MemoryRequest(0, 64, False, 0)
        assert second.request_id > first.request_id


class TestFRFCFS:
    def test_prefers_row_hit_over_older_request(self):
        device, controller = make_controller()
        channel = device.channel(0)
        cc = controller.channel_controllers[0]
        # Open row A in bank 0.
        open_req = make_request(device, 0x0)
        cc.enqueue(open_req, 0)
        # ``other_row`` is older (created first), FCFS order in the queue.
        other_row = make_request(device, 0x0 + 8192 * 16 * 4)
        row_a_block1 = make_request(device, 0x0 + 64)
        assert other_row.flat_bank == row_a_block1.flat_bank
        scheduler = FRFCFSScheduler()
        bank = channel.bank(row_a_block1.flat_bank)
        picked = scheduler.pick(bank, [other_row, row_a_block1], (),
                                write_backlog=0, drain_mode=False)
        assert picked is row_a_block1

    def test_falls_back_to_oldest_without_hits(self):
        device, controller = make_controller()
        channel = device.channel(0)
        scheduler = FRFCFSScheduler()
        first = make_request(device, 0x100000)
        second = make_request(device, 0x200000)
        bank = channel.bank(first.flat_bank)
        picked = scheduler.pick(bank, [first, second], (),
                                write_backlog=0, drain_mode=False)
        assert picked is first

    def test_writes_only_issued_with_enough_backlog(self):
        device, _ = make_controller()
        channel = device.channel(0)
        scheduler = FRFCFSScheduler()
        write = make_request(device, 0x3000, is_write=True)
        bank = channel.bank(write.flat_bank)
        picked = scheduler.pick(bank, (), [write],
                                write_backlog=1, drain_mode=False)
        assert picked is None
        backlog = scheduler.config.write_drain_low_watermark
        picked_backlog = scheduler.pick(bank, (), [write],
                                        write_backlog=backlog,
                                        drain_mode=False)
        assert picked_backlog is write
        picked_drain = scheduler.pick(bank, (), [write],
                                      write_backlog=1, drain_mode=True)
        assert picked_drain is write


# ----------------------------------------------------------------------
# Channel controller / memory controller.
# ----------------------------------------------------------------------
class TestChannelController:
    def test_enqueue_requires_decoded_request(self):
        device, controller = make_controller()
        cc = controller.channel_controllers[0]
        raw = MemoryRequest(0, 64, False, 0)
        with pytest.raises(ValueError):
            cc.enqueue(raw, 0)

    def test_read_completes_with_outcome_metadata(self):
        device, controller = make_controller()
        request = make_request(device, 0x5000)
        completed = controller.enqueue(request, 0)
        assert completed == [request]
        assert request.completion_cycle > 0
        assert request.row_buffer_outcome == "miss"
        assert controller.completed_reads == 1

    def test_row_hits_have_lower_latency_than_misses(self):
        device, controller = make_controller()
        miss = make_request(device, 0x5000)
        controller.enqueue(miss, 0)
        hit = make_request(device, 0x5040, arrival=miss.completion_cycle)
        controller.enqueue(hit, miss.completion_cycle)
        assert hit.latency < miss.latency
        assert hit.row_buffer_outcome == "hit"

    def test_busy_bank_defers_service_until_wake(self):
        device, controller = make_controller()
        first = make_request(device, 0x5000)
        controller.enqueue(first, 0)
        # Arrives while the bank is still busy with ``first``.
        second = make_request(device, 0x5000 + 4 * 8192 * 16, arrival=1)
        completed = controller.enqueue(second, 1)
        assert completed == []
        wake = controller.next_wakeup()
        assert wake is not None
        completed = controller.wake(wake)
        assert second in completed

    def test_average_read_latency_tracks_reads_only(self):
        device, controller = make_controller()
        read = make_request(device, 0x9000)
        controller.enqueue(read, 0)
        cc = controller.channel_controllers[0]
        for _ in range(20):
            cc.enqueue(make_request(device, 0x9040, is_write=True), 0)
        assert controller.average_read_latency() == read.latency

    def test_drain_all_flushes_queued_writes(self):
        device, controller = make_controller()
        cc = controller.channel_controllers[0]
        for index in range(8):
            cc.enqueue(make_request(device, 0x10000 + index * 64,
                                    is_write=True), 0)
        assert cc.write_queue_occupancy > 0
        controller.drain_all(0)
        assert cc.write_queue_occupancy == 0

    def test_mechanism_statistics_reachable_through_controller(self):
        device, controller = make_controller("figcache")
        request = make_request(device, 0x20000)
        controller.enqueue(request, 0)
        mechanism = controller.channel_controllers[0].mechanism
        assert mechanism.stats.cache_lookups == 1
        assert request.in_dram_cache_hit is False

    def test_channel_count_mismatch_rejected(self):
        config = DRAMConfig(channels=2)
        device = DRAMDevice(config)
        with pytest.raises(ValueError):
            MemoryController(device, [BaseMechanism()])

    def test_routing_uses_channel_bits(self):
        device, controller = make_controller(channels=2)
        request = MemoryRequest(0, 0x2000, False, 0)
        chosen = controller.route(request)
        assert chosen is controller.channel_controllers[request.decoded.channel]


# ----------------------------------------------------------------------
# Caches.
# ----------------------------------------------------------------------
class TestSetAssociativeCache:
    def test_hit_after_fill(self):
        cache = SetAssociativeCache(CacheConfig(size_bytes=4096,
                                                associativity=4))
        assert not cache.access(0x100, False).hit
        assert cache.access(0x100, False).hit
        assert cache.hit_rate == pytest.approx(0.5)

    def test_lru_eviction_order(self):
        cache = SetAssociativeCache(CacheConfig(size_bytes=2 * 64,
                                                associativity=2,
                                                block_size_bytes=64))
        cache.access(0 * 128, False)
        cache.access(1 * 128, False)
        cache.access(0 * 128, False)        # touch block 0 -> block 1 is LRU
        cache.access(2 * 128, False)        # evicts block 1
        assert cache.contains(0 * 128)
        assert not cache.contains(1 * 128)

    def test_dirty_eviction_reports_writeback(self):
        cache = SetAssociativeCache(CacheConfig(size_bytes=2 * 64,
                                                associativity=2,
                                                block_size_bytes=64))
        cache.access(0 * 128, True)
        cache.access(1 * 128, False)
        result = cache.access(2 * 128, False)
        assert result.writeback_address == 0
        assert cache.writebacks == 1

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(CacheConfig(size_bytes=1000, associativity=3))

    @given(st.lists(st.integers(0, 255), min_size=1, max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, blocks):
        cache = SetAssociativeCache(CacheConfig(size_bytes=16 * 64,
                                                associativity=4,
                                                block_size_bytes=64))
        for block in blocks:
            cache.access(block * 64, block % 3 == 0)
        assert cache.occupancy() <= cache.config.num_blocks


class TestMSHR:
    def test_allocation_and_merge(self):
        mshrs = MSHRFile(2)
        assert mshrs.allocate(0x100)
        assert not mshrs.allocate(0x100 + 32)  # same block -> merge
        assert mshrs.occupancy == 1
        assert mshrs.release(0x100) == 2

    def test_full_allocation_raises(self):
        mshrs = MSHRFile(1)
        mshrs.allocate(0x0)
        assert mshrs.is_full()
        with pytest.raises(RuntimeError):
            mshrs.allocate(0x1000)

    def test_release_unknown_block_raises(self):
        mshrs = MSHRFile(1)
        with pytest.raises(KeyError):
            mshrs.release(0x40)


class TestHierarchy:
    def test_miss_propagates_to_memory(self):
        hierarchy = CacheHierarchy()
        access = hierarchy.access(0x123456 * 64, False)
        assert access.level == "memory"
        assert access.needs_memory

    def test_second_access_hits_l1(self):
        hierarchy = CacheHierarchy()
        hierarchy.access(0x80, False)
        access = hierarchy.access(0x80, False)
        assert access.level == "L1"
        assert not access.needs_memory

    def test_llc_writeback_emitted_for_dirty_victims(self):
        config = HierarchyConfig(
            l1=CacheConfig(size_bytes=128, associativity=2),
            l2=CacheConfig(size_bytes=256, associativity=2),
            llc=CacheConfig(size_bytes=512, associativity=2))
        hierarchy = CacheHierarchy(config)
        writebacks = []
        for index in range(64):
            result = hierarchy.access(index * 4096, True)
            writebacks.extend(result.writebacks)
        assert writebacks, "dirty LLC victims must generate writebacks"

    def test_paper_table1_hierarchy_sizes(self):
        config = HierarchyConfig.paper_table1()
        assert config.l1.size_bytes == 64 * 1024
        assert config.llc.size_bytes == 2 * 1024 * 1024


# ----------------------------------------------------------------------
# Trace core.
# ----------------------------------------------------------------------
def simple_trace(n, stride=4096, bubbles=10, write_every=0):
    records = []
    for index in range(n):
        is_write = write_every > 0 and index % write_every == 0
        records.append(TraceRecord(bubbles=bubbles, address=index * stride,
                                   is_write=is_write))
    return records


def drive_core_to_completion(core, latency=200):
    """Feed the core fixed-latency completions until it finishes."""
    pending = []
    result = core.run(0)
    pending.extend(result.requests)
    guard = 0
    while not core.finished and guard < 10000:
        guard += 1
        if not pending:
            result = core.run(core.core_cycle)
            pending.extend(result.requests)
            if not result.requests and not result.stalled:
                break
            continue
        request = pending.pop(0)
        if request.is_write:
            continue
        finish = request.issue_cycle + latency
        if core.notify_completion(request.address, finish):
            result = core.run(finish)
            pending.extend(result.requests)
    return core


class TestTraceCore:
    def test_core_finishes_and_counts_instructions(self):
        trace = simple_trace(50)
        core = drive_core_to_completion(TraceCore(0, trace))
        assert core.finished
        assert core.stats.instructions == sum(r.instructions for r in trace)
        assert core.stats.ipc() > 0

    def test_higher_latency_lowers_ipc(self):
        trace = simple_trace(80)
        fast = drive_core_to_completion(TraceCore(0, trace), latency=100)
        slow = drive_core_to_completion(TraceCore(0, list(trace)),
                                        latency=800)
        assert fast.stats.ipc() > slow.stats.ipc()

    def test_mshr_limit_caps_outstanding_requests(self):
        config = CoreConfig(mshr_entries=4)
        trace = simple_trace(100, bubbles=0)
        core = TraceCore(0, trace, config)
        result = core.run(0)
        reads = [r for r in result.requests if not r.is_write]
        assert len(reads) <= 4
        assert result.stalled

    def test_cache_hits_do_not_reach_memory(self):
        trace = [TraceRecord(bubbles=5, address=0x40, is_write=False)
                 for _ in range(20)]
        core = TraceCore(0, trace)
        result = core.run(0)
        assert len(result.requests) == 1  # only the first access misses
        core.notify_completion(0x40, core.core_cycle + 100)
        assert core.finished

    def test_notify_for_unknown_address_is_ignored(self):
        core = TraceCore(0, simple_trace(5))
        core.run(0)
        assert core.notify_completion(0xDEADBEEF000, 100) is False

    def test_writes_do_not_block_the_window(self):
        config = CoreConfig(mshr_entries=8, window_size=64)
        trace = simple_trace(30, bubbles=0, write_every=1)
        core = TraceCore(0, trace, config)
        core.run(0)
        # All stores: the core only pauses when MSHRs run out, not because
        # the window is blocked by a load.
        assert core.stats.llc_miss_stores > 0
