"""Tests for the engine's reliability layer, driven by deterministic
fault injection: retry policies, the hung-worker watchdog, pool respawn
after worker death, cache checksum/quarantine, and the CLI surfaces.

The central claim — asserted over and over below — is that a fault-laden
run *converges to results bit-identical to a fault-free run*: retries,
respawns, and quarantines change how long a sweep takes, never what it
computes.
"""

import dataclasses
import json

import pytest

from repro.cli import main
from repro.experiments import engine
from repro.experiments.engine import (BatchReport, CallbackSink, FaultPlan,
                                      FaultSpec, InjectedFault,
                                      JobExecutionError, JobExecutor,
                                      ResultCache, RetryPolicy, SimJob,
                                      WatchdogPolicy, cache_salt,
                                      install_plan)
from repro.experiments.engine import faults
from repro.experiments.engine.spec import ExperimentScale

TINY = ExperimentScale.tiny()

#: A retry policy with no backoff sleeps: tests should spend their time
#: simulating, not waiting out deliberately-injected delays.
FAST_RETRY = RetryPolicy(max_attempts=3, backoff_base_s=0.0, jitter=0.0)


@dataclasses.dataclass(frozen=True)
class PoisonJob:
    """A picklable job whose materialization always fails (same protocol
    as the helper in test_engine.py; ``zzz`` sorts after real jobs)."""

    name: str = "poison"

    def key(self):
        return f"poison:{self.name}"

    def trace_signature(self):
        return ("zzz-poison", self.name)

    def config_signature(self):
        return ("zzz-poison", self.name)

    @property
    def workload_name(self):
        return self.name

    def build_config(self):
        raise RuntimeError("this job is poisoned")

    def build_traces(self):
        return []

    def describe(self):
        return {"kind": "poison", "name": self.name}


@pytest.fixture(autouse=True)
def clean_fault_state(monkeypatch):
    """No fault plan leaks in from the environment or a previous test."""
    monkeypatch.delenv(faults.FAULT_PLAN_ENV, raising=False)
    faults.reset()
    engine.reset()
    yield
    faults.reset()
    engine.reset()


def tiny_jobs(*benchmarks):
    return [SimJob.single_core("Base", name, TINY) for name in benchmarks]


def run_clean(jobs):
    """Reference results from a fault-free serial run (fresh cache)."""
    with JobExecutor(cache=ResultCache(), jobs=1) as executor:
        return {job.key(): result.to_dict()
                for job, result in executor.run(jobs).items()}


def as_dicts(results):
    return {job.key(): result.to_dict() for job, result in results.items()}


# ----------------------------------------------------------------------
# The fault plan itself.
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_json_round_trip(self):
        plan = FaultPlan(faults=(
            FaultSpec(site="worker", index=1, action="exit",
                      attempts=(1,), exit_code=7),
            FaultSpec(site="worker", index=3, action="sleep",
                      attempts=(1, 2), seconds=2.5),
            FaultSpec(site="cache-write", index=2, action="torn"),
        ))
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_env_accepts_inline_json_and_files(self, tmp_path):
        text = json.dumps({"faults": [
            {"site": "worker", "index": 0, "action": "raise"}]})
        assert FaultPlan.from_env(text).worker_fault(0, 1) is not None
        path = tmp_path / "plan.json"
        path.write_text(text, encoding="utf-8")
        assert FaultPlan.from_env(str(path)).worker_fault(0, 1) is not None

    def test_worker_fault_matches_index_and_attempt(self):
        plan = FaultPlan(faults=(
            FaultSpec(site="worker", index=2, action="raise",
                      attempts=(1,)),))
        assert plan.worker_fault(2, 1) is not None
        assert plan.worker_fault(2, 2) is None  # transient: cleared
        assert plan.worker_fault(1, 1) is None
        # Empty attempts tuple = every attempt (a permanent fault).
        forever = FaultPlan(faults=(
            FaultSpec(site="worker", index=0, action="raise",
                      attempts=()),))
        assert forever.worker_fault(0, 5) is not None

    def test_cache_fault_matches_ordinal_or_prefix(self):
        plan = FaultPlan(faults=(
            FaultSpec(site="cache-write", index=1, action="torn"),
            FaultSpec(site="cache-write", action="bitflip",
                      key_prefix="abcd"),))
        assert plan.cache_fault("ffff", 1).action == "torn"
        assert plan.cache_fault("ffff", 0) is None
        assert plan.cache_fault("abcdef", 99).action == "bitflip"

    def test_invalid_site_and_action_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(site="disk", action="raise")
        with pytest.raises(ValueError):
            FaultSpec(site="worker", action="torn")
        with pytest.raises(ValueError):
            FaultSpec(site="cache-write", action="exit")

    def test_serial_path_never_exits_the_process(self):
        plan = FaultPlan(faults=(
            FaultSpec(site="worker", index=0, action="exit"),))
        with pytest.raises(InjectedFault):
            faults.apply_worker_fault(plan, 0, 1, allow_exit=False)


class TestRetryPolicy:
    def test_delay_is_deterministic_per_key_and_attempt(self):
        policy = RetryPolicy()
        key = "a" * 64
        assert policy.delay_s(key, 1) == policy.delay_s(key, 1)
        assert policy.delay_s(key, 2) > policy.delay_s(key, 1)
        assert policy.delay_s(key, 1) != policy.delay_s("b" * 64, 1)

    def test_delay_is_bounded(self):
        policy = RetryPolicy(backoff_base_s=1.0, backoff_factor=10.0,
                             backoff_max_s=2.0)
        assert policy.delay_s("k", 30) <= 2.0

    def test_at_least_one_attempt_required(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)


# ----------------------------------------------------------------------
# Retry-then-succeed: transient faults converge to clean-run results.
# ----------------------------------------------------------------------
class TestRetryThenSucceed:
    def test_serial_transient_fault_is_bit_identical_to_clean(self):
        jobs = tiny_jobs("gcc", "lbm")
        plan = FaultPlan(faults=(
            FaultSpec(site="worker", index=0, action="raise",
                      attempts=(1,)),))
        events = []
        with JobExecutor(cache=ResultCache(), jobs=1,
                         failure_policy="retry_then_fail",
                         retry=FAST_RETRY, fault_plan=plan) as executor:
            executor.progress = CallbackSink(events.append)
            results = executor.run(jobs)
            assert executor.retries == 1
        assert as_dicts(results) == run_clean(jobs)
        retried = [e for e in events if e.kind == "job-retried"]
        assert len(retried) == 1 and retried[0].attempt == 2
        assert not [e for e in events if e.kind == "job-failed"]

    def test_parallel_transient_fault_is_bit_identical_to_clean(self):
        jobs = tiny_jobs("gcc", "lbm", "mcf")
        plan = FaultPlan(faults=(
            FaultSpec(site="worker", index=1, action="raise",
                      attempts=(1,)),))
        with JobExecutor(cache=ResultCache(), jobs=2,
                         failure_policy="retry_then_fail",
                         retry=FAST_RETRY, fault_plan=plan) as executor:
            results = executor.run(jobs)
            assert executor.retries == 1
            report = executor.last_report
        assert as_dicts(results) == run_clean(jobs)
        assert isinstance(report, BatchReport)
        assert report.retries == 1 and not report.failures

    def test_permanent_fault_exhausts_attempts_and_raises(self):
        jobs = tiny_jobs("gcc")
        plan = FaultPlan(faults=(
            FaultSpec(site="worker", index=0, action="raise",
                      attempts=()),))  # fires on every attempt
        with JobExecutor(cache=ResultCache(), jobs=1,
                         failure_policy="retry_then_fail",
                         retry=FAST_RETRY, fault_plan=plan) as executor:
            with pytest.raises(JobExecutionError) as info:
                executor.run(jobs)
            assert executor.retries == FAST_RETRY.max_attempts - 1
        assert info.value.report.failures[0].attempts \
            == FAST_RETRY.max_attempts


# ----------------------------------------------------------------------
# Satellite fix: every failure is reported, not just the first.
# ----------------------------------------------------------------------
class TestMultipleFailuresReported:
    def test_two_poisoned_jobs_are_both_reported(self):
        poisons = [PoisonJob(name="first"), PoisonJob(name="second")]
        jobs = tiny_jobs("gcc", "lbm") + poisons
        with JobExecutor(cache=ResultCache(), jobs=2,
                         failure_policy="retry_then_fail",
                         retry=RetryPolicy(max_attempts=1)) as executor:
            with pytest.raises(JobExecutionError) as info:
                executor.run(jobs)
        report = info.value.report
        assert report is not None and report.failed == 2
        failed_names = {failure.description for failure in report.failures}
        assert any("first" in name for name in failed_names)
        assert any("second" in name for name in failed_names)
        message = str(info.value)
        assert "2 job(s) failed" in message
        assert "first" in message and "second" in message
        # First failure carries the full traceback, the rest one line
        # each in the "also failed:" section.
        assert "Traceback" in message
        assert message.count("also failed:") == 1
        after = message.split("also failed:", 1)[1]
        assert "Traceback" not in after
        assert ("first" in after) != ("second" in after)
        assert "this job is poisoned" in message

    def test_report_attempts_and_keys_are_recorded(self):
        jobs = [PoisonJob(name="solo")] + tiny_jobs("gcc")
        with JobExecutor(cache=ResultCache(), jobs=1,
                         failure_policy="retry_then_fail",
                         retry=FAST_RETRY) as executor:
            with pytest.raises(JobExecutionError) as info:
                executor.run(jobs)
        failure = info.value.report.failures[0]
        assert failure.key == "poison:solo"
        assert failure.attempts == FAST_RETRY.max_attempts
        assert "poisoned" in failure.error


class TestRetryThenSkip:
    def test_poisoned_job_is_skipped_and_batch_completes(self):
        poison = PoisonJob()
        jobs = tiny_jobs("gcc", "lbm") + [poison]
        events = []
        with JobExecutor(cache=ResultCache(), jobs=1,
                         failure_policy="retry_then_skip",
                         retry=FAST_RETRY) as executor:
            executor.progress = CallbackSink(events.append)
            results = executor.run(jobs)
            assert executor.jobs_skipped == 1
            report = executor.last_report
        assert poison not in results
        assert len(results) == 2
        assert report.skipped_keys == ["poison:poison"]
        assert [e.kind for e in events if e.kind == "job-skipped"] \
            == ["job-skipped"]

    def test_policy_override_per_run_call(self):
        poison = PoisonJob()
        with JobExecutor(cache=ResultCache(), jobs=1,
                         retry=FAST_RETRY) as executor:
            # Default fail_fast raises...
            with pytest.raises(JobExecutionError):
                executor.run([poison])
            # ...but a per-call override skips.
            results = executor.run(tiny_jobs("gcc") + [poison],
                                   failure_policy="retry_then_skip")
            assert len(results) == 1

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            JobExecutor(cache=ResultCache(), failure_policy="best_effort")


# ----------------------------------------------------------------------
# Hung-worker watchdog.
# ----------------------------------------------------------------------
class TestWatchdog:
    def test_watchdog_times_out_sleeping_worker_and_recovers(self):
        jobs = tiny_jobs("gcc", "lbm", "mcf", "bzip2")
        # Index 3 sleeps far past the (shrunk) watchdog deadline on its
        # first attempt; the resubmitted attempt runs clean.
        plan = FaultPlan(faults=(
            FaultSpec(site="worker", index=3, action="sleep",
                      attempts=(1,), seconds=30.0),))
        watchdog = WatchdogPolicy(floor_s=0.5, ceiling_s=2.0, factor=4.0)
        events = []
        with JobExecutor(cache=ResultCache(), jobs=2,
                         failure_policy="retry_then_fail",
                         retry=FAST_RETRY, watchdog=watchdog,
                         fault_plan=plan) as executor:
            executor.progress = CallbackSink(events.append)
            results = executor.run(jobs)
            assert executor.chunk_timeouts >= 1
            assert executor.pool_respawns >= 1
            report = executor.last_report
        assert as_dicts(results) == run_clean(jobs)
        assert report.chunk_timeouts >= 1 and not report.failures
        kinds = [e.kind for e in events]
        assert "chunk-timeout" in kinds and "pool-respawned" in kinds

    def test_watchdog_allowance_clamps(self):
        policy = WatchdogPolicy(floor_s=10.0, ceiling_s=60.0, factor=8.0)
        assert policy.allowance_s(1, 0.001) == 10.0          # floor
        assert policy.allowance_s(1000, 5.0) == 60.0         # ceiling
        assert policy.allowance_s(2, None) \
            == max(10.0, 8.0 * policy.initial_ewma_s * 2)    # seed ewma

    def test_fault_free_runs_never_trip_the_default_watchdog(self):
        jobs = tiny_jobs("gcc", "lbm")
        with JobExecutor(cache=ResultCache(), jobs=2) as executor:
            executor.run(jobs)
            assert executor.chunk_timeouts == 0
            assert executor.pool_respawns == 0


# ----------------------------------------------------------------------
# Pool respawn after a worker death.
# ----------------------------------------------------------------------
class TestPoolRespawn:
    def test_injected_worker_kill_preserves_submission_order(self):
        jobs = tiny_jobs("gcc", "lbm", "mcf", "bzip2")
        plan = FaultPlan(faults=(
            FaultSpec(site="worker", index=1, action="exit",
                      attempts=(1,)),))
        with JobExecutor(cache=ResultCache(), jobs=2,
                         failure_policy="retry_then_fail",
                         retry=FAST_RETRY, fault_plan=plan) as executor:
            results = executor.run(jobs)
            assert executor.pool_respawns >= 1
            assert executor.retries >= 1
            assert executor.pool_active  # respawned pool stays warm
        assert list(results) == jobs  # submission order, not completion
        assert as_dicts(results) == run_clean(jobs)

    def test_fail_fast_still_raises_broken_pool(self):
        from concurrent.futures.process import BrokenProcessPool

        jobs = tiny_jobs("gcc", "lbm")
        plan = FaultPlan(faults=(
            FaultSpec(site="worker", index=0, action="exit",
                      attempts=()),))
        with JobExecutor(cache=ResultCache(), jobs=2,
                         fault_plan=plan) as executor:
            with pytest.raises(BrokenProcessPool):
                executor.run(jobs)
            assert not executor.pool_active

    def test_repeatedly_dying_worker_exhausts_respawn_budget(self):
        jobs = tiny_jobs("gcc", "lbm")
        plan = FaultPlan(faults=(
            FaultSpec(site="worker", index=0, action="exit",
                      attempts=()),))  # dies on every attempt
        with JobExecutor(cache=ResultCache(), jobs=2,
                         failure_policy="retry_then_skip",
                         retry=RetryPolicy(max_attempts=2,
                                           backoff_base_s=0.0, jitter=0.0),
                         fault_plan=plan,
                         pool_respawn_budget=2) as executor:
            results = executor.run(jobs)
            report = executor.last_report
        # The killer job is skipped, the respawn budget holds, and the
        # batch still terminates instead of respawn-looping forever.
        # (The innocent job may be skipped too if it kept being lost to
        # the killer's pool breakage — that is collateral, not a hang.)
        assert jobs[0] not in results
        assert report.skipped >= 1
        assert jobs[0].key() in {failure.key for failure in report.failures}
        assert report.pool_respawns <= 2


# ----------------------------------------------------------------------
# Cache integrity: checksum envelope, quarantine, verify.
# ----------------------------------------------------------------------
class TestCacheIntegrity:
    def _result(self):
        return SimJob.single_core("Base", "gcc", TINY).run()

    def test_envelope_round_trip(self, tmp_path):
        result = self._result()
        ResultCache(tmp_path).put("ab" + "0" * 62, result)
        fresh = ResultCache(tmp_path)
        loaded = fresh.get("ab" + "0" * 62)
        assert loaded is not None
        assert loaded.to_dict() == result.to_dict()
        report = fresh.verify()
        assert report["ok"] == 1 and not report["corrupt"]

    def test_torn_write_is_quarantined_on_load(self, tmp_path):
        key = "ab" + "1" * 62
        install_plan(FaultPlan(faults=(
            FaultSpec(site="cache-write", index=0, action="torn"),)))
        ResultCache(tmp_path).put(key, self._result())
        install_plan(None)
        fresh = ResultCache(tmp_path)
        assert fresh.get(key) is None
        stats = fresh.stats()
        assert stats.decode_failures == 1
        assert stats.quarantined == 1
        assert stats.quarantine_entries == 1
        quarantined = list((tmp_path / "quarantine").iterdir())
        assert [p.name for p in quarantined] == [f"{key}.json"]
        # The slot is free again: re-storing and loading works.
        ResultCache(tmp_path).put(key, self._result())
        assert ResultCache(tmp_path).get(key) is not None

    def test_bitflip_fails_checksum_and_quarantines(self, tmp_path):
        key = "cd" + "2" * 62
        cache = ResultCache(tmp_path)
        cache.put(key, self._result())
        path = tmp_path / key[:2] / f"{key}.json"
        payload = json.loads(path.read_bytes())
        # Silent media corruption: a value changes, JSON stays valid.
        payload["result"]["total_cycles"] = \
            payload["result"]["total_cycles"] + 1
        path.write_text(json.dumps(payload, sort_keys=True),
                        encoding="utf-8")
        fresh = ResultCache(tmp_path)
        assert fresh.get(key) is None
        assert fresh.stats().decode_failures == 1
        assert (tmp_path / "quarantine").is_dir()

    def test_legacy_envelope_less_entry_still_readable(self, tmp_path):
        result = self._result()
        key = "ef" + "3" * 62
        shard = tmp_path / key[:2]
        shard.mkdir(parents=True)
        legacy = {"salt": cache_salt(), "key": key,
                  "result": result.to_dict()}
        (shard / f"{key}.json").write_text(json.dumps(legacy),
                                           encoding="utf-8")
        cache = ResultCache(tmp_path)
        loaded = cache.get(key)
        assert loaded is not None
        assert loaded.to_dict() == result.to_dict()
        report = cache.verify()
        assert report["legacy"] == 1 and not report["corrupt"]

    def test_verify_reports_and_repairs(self, tmp_path):
        good_key = "aa" + "4" * 62
        bad_key = "bb" + "5" * 62
        cache = ResultCache(tmp_path)
        result = self._result()
        cache.put(good_key, result)
        cache.put(bad_key, result)
        path = tmp_path / bad_key[:2] / f"{bad_key}.json"
        path.write_bytes(path.read_bytes()[:20])  # torn write
        fresh = ResultCache(tmp_path)
        report = fresh.verify()
        assert report["checked"] == 2 and report["ok"] == 1
        assert report["corrupt"] == [bad_key]
        assert report["quarantined"] == 0 and path.exists()  # dry run
        repaired = fresh.verify(repair=True)
        assert repaired["quarantined"] == 1 and not path.exists()
        assert (tmp_path / "quarantine" / f"{bad_key}.json").exists()
        assert fresh.verify()["corrupt"] == []

    def test_gzip_torn_write_detected(self, tmp_path):
        key = "dd" + "6" * 62
        cache = ResultCache(tmp_path, compress=True)
        cache.put(key, self._result())
        path = tmp_path / key[:2] / f"{key}.json.gz"
        assert path.exists()
        path.write_bytes(path.read_bytes()[:30])
        fresh = ResultCache(tmp_path)
        assert fresh.get(key) is None
        assert fresh.stats().quarantined == 1

    def test_corrupt_shard_reexecutes_job(self, tmp_path):
        job = SimJob.single_core("Base", "gcc", TINY)
        with JobExecutor(cache=ResultCache(tmp_path), jobs=1) as executor:
            first = executor.run_one(job)
            assert executor.simulations_executed == 1
        path = tmp_path / job.key()[:2] / f"{job.key()}.json"
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        with JobExecutor(cache=ResultCache(tmp_path), jobs=1) as executor:
            again = executor.run_one(job)
            assert executor.simulations_executed == 1  # miss: re-ran
        assert again.to_dict() == first.to_dict()

    def test_cache_verify_cli(self, tmp_path, capsys):
        key = "ab" + "7" * 62
        ResultCache(tmp_path).put(key, self._result())
        assert main(["cache", "verify", "--cache-dir",
                     str(tmp_path)]) == 0
        path = tmp_path / key[:2] / f"{key}.json"
        path.write_bytes(path.read_bytes()[:15])
        assert main(["cache", "verify", "--cache-dir",
                     str(tmp_path)]) == 1
        assert path.exists()  # report-only without --repair
        assert main(["cache", "verify", "--cache-dir", str(tmp_path),
                     "--repair"]) == 1
        assert not path.exists()
        assert main(["cache", "verify", "--cache-dir",
                     str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "corrupt" in out and "quarantined" in out

    def test_cache_stats_cli_shows_integrity_counters(self, tmp_path,
                                                      capsys):
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "decode failures : 0" in out
        assert "quarantined     : 0" in out


# ----------------------------------------------------------------------
# The canned chaos scenario CI runs: kill + transient raise + torn write.
# ----------------------------------------------------------------------
class TestChaosScenario:
    CHAOS = FaultPlan(faults=(
        FaultSpec(site="worker", index=1, action="exit", attempts=(1,)),
        FaultSpec(site="worker", index=3, action="raise", attempts=(1,)),
        FaultSpec(site="cache-write", index=2, action="torn"),
    ))

    def test_chaos_run_is_bit_identical_to_clean(self, tmp_path):
        jobs = tiny_jobs("gcc", "lbm", "mcf", "bzip2", "gromacs", "sjeng")
        install_plan(self.CHAOS)
        try:
            with JobExecutor(cache=ResultCache(tmp_path), jobs=2,
                             failure_policy="retry_then_fail",
                             retry=FAST_RETRY) as executor:
                results = executor.run(jobs)
                assert executor.retries >= 2
                assert executor.pool_respawns >= 1
        finally:
            install_plan(None)
        assert as_dicts(results) == run_clean(jobs)
        # The torn cache write poisoned one shard on disk; a fresh
        # process quarantines it and re-executes just that job.
        with JobExecutor(cache=ResultCache(tmp_path), jobs=1) as executor:
            rerun = executor.run(jobs)
            assert executor.simulations_executed <= 2
            assert executor.cache.stats().decode_failures >= 0
        assert as_dicts(rerun) == as_dicts(results)

    def test_metrics_snapshot_carries_reliability_counters(self):
        from repro.sim.metrics_export import metrics_snapshot

        with JobExecutor(cache=ResultCache(), jobs=1,
                         failure_policy="retry_then_skip",
                         retry=FAST_RETRY) as executor:
            executor.run(tiny_jobs("gcc") + [PoisonJob()])
            snapshot = metrics_snapshot(executor=executor)
        section = snapshot["executor"]
        assert section["retries"] == FAST_RETRY.max_attempts - 1
        assert section["jobs_skipped"] == 1
        assert section["jobs_failed"] == 1
        assert section["chunk_timeouts"] == 0
        assert snapshot["cache"]["decode_failures"] == 0
        assert snapshot["cache"]["quarantined"] == 0


# ----------------------------------------------------------------------
# CLI failure surfaces.
# ----------------------------------------------------------------------
class TestCliFailureSurfaces:
    def test_keep_going_flag_parses(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["run-figure", "8", "--keep-going"])
        assert args.keep_going is True

    def test_batch_failure_exits_one_with_summary(self, monkeypatch,
                                                  capsys):
        import repro.cli as cli

        report = BatchReport(total=3, policy="retry_then_fail")
        report.failures.append(engine.JobFailure(
            description="{'kind': 'poison'}", key="poison:x", attempts=3,
            error="RuntimeError('this job is poisoned')",
            traceback="Traceback (most recent call last):\n...\n"))
        error = JobExecutionError("boom", report=report)

        def exploding_runner(scale):
            raise error

        monkeypatch.setitem(cli.FIGURES, 8, exploding_runner)
        assert main(["run-figure", "8"]) == 1
        err = capsys.readouterr().err
        assert "1 failed" in err and "retried" in err
        assert "Traceback" not in err  # one line, not a wall of text
        assert "--keep-going" in err

    def test_keep_going_sweep_reports_skips_and_exits_nonzero(
            self, monkeypatch, capsys):
        import repro.cli as cli

        class FakeReport:
            failures = [object()]

            @staticmethod
            def summary():
                return "1 failed, 1 skipped, 3 retried"

        class FakeExecutor:
            last_report = FakeReport()

        assert cli._finish_batch(FakeExecutor()) == 1
        err = capsys.readouterr().err
        assert "1 failed, 1 skipped, 3 retried" in err
