"""Tests for the trace format, synthetic generators, and workload catalog."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import (BENCHMARKS, SyntheticTraceGenerator, TraceRecord,
                             benchmark_names, get_benchmark,
                             intensive_benchmarks, make_workload_suite,
                             make_multiprogrammed_workload,
                             non_intensive_benchmarks, trace_statistics)
from repro.workloads.catalog import MULTITHREADED_BENCHMARKS
from repro.workloads.multiprogram import (CORE_ADDRESS_STRIDE,
                                          make_multithreaded_workload)
from repro.workloads.synthetic import SyntheticTraceConfig


class TestTraceRecord:
    def test_instruction_count(self):
        record = TraceRecord(bubbles=9, address=64, is_write=False)
        assert record.instructions == 10

    def test_rejects_negative_fields(self):
        with pytest.raises(ValueError):
            TraceRecord(bubbles=-1, address=0, is_write=False)
        with pytest.raises(ValueError):
            TraceRecord(bubbles=0, address=-64, is_write=False)

    def test_statistics(self):
        trace = [TraceRecord(9, 0, False), TraceRecord(9, 64, True),
                 TraceRecord(9, 0, False)]
        stats = trace_statistics(trace)
        assert stats["instructions"] == 30
        assert stats["memory_accesses"] == 3
        assert stats["write_fraction"] == pytest.approx(1 / 3)
        assert stats["unique_blocks"] == 2
        assert stats["accesses_per_kilo_instruction"] == pytest.approx(100.0)


class TestSyntheticGenerator:
    def test_determinism_given_seed(self):
        config = SyntheticTraceConfig(seed=5)
        a = SyntheticTraceGenerator(config).generate(500)
        b = SyntheticTraceGenerator(config).generate(500)
        assert a == b

    def test_different_seeds_differ(self):
        a = SyntheticTraceGenerator(SyntheticTraceConfig(seed=1)).generate(200)
        b = SyntheticTraceGenerator(SyntheticTraceConfig(seed=2)).generate(200)
        assert a != b

    def test_addresses_are_block_aligned_and_in_range(self):
        config = SyntheticTraceConfig(seed=3, base_address=1 << 32)
        trace = SyntheticTraceGenerator(config).generate(1000)
        for record in trace:
            assert record.address % config.block_size_bytes == 0
            assert record.address >= config.base_address

    def test_write_fraction_close_to_target(self):
        config = SyntheticTraceConfig(seed=4, write_fraction=0.3)
        trace = SyntheticTraceGenerator(config).generate(4000)
        stats = trace_statistics(trace)
        assert abs(stats["write_fraction"] - 0.3) < 0.05

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            SyntheticTraceConfig(hot_fraction=0.5, stream_fraction=0.2,
                                 random_fraction=0.2).validate()
        with pytest.raises(ValueError):
            SyntheticTraceConfig(hot_window_segments=0).validate()
        with pytest.raises(ValueError):
            SyntheticTraceConfig(hot_window_segments=100,
                                 hot_segments=50).validate()

    def test_hot_only_trace_touches_window_sized_footprint(self):
        config = SyntheticTraceConfig(seed=7, hot_fraction=1.0,
                                      stream_fraction=0.0,
                                      random_fraction=0.0,
                                      hot_window_segments=64,
                                      hot_window_drift=0.0,
                                      hot_jump_probability=0.0)
        trace = SyntheticTraceGenerator(config).generate(4000)
        stats = trace_statistics(trace, row_size_bytes=config.row_size_bytes)
        # The footprint should be close to the window size (64 segments of
        # 1 kB), certainly well below the full pool.
        assert stats["footprint_bytes"] <= 80 * 1024

    def test_mean_bubbles_controls_intensity(self):
        sparse = SyntheticTraceConfig(seed=8, mean_bubbles=300.0)
        dense = SyntheticTraceConfig(seed=8, mean_bubbles=20.0)
        sparse_stats = trace_statistics(
            SyntheticTraceGenerator(sparse).generate(2000))
        dense_stats = trace_statistics(
            SyntheticTraceGenerator(dense).generate(2000))
        assert dense_stats["accesses_per_kilo_instruction"] > \
            3 * sparse_stats["accesses_per_kilo_instruction"]

    @given(st.integers(min_value=0, max_value=400))
    @settings(max_examples=20, deadline=None)
    def test_generate_length(self, n):
        trace = SyntheticTraceGenerator(SyntheticTraceConfig(seed=1)).generate(n)
        assert len(trace) == n


class TestCatalog:
    def test_twenty_single_thread_benchmarks(self):
        assert len(BENCHMARKS) == 20
        assert len(intensive_benchmarks()) == 10
        assert len(non_intensive_benchmarks()) == 10

    def test_three_multithreaded_benchmarks(self):
        assert set(MULTITHREADED_BENCHMARKS) == {"canneal", "fluidanimate",
                                                 "radix"}

    def test_benchmark_names_filtering(self):
        assert set(benchmark_names(True)) == {
            spec.name for spec in intensive_benchmarks()}

    def test_get_benchmark_unknown(self):
        with pytest.raises(KeyError):
            get_benchmark("does-not-exist")

    def test_intensive_profiles_generate_more_traffic(self):
        intensive = get_benchmark("lbm").make_trace(2000)
        non_intensive = get_benchmark("gromacs").make_trace(2000)
        dense = trace_statistics(intensive)
        sparse = trace_statistics(non_intensive)
        assert dense["accesses_per_kilo_instruction"] > \
            sparse["accesses_per_kilo_instruction"]

    def test_every_profile_validates(self):
        for spec in list(BENCHMARKS.values()) \
                + list(MULTITHREADED_BENCHMARKS.values()):
            spec.trace_config.validate()

    def test_make_trace_relocation_and_seed_offset(self):
        spec = get_benchmark("mcf")
        base = spec.make_trace(100)
        moved = spec.make_trace(100, seed_offset=3, base_address=1 << 33)
        assert all(record.address >= 1 << 33 for record in moved)
        assert [r.address for r in moved] != [r.address for r in base]


class TestMultiprogrammed:
    def test_suite_has_four_categories(self):
        suite = make_workload_suite(mixes_per_category=2)
        assert len(suite) == 8
        fractions = sorted({workload.intensive_fraction for workload in suite})
        assert fractions == [0.25, 0.50, 0.75, 1.00]

    def test_mix_respects_intensive_fraction(self):
        workload = make_multiprogrammed_workload(0.75, 0, num_cores=8)
        intensive = sum(1 for spec in workload.benchmarks
                        if spec.memory_intensive)
        assert intensive == 6

    def test_mix_is_deterministic(self):
        a = make_multiprogrammed_workload(0.5, 1)
        b = make_multiprogrammed_workload(0.5, 1)
        assert [s.name for s in a.benchmarks] == [s.name for s in b.benchmarks]

    def test_traces_use_disjoint_address_slices(self):
        workload = make_multiprogrammed_workload(1.0, 0, num_cores=4)
        traces = workload.make_traces(200)
        for core_id, trace in enumerate(traces):
            low = core_id * CORE_ADDRESS_STRIDE
            high = (core_id + 1) * CORE_ADDRESS_STRIDE
            assert all(low <= record.address < high for record in trace)

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            make_multiprogrammed_workload(1.5, 0)

    def test_multithreaded_workload_shares_address_space(self):
        workload = make_multithreaded_workload("canneal", num_cores=4)
        traces = workload.make_traces(200)
        assert workload.shared_address_space
        for trace in traces:
            assert all(record.address < CORE_ADDRESS_STRIDE
                       for record in trace)

    def test_unknown_multithreaded_name(self):
        with pytest.raises(KeyError):
            make_multithreaded_workload("nonexistent")
