"""Tests pinning the hot-path overhaul (PR 2).

Covers the golden-equivalence guarantee (the per-bank indexed scheduler,
heap-based wake-ups, and slotted hot objects must not change any simulated
result), the FR-FCFS scheduling invariants on the new per-bank queues, the
simulator's safety-limit reporting, and the lazily-invalidated helper
structures (wake-up heap, tag-store free-slot heap).

The golden fixture ``tests/golden/scheduler_equivalence.json`` was captured
by running the listed workloads at smoke scale on the pre-PR-2 revision
(commit 3f68bea, before the scheduler refactor); regenerating it on the
current code must reproduce it bit for bit.
"""

import json
from pathlib import Path

import pytest

from repro.baselines import BaseMechanism
from repro.controller import (FRFCFSScheduler, MemoryController,
                              MemoryRequest, SchedulerConfig)
from repro.dram import DRAMConfig, DRAMDevice
from repro.core.tag_store import FigTagStore
from repro.cpu import TraceCore
from repro.experiments.engine import ExperimentScale
from repro.sim.config import make_system_config
from repro.sim.simulator import Simulator, SimulatorLimits
from repro.sim.system import run_workload
from repro.workloads.catalog import get_benchmark
from repro.workloads.multiprogram import make_workload_suite
from repro.workloads.trace import TraceRecord

GOLDEN_PATH = Path(__file__).parent / "golden" / "scheduler_equivalence.json"


def _run_golden_case(key: str) -> dict:
    """Re-run one golden case and return its ``to_dict`` result."""
    scale = ExperimentScale.smoke()
    kind, configuration, workload = key.split(":", 2)
    if kind == "single":
        config = make_system_config(configuration, channels=1)
        traces = [get_benchmark(workload)
                  .make_trace(scale.single_core_records)]
    else:
        suite = {w.name: w for w in make_workload_suite(
            num_cores=scale.num_cores,
            mixes_per_category=scale.mixes_per_category)}
        config = make_system_config(configuration,
                                    channels=scale.multicore_channels)
        traces = suite[workload].make_traces(scale.multicore_records)
    return run_workload(config, traces, workload).to_dict()


with GOLDEN_PATH.open(encoding="utf-8") as _handle:
    _GOLDEN = json.load(_handle)


class TestGoldenEquivalence:
    """The optimized simulator reproduces pre-refactor results bit for bit."""

    def test_fixture_covers_base_and_figaro_workloads(self):
        configurations = {key.split(":")[1] for key in _GOLDEN}
        workloads = {key.split(":", 2)[2] for key in _GOLDEN}
        assert {"Base", "FIGCache-Fast", "LISA-VILLA"} <= configurations
        assert len(workloads) >= 3

    @pytest.mark.parametrize("key", sorted(_GOLDEN))
    def test_bit_identical_result(self, key):
        assert _run_golden_case(key) == _GOLDEN[key], (
            f"{key} diverged from the pre-refactor golden result")


# ----------------------------------------------------------------------
# FR-FCFS invariants on the per-bank indexed queues.
# ----------------------------------------------------------------------
def _make_channel(scheduler_config=None):
    config = DRAMConfig(channels=1)
    device = DRAMDevice(config, refresh_enabled=False)
    controller = MemoryController(device, [BaseMechanism()], scheduler_config)
    return device, controller.channel_controllers[0]


def _request(device, address, is_write=False, arrival=0):
    request = MemoryRequest(0, address, is_write, arrival)
    request.decoded = device.decode(address)
    request.flat_bank = device.flat_bank(request.decoded)
    return request


class TestDrainHysteresis:
    """Write drain engages at the high watermark and holds to the low one."""

    CONFIG = SchedulerConfig(read_queue_depth=64, write_queue_depth=64,
                             write_drain_high_watermark=6,
                             write_drain_low_watermark=2)

    def test_crossing_high_watermark_enters_drain(self):
        device, cc = _make_channel(self.CONFIG)
        # Occupy the bank so subsequent writes queue up instead of being
        # serviced immediately.
        cc.enqueue(_request(device, 0x0), 0)
        for index in range(self.CONFIG.write_drain_high_watermark):
            assert not cc._drain_mode
            cc.enqueue(_request(device, 0x40 * (index + 1), is_write=True), 0)
        assert cc._drain_mode

    def test_drain_holds_until_low_watermark(self):
        device, cc = _make_channel(self.CONFIG)
        cc.enqueue(_request(device, 0x0), 0)
        for index in range(self.CONFIG.write_drain_high_watermark):
            cc.enqueue(_request(device, 0x40 * (index + 1), is_write=True), 0)
        assert cc._drain_mode
        # Drain the queue by waking the controller until the occupancy
        # falls; hysteresis keeps drain mode on above the low watermark.
        now = 0
        seen_between_watermarks = False
        while cc.write_queue_occupancy > self.CONFIG.write_drain_low_watermark:
            wake = cc.next_wakeup()
            assert wake is not None
            now = max(now + 1, wake)
            cc.wake(now)
            if self.CONFIG.write_drain_low_watermark \
                    < cc.write_queue_occupancy \
                    < self.CONFIG.write_drain_high_watermark:
                assert cc._drain_mode
                seen_between_watermarks = True
        assert seen_between_watermarks
        assert cc.write_queue_occupancy \
            <= self.CONFIG.write_drain_low_watermark
        assert not cc._drain_mode


class TestOpenRowPreference:
    """First-ready selection honours the mechanism's effective-row view."""

    def test_row_of_override_redirects_first_ready(self):
        device, cc = _make_channel()
        channel = cc.channel
        # Open some row in bank 0.
        opener = _request(device, 0x0)
        cc.enqueue(opener, 0)
        bank = channel.bank(opener.flat_bank)
        open_row = bank.open_row
        assert open_row is not None

        # ``older`` misses the open row by address; ``younger`` also misses
        # by address, but a mechanism's row_of view redirects it to the
        # open row (as an in-DRAM cache hit would).
        older = _request(device, 0x0 + 8192 * 16 * 4)
        younger = _request(device, 0x0 + 8192 * 16 * 8)
        assert older.decoded.row != open_row
        assert younger.decoded.row != open_row
        scheduler = FRFCFSScheduler()

        def row_of(request):
            return open_row if request is younger else request.decoded.row

        picked = scheduler.pick(bank, [older, younger], (),
                                write_backlog=0, drain_mode=False,
                                row_of=row_of)
        assert picked is younger
        # Without the override, plain FCFS falls back to the oldest.
        picked_plain = scheduler.pick(bank, [older, younger], (),
                                      write_backlog=0, drain_mode=False)
        assert picked_plain is older


class TestFCFSOrdering:
    """Per-bank queues stay in request-id order even for odd arrivals."""

    #: Same bank as address 0x0, next rows (row stride for the default
    #: mapping: 8 kB row x 16 banks).
    ROW_STRIDE = 8192 * 16

    def test_out_of_order_arrival_is_insertion_sorted(self):
        device, cc = _make_channel()
        # Keep the bank busy so requests queue.
        cc.enqueue(_request(device, 0x0), 0)
        first = _request(device, 1 * self.ROW_STRIDE)
        second = _request(device, 2 * self.ROW_STRIDE)
        third = _request(device, 3 * self.ROW_STRIDE)
        assert first.flat_bank == second.flat_bank == third.flat_bank == 0
        # Deliver out of creation order: the controller must restore FCFS
        # (ascending request-id) order in the bank's queue.
        cc.enqueue(second, 0)
        cc.enqueue(third, 0)
        cc.enqueue(first, 0)
        queue = cc._reads_by_bank[first.flat_bank]
        assert [request.request_id for request in queue] \
            == sorted(request.request_id for request in queue)
        assert queue[0] is first

    def test_wraparound_ids_keep_deque_order_consistent(self):
        """Ids that wrapped to small values are ordered like fresh ids.

        The tie-break is "front of the per-bank deque"; the deque is kept
        in ascending request-id order, so a wrapped (small) id sorts first
        exactly as a freshly restarted id counter would.
        """
        device, cc = _make_channel()
        cc.enqueue(_request(device, 0x0), 0)
        late_but_wrapped = _request(device, 1 * self.ROW_STRIDE)
        early_large_id = _request(device, 2 * self.ROW_STRIDE)
        assert late_but_wrapped.flat_bank == early_large_id.flat_bank == 0
        late_but_wrapped.request_id = 3            # wrapped counter
        early_large_id.request_id = 2 ** 62        # pre-wrap id
        cc.enqueue(early_large_id, 0)
        cc.enqueue(late_but_wrapped, 0)
        queue = cc._reads_by_bank[late_but_wrapped.flat_bank]
        assert queue[0] is late_but_wrapped
        assert queue[-1] is early_large_id


# ----------------------------------------------------------------------
# Simulator safety limits.
# ----------------------------------------------------------------------
def _tiny_sim(limits):
    trace = [TraceRecord(bubbles=0, address=index * 4096, is_write=False)
             for index in range(50)]
    config = DRAMConfig(channels=1)
    device = DRAMDevice(config, refresh_enabled=False)
    controller = MemoryController(device, [BaseMechanism()])
    core = TraceCore(0, trace)
    return Simulator([core], controller, limits)


class TestSimulatorLimits:
    def test_event_limit_reports_true_processed_count(self):
        simulator = _tiny_sim(SimulatorLimits(max_events=5))
        with pytest.raises(RuntimeError) as excinfo:
            simulator.run()
        # The limit is checked before the next event is counted, so exactly
        # max_events events were processed and the message says so.
        assert simulator.processed_events == 5
        assert "5" in str(excinfo.value)

    def test_cycle_limit_raises(self):
        simulator = _tiny_sim(SimulatorLimits(max_cycles=1))
        with pytest.raises(RuntimeError, match="cycles"):
            simulator.run()

    def test_unconstrained_run_finishes(self):
        simulator = _tiny_sim(None)
        finish = simulator.run()
        assert finish > 0
        assert simulator.processed_events > 0


# ----------------------------------------------------------------------
# Lazily-invalidated helper structures.
# ----------------------------------------------------------------------
class TestWakeupHeap:
    def test_next_wakeup_tracks_earliest_pending_bank(self):
        device, cc = _make_channel()
        # Two banks with queued work behind a busy bank each.
        for address in (0x0, 0x40, 0x100000, 0x100040):
            cc.enqueue(_request(device, address), 0)
        wake = cc.next_wakeup()
        assert wake is not None
        # Waking at the due cycle services the due bank and re-arms later
        # wake-ups; the reported next wake-up never moves backwards.
        previous = wake
        for _ in range(16):
            if cc.next_wakeup() is None:
                break
            now = max(previous, cc.next_wakeup())
            cc.wake(now)
            nxt = cc.next_wakeup()
            if nxt is None:
                break
            assert nxt > now
            previous = nxt
        assert not cc.has_pending_work()


class TestTagStoreFreeHeap:
    def test_first_free_slot_matches_full_scan(self):
        tags = FigTagStore(num_cache_rows=2, segments_per_row=4)
        assert tags.first_free_slot() == tags.free_slots()[0] == 0
        for slot in range(8):
            tags.insert(slot, source_row=slot, source_segment=0)
        assert tags.first_free_slot() is None
        assert tags.free_slots() == []
        tags.evict(5)
        tags.evict(2)
        assert tags.first_free_slot() == tags.free_slots()[0] == 2
        tags.insert(2, source_row=100, source_segment=1)
        assert tags.first_free_slot() == tags.free_slots()[0] == 5
