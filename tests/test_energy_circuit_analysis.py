"""Tests for the energy models, the RELOC circuit analysis, and the
hardware-overhead accounting."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import OverheadModel
from repro.circuit import (BitlineParams, ChargeSharingModel,
                           analyze_reloc_timing)
from repro.dram import CommandCounters, DRAMConfig
from repro.energy import (DRAMEnergyModel, DRAMEnergyParams,
                          SystemEnergyModel)
from repro.energy.system_energy import SystemActivity


def counters(activates=0, reads=0, writes=0, relocs=0, refreshes=0,
             fast_activates=0):
    result = CommandCounters()
    result.activates = activates
    result.fast_activates = fast_activates
    result.reads = reads
    result.writes = writes
    result.relocs = relocs
    result.refreshes = refreshes
    return result


# ----------------------------------------------------------------------
# DRAM energy.
# ----------------------------------------------------------------------
class TestDRAMEnergy:
    def test_zero_activity_only_background(self):
        model = DRAMEnergyModel()
        breakdown = model.energy(counters(), elapsed_ns=1000.0)
        assert breakdown.activation_nj == 0
        assert breakdown.background_nj > 0
        assert breakdown.total_nj == pytest.approx(breakdown.background_nj)

    def test_commands_add_energy_linearly(self):
        model = DRAMEnergyModel()
        one = model.energy(counters(activates=1, reads=1), 0.0)
        two = model.energy(counters(activates=2, reads=2), 0.0)
        assert two.total_nj == pytest.approx(2 * one.total_nj)

    def test_fast_activations_cost_less(self):
        model = DRAMEnergyModel()
        slow = model.energy(counters(activates=10), 0.0)
        fast = model.energy(counters(activates=10, fast_activates=10), 0.0)
        assert fast.activation_nj < slow.activation_nj

    def test_relocation_energy_close_to_paper_estimate(self):
        model = DRAMEnergyModel()
        energy_uj = model.relocation_energy_uj(1)
        assert 0.01 <= energy_uj <= 0.06  # the paper estimates 0.03 uJ

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            DRAMEnergyParams(read_nj=-1.0).validate()
        with pytest.raises(ValueError):
            DRAMEnergyParams(fast_act_pre_scale=0.0).validate()

    def test_negative_elapsed_rejected(self):
        model = DRAMEnergyModel()
        with pytest.raises(ValueError):
            model.energy(counters(), -1.0)

    @given(st.integers(0, 10000), st.integers(0, 10000))
    @settings(max_examples=30, deadline=None)
    def test_total_is_sum_of_components(self, reads, writes):
        model = DRAMEnergyModel()
        breakdown = model.energy(counters(reads=reads, writes=writes), 500.0)
        assert breakdown.total_nj == pytest.approx(
            breakdown.activation_nj + breakdown.read_nj + breakdown.write_nj
            + breakdown.reloc_nj + breakdown.refresh_nj
            + breakdown.background_nj)


# ----------------------------------------------------------------------
# System energy.
# ----------------------------------------------------------------------
def activity(elapsed_ns=1e6, instructions=100000, has_tag_store=False):
    return SystemActivity(elapsed_ns=elapsed_ns, num_cores=1, num_channels=1,
                          instructions=instructions, l1l2_accesses=50000,
                          llc_accesses=10000, offchip_blocks=5000,
                          dram_counters=counters(activates=2000, reads=4000,
                                                 writes=1000),
                          has_tag_store=has_tag_store)


class TestSystemEnergy:
    def test_breakdown_components_positive(self):
        model = SystemEnergyModel()
        breakdown = model.energy(activity())
        for value in (breakdown.cpu_nj, breakdown.l1l2_nj, breakdown.llc_nj,
                      breakdown.offchip_nj, breakdown.dram_nj):
            assert value > 0

    def test_shorter_runtime_reduces_static_energy(self):
        model = SystemEnergyModel()
        long_run = model.energy(activity(elapsed_ns=2e6))
        short_run = model.energy(activity(elapsed_ns=1e6))
        assert short_run.total_nj < long_run.total_nj

    def test_tag_store_adds_small_energy(self):
        model = SystemEnergyModel()
        without = model.energy(activity(has_tag_store=False))
        with_fts = model.energy(activity(has_tag_store=True))
        assert with_fts.llc_nj > without.llc_nj
        assert (with_fts.total_nj - without.total_nj) / without.total_nj < 0.01

    def test_normalisation_to_baseline(self):
        model = SystemEnergyModel()
        base = model.energy(activity(elapsed_ns=2e6))
        improved = model.energy(activity(elapsed_ns=1.5e6))
        normalized = improved.normalized_to(base)
        assert normalized["Total"] < 1.0
        assert set(normalized) == {"CPU", "L1&L2", "LLC", "Off-Chip", "DRAM",
                                   "Total"}


# ----------------------------------------------------------------------
# Circuit-level RELOC analysis.
# ----------------------------------------------------------------------
class TestChargeSharingModel:
    def test_nominal_latency_is_sub_nanosecond(self):
        phases = ChargeSharingModel().simulate()
        assert 0.2 < phases.total_ns < 1.0

    def test_phases_are_positive(self):
        phases = ChargeSharingModel().simulate()
        assert phases.charge_sharing_ns > 0
        assert phases.sensing_ns > 0
        assert phases.restore_ns > 0

    def test_weak_grb_fails_to_sense(self):
        params = BitlineParams(local_bitline_cap=1e-15,
                               sense_threshold=0.6)
        phases = ChargeSharingModel(params).simulate()
        assert math.isinf(phases.total_ns)

    def test_monte_carlo_is_deterministic(self):
        model = ChargeSharingModel()
        a = model.monte_carlo(50, seed=3)
        b = model.monte_carlo(50, seed=3)
        assert [p.total_ns for p in a] == [p.total_ns for p in b]

    def test_monte_carlo_requires_positive_iterations(self):
        with pytest.raises(ValueError):
            ChargeSharingModel().monte_carlo(0)


class TestRelocTimingAnalysis:
    def test_matches_paper_figures(self):
        analysis = analyze_reloc_timing(iterations=800)
        assert 0.4 < analysis.worst_case_latency_ns < 0.75
        assert analysis.guardbanded_latency_ns == pytest.approx(1.0)
        assert analysis.end_to_end_block_ns == pytest.approx(63.5, abs=1.0)
        assert analysis.success_rate == 1.0

    def test_guardband_applied(self):
        analysis = analyze_reloc_timing(iterations=200, guardband=0.43)
        assert analysis.guardbanded_latency_ns >= \
            analysis.worst_case_latency_ns * 1.43 - 0.25

    def test_open_row_path_is_cheaper(self):
        analysis = analyze_reloc_timing(iterations=200)
        assert analysis.end_to_end_block_open_row_ns < \
            analysis.end_to_end_block_ns


# ----------------------------------------------------------------------
# Hardware overhead (Section 8.3).
# ----------------------------------------------------------------------
class TestOverheadModel:
    def test_chip_area_fractions_match_paper(self):
        model = OverheadModel()
        areas = model.mechanism_overheads(DRAMConfig())
        assert areas["FIGARO"] < 0.003            # paper: < 0.3 %
        assert areas["FIGCache-Fast"] == pytest.approx(0.007, abs=0.001)
        assert areas["FIGCache-Slow"] == pytest.approx(0.002, abs=0.0005)
        assert areas["LISA-VILLA"] == pytest.approx(0.056, abs=0.002)

    def test_lisa_villa_costs_8x_figcache_fast(self):
        model = OverheadModel()
        areas = model.mechanism_overheads(DRAMConfig())
        assert areas["LISA-VILLA"] / areas["FIGCache-Fast"] == \
            pytest.approx(8.0, rel=0.01)

    def test_fts_storage_matches_paper(self):
        model = OverheadModel()
        fts = model.fts_overhead(DRAMConfig())
        assert fts.bits_per_entry == 26
        assert fts.entries_per_bank == 512
        assert fts.storage_kb_per_channel == pytest.approx(26.0)
        assert fts.area_mm2 == pytest.approx(0.496, abs=0.02)
        assert fts.area_fraction_of_llc == pytest.approx(0.0144, abs=0.001)
        assert fts.power_mw == pytest.approx(0.187, abs=0.01)

    def test_larger_cache_needs_more_fts_storage(self):
        model = OverheadModel()
        small = model.fts_overhead(DRAMConfig(), cache_rows_per_bank=64)
        large = model.fts_overhead(DRAMConfig(), cache_rows_per_bank=128)
        assert large.storage_kb_per_channel > small.storage_kb_per_channel

    def test_figaro_overhead_scales_with_subarrays(self):
        model = OverheadModel()
        few = model.figaro_overhead(DRAMConfig(subarrays_per_bank=32))
        many = model.figaro_overhead(DRAMConfig(subarrays_per_bank=64))
        assert many.peripheral_area_um2_per_bank > \
            few.peripheral_area_um2_per_bank
