"""Correctness tests for the turbo backend's compiled-plan cache (PR 9).

The turbo backend compiles each core's trace into prefix arrays once per
run (:func:`repro.sim.turbo._compile_core_plan`) and memoizes the result
in a process-wide LRU keyed by everything the compile pass depends on:
the cache-hierarchy signature and the trace itself.  These tests pin the
cache's safety properties:

* repeated runs reuse plans and stay bit-identical,
* configurations whose hierarchies differ never share a plan (while
  DRAM-side-only changes safely do — the plan is CPU-side by
  construction, and the golden/parity suites enforce the physics),
* the LRU eviction bound is respected,
* the ``REPRO_TURBO_PLAN_CACHE=0`` opt-out compiles from scratch, and
* the cache is shared across :class:`JobExecutor` batches, which is the
  state a warm sweep worker carries between dispatch chunks.
"""

import pytest

from repro.cpu.core import CoreConfig
from repro.cpu.hierarchy import HierarchyConfig
from repro.experiments.engine import ExperimentScale, JobExecutor, SimJob
from repro.sim import turbo
from repro.sim.backend import BACKEND_ENV_VAR
from repro.sim.config import make_system_config
from repro.sim.system import run_workload
from repro.workloads.catalog import get_benchmark
from repro.workloads.multiprogram import make_workload_suite

#: Records per trace — enough to produce a non-trivial plan (misses,
#: writebacks) while keeping each simulation a few milliseconds.
RECORDS = 300

TINY = ExperimentScale.tiny()


@pytest.fixture(autouse=True)
def fresh_plan_cache():
    """The cache and its counters are process-global; isolate every test."""
    turbo.clear_plan_cache()
    yield
    turbo.clear_plan_cache()


def _run(workload: str = "gcc", configuration: str = "Base",
         records: int = RECORDS, core: CoreConfig | None = None) -> dict:
    config = make_system_config(configuration, channels=1,
                                backend="turbo", core=core)
    traces = [get_benchmark(workload).make_trace(records)]
    return run_workload(config, traces, workload).to_dict()


class TestPlanReuse:
    def test_repeat_run_hits_the_cache_and_stays_bit_identical(self):
        first = _run()
        stats = turbo.plan_cache_stats()
        assert stats["misses"] == 1
        assert stats["compiles"] == 1
        assert stats["hits"] == 0
        assert stats["size"] == 1

        second = _run()
        stats = turbo.plan_cache_stats()
        assert stats["hits"] == 1
        assert stats["compiles"] == 1  # no recompilation
        assert second == first

    def test_cache_hit_matches_the_reference_backend(self):
        _run()  # populate
        turbo_result = _run()  # served from the plan cache
        assert turbo.plan_cache_stats()["hits"] == 1
        config = make_system_config("Base", channels=1, backend="python")
        traces = [get_benchmark("gcc").make_trace(RECORDS)]
        reference = run_workload(config, traces, "gcc").to_dict()
        assert turbo_result == reference

    def test_distinct_traces_get_distinct_entries(self):
        _run("gcc")
        _run("mcf")
        stats = turbo.plan_cache_stats()
        assert stats["size"] == 2
        assert stats["misses"] == 2
        assert stats["hits"] == 0

    def test_multicore_run_compiles_once_per_core_then_reuses(self):
        suite = {w.name: w for w in make_workload_suite(
            num_cores=TINY.num_cores,
            mixes_per_category=TINY.mixes_per_category)}
        mix = suite["mix-50pct-0"]
        config = make_system_config("Base",
                                    channels=TINY.multicore_channels,
                                    backend="turbo")

        run_workload(config, mix.make_traces(TINY.multicore_records),
                     mix.name)
        stats = turbo.plan_cache_stats()
        assert stats["compiles"] == TINY.num_cores

        run_workload(config, mix.make_traces(TINY.multicore_records),
                     mix.name)
        stats = turbo.plan_cache_stats()
        assert stats["compiles"] == TINY.num_cores  # all cores reused
        assert stats["hits"] == TINY.num_cores


class TestPlanKeying:
    def test_different_hierarchies_never_share_plans(self):
        _run()
        _run(core=CoreConfig(hierarchy=HierarchyConfig.paper_table1()))
        stats = turbo.plan_cache_stats()
        assert stats["size"] == 2
        assert stats["misses"] == 2
        assert stats["hits"] == 0

    def test_dram_side_changes_safely_share_the_cpu_side_plan(self):
        """The plan depends on the trace and hierarchy only, never on the
        DRAM mechanism — so Base and FIGCache-Fast share one entry.  The
        physics stays per-configuration (pinned by the parity suite and
        the goldens); only the CPU-side compile is shared."""
        base = _run(configuration="Base")
        fig = _run(configuration="FIGCache-Fast")
        stats = turbo.plan_cache_stats()
        assert stats["size"] == 1
        assert stats["hits"] == 1
        assert base != fig  # different physics, same plan


class TestEvictionBound:
    def test_lru_bound_is_respected(self, monkeypatch):
        monkeypatch.setattr(turbo, "PLAN_CACHE_CAPACITY", 4)
        distinct = 7
        for extra in range(distinct):
            _run(records=RECORDS + extra)  # distinct trace per run
        stats = turbo.plan_cache_stats()
        assert stats["size"] == 4
        assert stats["misses"] == distinct
        assert stats["evictions"] == distinct - 4

    def test_evicted_plan_recompiles_correctly(self, monkeypatch):
        monkeypatch.setattr(turbo, "PLAN_CACHE_CAPACITY", 1)
        first = _run("gcc")
        _run("mcf")  # evicts the gcc plan
        assert turbo.plan_cache_stats()["evictions"] == 1
        again = _run("gcc")  # recompiled, not stale
        assert turbo.plan_cache_stats()["misses"] == 3
        assert again == first


class TestOptOut:
    def test_env_opt_out_compiles_every_run(self, monkeypatch):
        monkeypatch.setenv(turbo.PLAN_CACHE_ENV, "0")
        assert not turbo.plan_cache_enabled()
        first = _run()
        second = _run()
        stats = turbo.plan_cache_stats()
        assert stats["enabled"] is False
        assert stats["bypasses"] == 2
        assert stats["compiles"] == 2
        assert stats["hits"] == 0
        assert stats["size"] == 0
        assert second == first


class TestExecutorSharing:
    def test_batches_share_the_plan_cache(self, monkeypatch):
        """Two executor batches over the same benchmark compile once.

        ``jobs=1`` runs both batches in this process — exactly the state
        one warm pool worker carries across dispatch chunks (the cache is
        module-global, and the PR-7 pool keeps workers alive between
        batches; ``TestWarmPool`` pins that).  The second batch evaluates
        a different configuration on the same trace, so the result cache
        cannot absorb it — only the plan cache explains compiles == 1.
        """
        monkeypatch.setenv(BACKEND_ENV_VAR, "turbo")
        executor = JobExecutor(jobs=1)
        executor.run([SimJob.single_core("Base", "gcc", TINY)])
        mid = turbo.plan_cache_stats()
        assert mid["compiles"] == 1

        executor.run([SimJob.single_core("FIGCache-Fast", "gcc", TINY)])
        after = turbo.plan_cache_stats()
        assert executor.simulations_executed == 2
        assert after["compiles"] == 1  # second batch reused the plan
        assert after["hits"] == mid["hits"] + 1
