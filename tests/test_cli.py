"""Tests for the ``python -m repro`` command-line interface (PR 4).

Parser round-trips (arguments survive into the parsed namespace) plus
smoke tests of the informational subcommands' output.  Simulation-heavy
subcommands are exercised end to end elsewhere (``test_engine.py`` and
``test_telemetry.py``); here only the cheap ones actually run.
"""

import pytest

from repro import cli
from repro.sim.telemetry import DEFAULT_EPOCH_CYCLES


@pytest.fixture()
def parser():
    return cli.build_parser()


# ----------------------------------------------------------------------
# Parser round-trips.
# ----------------------------------------------------------------------
class TestParserRoundTrips:
    def test_run_figure_defaults(self, parser):
        args = parser.parse_args(["run-figure", "7"])
        assert args.figure == "7"
        assert args.scale == "paper"
        assert args.jobs is None
        assert args.cache_dir is None
        assert args.func is cli._cmd_run_figure

    def test_run_figure_named_studies_are_choices(self, parser):
        for name in ("dram-types", "latency"):
            args = parser.parse_args(["run-figure", name, "--scale",
                                      "smoke", "--jobs", "2"])
            assert args.figure == name
            assert args.scale == "smoke"
            assert args.jobs == 2

    def test_run_figure_rejects_unknown_figure(self, parser):
        with pytest.raises(SystemExit):
            parser.parse_args(["run-figure", "99"])

    def test_run_static_round_trip(self, parser):
        args = parser.parse_args(["run-static", "table1",
                                  "--cache-dir", "none"])
        assert args.name == "table1"
        assert args.cache_dir == "none"
        assert args.func is cli._cmd_run_static

    def test_sweep_int_lists(self, parser):
        args = parser.parse_args(["sweep", "--segment-blocks", "8,32",
                                  "--cache-rows", "64"])
        assert args.segment_blocks == [8, 32]
        assert args.cache_rows == [64]

    def test_bench_round_trip(self, parser):
        args = parser.parse_args(["bench", "--quick", "--repeats", "5",
                                  "--output-dir", "out"])
        assert args.quick is True
        assert args.repeats == 5
        assert args.output_dir == "out"
        assert args.func is cli._cmd_bench

    def test_bench_sweep_round_trip(self, parser):
        args = parser.parse_args(["bench", "--sweep", "--sweep-jobs", "1,2",
                                  "--output-name", "BENCH_pr7"])
        assert args.sweep is True
        assert args.sweep_jobs == [1, 2]
        assert args.output_name == "BENCH_pr7"

    def test_bench_sweep_defaults(self, parser):
        args = parser.parse_args(["bench"])
        assert args.sweep is False
        assert args.sweep_jobs == [1, 2, 4]
        assert args.output_name is None

    def test_timeline_round_trip(self, parser):
        args = parser.parse_args(["timeline", "lbm",
                                  "--configuration", "Base",
                                  "--epoch", "12345", "--scale", "tiny"])
        assert args.workload == "lbm"
        assert args.configuration == "Base"
        assert args.epoch == 12345
        assert args.scale == "tiny"
        assert args.func is cli._cmd_timeline

    def test_timeline_defaults(self, parser):
        args = parser.parse_args(["timeline", "mcf"])
        assert args.configuration == "FIGCache-Fast"
        assert args.epoch == DEFAULT_EPOCH_CYCLES

    def test_standards_and_cache_round_trips(self, parser):
        assert parser.parse_args(["standards", "list"]) \
            .standards_command == "list"
        assert parser.parse_args(["standards", "smoke", "--scale", "tiny"]) \
            .scale == "tiny"
        assert parser.parse_args(["cache", "clear"]).cache_command == "clear"

    def test_missing_subcommand_exits(self, parser):
        with pytest.raises(SystemExit):
            parser.parse_args([])


# ----------------------------------------------------------------------
# Output smoke tests (cheap, no simulations).
# ----------------------------------------------------------------------
class TestOutputSmoke:
    def test_list_enumerates_everything(self, capsys):
        assert cli.main(["list"]) == 0
        out = capsys.readouterr().out
        assert "figures (run-figure N):" in out
        assert "dram-types" in out
        assert "latency" in out
        assert "table1" in out
        assert "DDR4-1600" in out

    def test_standards_list_prints_catalog_table(self, capsys):
        assert cli.main(["standards", "list"]) == 0
        out = capsys.readouterr().out
        assert "DRAM device catalog" in out
        for name in ("DDR4-1600", "LPDDR4-3200", "HBM2", "DDR5-4800"):
            assert name in out

    def test_cache_stats_reports_directory(self, tmp_path, capsys):
        assert cli.main(["cache", "stats",
                         "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert f"cache directory : {tmp_path}" in out
        assert "disk entries    : 0" in out
        assert "salt" in out

    def test_cache_clear_empty_directory(self, tmp_path, capsys):
        assert cli.main(["cache", "clear",
                         "--cache-dir", str(tmp_path)]) == 0
        assert "cleared 0 cached result(s)" in capsys.readouterr().out

    def test_timeline_unknown_benchmark_is_a_clean_error(self, capsys):
        assert cli.main(["timeline", "no-such-benchmark",
                         "--cache-dir", "none", "--scale", "tiny"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_timeline_smoke_run(self, capsys):
        assert cli.main(["timeline", "lbm", "--cache-dir", "none",
                         "--scale", "tiny", "--configuration", "Base",
                         "--epoch", "10000"]) == 0
        out = capsys.readouterr().out
        assert "timeline: lbm on Base" in out
        assert "read latency (cycles):" in out
        assert "p99" in out
