"""Tests for the unified telemetry pipeline (PR 4).

Covers the exact latency histograms, the epoch time-series sampler, the
observation-must-not-perturb guarantee (golden fixtures bit-identical with
telemetry ON), serialisation round trips through the result cache format,
the configuration registry extension point, and the tolerant
``from_dict`` fallbacks for older cached payloads.
"""

import json
from pathlib import Path

import pytest

from repro.experiments.engine import ExperimentScale
from repro.experiments.figures import figure_latency
from repro.sim.config import (MECHANISM_REGISTRY, configuration_names,
                              make_mechanism, make_system_config,
                              register_configuration)
from repro.sim.metrics import CoreResult, SimulationResult
from repro.sim.system import run_workload
from repro.sim.telemetry import (DEFAULT_EPOCH_CYCLES, EpochSeries,
                                 LatencyHistogram, TelemetryConfig,
                                 TelemetryResult)
from repro.workloads.catalog import get_benchmark

GOLDEN_PATH = Path(__file__).parent / "golden" / "scheduler_equivalence.json"


def _run_single(configuration: str, benchmark: str = "lbm",
                records: int = 1500, **overrides):
    trace = [get_benchmark(benchmark).make_trace(records)]
    config = make_system_config(configuration, **overrides)
    return run_workload(config, trace, benchmark)


# ----------------------------------------------------------------------
# Latency histograms.
# ----------------------------------------------------------------------
class TestLatencyHistogram:
    def test_exact_percentiles_match_sorted_list(self):
        import math
        import random
        rng = random.Random(7)
        values = [rng.randrange(0, 2000) for _ in range(1234)]
        histogram = LatencyHistogram()
        for value in values:
            histogram.record(value)
        ordered = sorted(values)
        for fraction in (0.5, 0.9, 0.95, 0.99, 1.0):
            # Nearest-rank definition: value at ceil(fraction * count).
            rank = max(1, math.ceil(round(fraction * len(values), 9)))
            assert histogram.percentile(fraction) == ordered[rank - 1], \
                fraction

    def test_empty_histogram_is_all_zero(self):
        histogram = LatencyHistogram()
        assert histogram.count == 0
        assert histogram.mean == 0.0
        assert histogram.percentile(0.99) == 0
        assert histogram.max == 0
        assert histogram.buckets() == []

    def test_mean_and_total_are_exact(self):
        histogram = LatencyHistogram()
        histogram.record(100, count=3)
        histogram.record(7)
        assert histogram.count == 4
        assert histogram.total == 307
        assert histogram.mean == 307 / 4

    def test_percentile_float_noise_does_not_inflate_rank(self):
        histogram = LatencyHistogram()
        for value in range(1, 101):  # 100 distinct latencies 1..100
            histogram.record(value)
        # 0.99 * 100 == 99.00000000000001 in floating point; the rank must
        # still be 99, not 100.
        assert histogram.percentile(0.99) == 99

    def test_power_of_two_buckets(self):
        histogram = LatencyHistogram()
        for value, count in ((0, 2), (1, 1), (2, 1), (3, 1), (4, 1),
                             (9, 5)):
            histogram.record(value, count)
        buckets = histogram.buckets()
        # Inclusive lower bounds: 0, 1, [2,4), [4,8), [8,16).
        assert buckets == [(0, 2), (1, 1), (2, 2), (4, 1), (8, 5)]
        assert sum(count for _, count in buckets) == histogram.count

    def test_merge_and_round_trip(self):
        first = LatencyHistogram({10: 2, 20: 1})
        second = LatencyHistogram({20: 3, 30: 1})
        first.merge(second)
        assert first.counts == {10: 2, 20: 4, 30: 1}
        rebuilt = LatencyHistogram.from_dict(
            json.loads(json.dumps(first.to_dict())))
        assert rebuilt.counts == first.counts

    def test_invalid_inputs_rejected(self):
        histogram = LatencyHistogram()
        with pytest.raises(ValueError):
            histogram.record(-1)
        with pytest.raises(ValueError):
            histogram.percentile(0.0)
        with pytest.raises(ValueError):
            histogram.percentile(1.5)


# ----------------------------------------------------------------------
# End-to-end collection.
# ----------------------------------------------------------------------
class TestTelemetryCollection:
    def test_off_by_default(self):
        result = _run_single("Base")
        assert result.telemetry is None
        assert "telemetry" not in result.to_dict()

    def test_histograms_back_the_mean_latency_metric(self):
        result = _run_single("FIGCache-Fast", telemetry=True)
        telemetry = result.telemetry
        assert telemetry is not None
        assert telemetry.read_latency.count == result.memory_reads
        assert telemetry.write_latency.count == result.memory_writes
        assert telemetry.read_latency.mean \
            == result.average_read_latency_cycles

    def test_epoch_deltas_sum_to_totals(self):
        result = _run_single("FIGCache-Fast", records=4000, telemetry=True,
                             telemetry_epoch_cycles=10_000)
        epochs = result.telemetry.epochs
        assert len(epochs) >= 2
        assert sum(epochs.instructions) == result.instructions
        assert sum(epochs.reads) == result.memory_reads
        assert sum(epochs.writes) == result.memory_writes
        assert sum(epochs.cache_lookups) == result.cache_lookups
        assert sum(epochs.cache_hits) == result.cache_hits
        counters = result.dram_counters
        assert sum(epochs.row_hits) == counters.row_hits
        assert sum(epochs.row_misses) == counters.row_misses
        assert sum(epochs.row_conflicts) == counters.row_conflicts

    def test_epoch_boundaries_and_final_partial_epoch(self):
        epoch = 10_000
        result = _run_single("Base", records=4000, telemetry=True,
                             telemetry_epoch_cycles=epoch)
        ends = result.telemetry.epochs.end_cycle
        assert all(later > earlier
                   for earlier, later in zip(ends, ends[1:]))
        assert all(end % epoch == 0 for end in ends[:-1])
        # The trailing sample covers the drain: it ends at or after the
        # last full boundary and is not in the future.
        assert ends[-1] >= len(ends[:-1]) * epoch

    def test_queue_depths_one_entry_per_channel(self):
        result = _run_single("Base", telemetry=True, channels=2)
        for depths in result.telemetry.epochs.queue_depths:
            assert len(depths) == 2

    def test_rows_derive_rates(self):
        result = _run_single("FIGCache-Fast", records=4000, telemetry=True,
                             telemetry_epoch_cycles=10_000)
        telemetry = result.telemetry
        rows = telemetry.epochs.rows(telemetry.cpu_clock_ghz)
        assert len(rows) == len(telemetry.epochs)
        for row in rows:
            assert 0.0 <= row["row_buffer_hit_rate"] <= 1.0
            assert 0.0 <= row["cache_hit_rate"] <= 1.0
            assert row["ipc"] >= 0.0
            assert row["read_gbps"] >= 0.0

    def test_result_round_trip_with_telemetry(self):
        result = _run_single("LISA-VILLA", telemetry=True)
        payload = json.loads(json.dumps(result.to_dict()))
        rebuilt = SimulationResult.from_dict(payload)
        assert rebuilt.to_dict() == result.to_dict()
        assert rebuilt.telemetry.read_latency.counts \
            == result.telemetry.read_latency.counts

    def test_custom_probe_sampled_every_epoch(self):
        from repro.sim.simulator import Simulator
        from repro.sim.system import System
        from repro.sim.telemetry import Telemetry

        config = make_system_config("Base", telemetry=True,
                                    telemetry_epoch_cycles=10_000)
        trace = [get_benchmark("lbm").make_trace(4000)]
        system = System(config, trace)
        telemetry = Telemetry(config.telemetry, system.cores,
                              system.controller, system.mechanisms)
        cycles_seen = []
        telemetry.add_probe("boundary", lambda cycle:
                            (cycles_seen.append(cycle), cycle)[1])
        with pytest.raises(ValueError):
            telemetry.add_probe("boundary", lambda cycle: cycle)
        Simulator(system.cores, system.controller,
                  telemetry=telemetry).run()
        assert telemetry.series.extra["boundary"] \
            == telemetry.series.end_cycle
        assert cycles_seen == telemetry.series.end_cycle

    def test_telemetry_config_validation(self):
        with pytest.raises(ValueError):
            TelemetryConfig(epoch_cycles=0)


# ----------------------------------------------------------------------
# Observation must not perturb simulation.
# ----------------------------------------------------------------------
class TestGoldenStabilityWithTelemetryOn:
    """Pre-PR-2 golden results reproduce bit for bit with telemetry ON."""

    with GOLDEN_PATH.open(encoding="utf-8") as _handle:
        GOLDEN = json.load(_handle)

    @pytest.mark.parametrize("key", sorted(
        key for key in GOLDEN if key.startswith("single:")))
    def test_single_core_golden_unchanged(self, key):
        scale = ExperimentScale.smoke()
        _, configuration, workload = key.split(":", 2)
        config = make_system_config(configuration, channels=1,
                                    telemetry=True,
                                    telemetry_epoch_cycles=10_000)
        traces = [get_benchmark(workload)
                  .make_trace(scale.single_core_records)]
        observed = run_workload(config, traces, workload).to_dict()
        telemetry = observed.pop("telemetry")
        assert observed == self.GOLDEN[key], \
            f"telemetry perturbed {key}"
        assert telemetry["read_latency"]["counts"], \
            "telemetry section should have recorded read latencies"


# ----------------------------------------------------------------------
# Configuration registry (satellite).
# ----------------------------------------------------------------------
class TestConfigurationRegistry:
    def test_builtin_names_derived_from_registry(self):
        assert configuration_names()[:6] == (
            "Base", "LISA-VILLA", "FIGCache-Slow", "FIGCache-Fast",
            "FIGCache-Ideal", "LL-DRAM")

    def test_unknown_configuration_rejected(self):
        with pytest.raises(ValueError, match="unknown configuration"):
            make_system_config("NoSuchConfig")

    def test_duplicate_registration_rejected(self):
        from repro.baselines.base import BaseMechanism
        with pytest.raises(ValueError, match="already registered"):
            register_configuration("Base", lambda config: BaseMechanism())

    def test_runtime_registered_configuration_builds_and_runs(self):
        from dataclasses import replace

        from repro.baselines.base import BaseMechanism

        name = "Test-Open-Page"
        if name not in MECHANISM_REGISTRY:
            register_configuration(
                name,
                lambda config: BaseMechanism(),
                prepare=lambda dram, knobs:
                    (replace(dram, all_subarrays_fast=True), None, None),
                description="test-only registration")
        try:
            assert name in configuration_names()
            config = make_system_config(name)
            assert config.dram.all_subarrays_fast
            mechanisms = make_mechanism(config)
            assert len(mechanisms) == config.dram.channels
            result = _run_single(name, records=400)
            assert result.configuration == name
            assert result.total_cycles > 0
        finally:
            MECHANISM_REGISTRY.pop(name, None)


# ----------------------------------------------------------------------
# Tolerant from_dict (satellite).
# ----------------------------------------------------------------------
class TestFromDictTolerance:
    def test_result_missing_newer_fields_falls_back_to_defaults(self):
        payload = {
            "configuration": "Base",
            "workload": "lbm",
            "cores": [{"core_id": 0, "instructions": 10, "cycles": 20}],
            "total_cycles": 20,
        }
        result = SimulationResult.from_dict(payload)
        assert result.elapsed_ns == 0.0
        assert result.memory_reads == 0
        assert result.relocation_cycles == 0
        assert result.dram_counters.activates == 0
        assert result.energy is None
        assert result.telemetry is None
        assert result.cores[0].llc_misses == 0
        assert result.cores[0].memory_instructions == 0

    def test_counters_missing_fields_fall_back_to_zero(self):
        from repro.dram.counters import CommandCounters
        counters = CommandCounters.from_dict({"reads": 5})
        assert counters.reads == 5
        assert counters.activates == 0
        assert counters.row_hits == 0

    def test_identity_fields_still_required(self):
        with pytest.raises(KeyError):
            SimulationResult.from_dict({"workload": "lbm", "cores": [],
                                        "total_cycles": 0})

    def test_newer_telemetry_schema_treated_as_absent(self):
        result = _run_single("Base", records=400, telemetry=True)
        payload = result.to_dict()
        payload["telemetry"]["version"] = 99
        rebuilt = SimulationResult.from_dict(payload)
        assert rebuilt.telemetry is None

    def test_core_result_round_trip(self):
        core = CoreResult(core_id=1, instructions=5, cycles=9,
                          llc_misses=2, memory_instructions=3)
        assert CoreResult.from_dict(core.to_dict()) == core


# ----------------------------------------------------------------------
# Stats-producer protocol.
# ----------------------------------------------------------------------
class TestTelemetryCountersProtocol:
    def test_every_producer_exposes_cumulative_integers(self):
        from repro.sim.system import System

        config = make_system_config("FIGCache-Fast")
        trace = [get_benchmark("lbm").make_trace(800)]
        system = System(config, trace)
        system.run("lbm")
        producers = ([core.stats for core in system.cores]
                     + [mechanism.stats for mechanism in system.mechanisms]
                     + list(system.controller.channel_controllers)
                     + [channel_controller.channel.counters
                        for channel_controller
                        in system.controller.channel_controllers])
        for producer in producers:
            counters = producer.telemetry_counters()
            assert counters, type(producer).__name__
            for name, value in counters.items():
                assert isinstance(value, int) and value >= 0, \
                    (type(producer).__name__, name)


# ----------------------------------------------------------------------
# The latency study.
# ----------------------------------------------------------------------
class TestLatencyStudy:
    def test_smoke_scale_reports_percentile_rows(self):
        from repro.experiments import engine
        engine.reset()
        try:
            data = figure_latency(ExperimentScale.tiny())
        finally:
            engine.reset()
        assert data["columns"] == ["category", "configuration", "p50",
                                   "p95", "p99", "max", "mean"]
        configurations = {row[1] for row in data["rows"]}
        assert {"Base", "FIGCache-Fast", "LISA-VILLA"} <= configurations
        for row in data["rows"]:
            _, _, p50, p95, p99, maximum, mean = row
            assert 0 < p50 <= p95 <= p99 <= maximum
            assert mean > 0

    def test_figcache_fast_cuts_p99_on_memory_intensive_set(self):
        """The acceptance claim, at the default (paper) scale."""
        from repro.experiments import engine
        engine.reset()
        try:
            data = figure_latency()
        finally:
            engine.reset()
        by_key = {(row[0], row[1]): row for row in data["rows"]}
        base = by_key[("Memory Intensive", "Base")]
        figcache = by_key[("Memory Intensive", "FIGCache-Fast")]
        assert figcache[4] < base[4], \
            f"FIGCache-Fast p99 {figcache[4]} !< Base p99 {base[4]}"


# ----------------------------------------------------------------------
# EpochSeries serialisation.
# ----------------------------------------------------------------------
class TestEpochSeries:
    def test_round_trip_preserves_columns_and_extra(self):
        series = EpochSeries()
        series.end_cycle[:] = [100, 200]
        series.instructions[:] = [10, 20]
        series.reads[:] = [1, 2]
        series.writes[:] = [0, 1]
        series.row_hits[:] = [1, 1]
        series.row_misses[:] = [0, 1]
        series.row_conflicts[:] = [0, 0]
        series.cache_lookups[:] = [1, 2]
        series.cache_hits[:] = [0, 2]
        series.queue_depths[:] = [[0], [3]]
        series.extra["probe"] = [7, 8]
        rebuilt = EpochSeries.from_dict(
            json.loads(json.dumps(series.to_dict())))
        assert rebuilt == series

    def test_from_dict_tolerates_missing_columns(self):
        rebuilt = EpochSeries.from_dict({"end_cycle": [100]})
        assert rebuilt.end_cycle == [100]
        assert rebuilt.instructions == []
        assert rebuilt.queue_depths == []

    def test_telemetry_result_from_dict_defaults(self):
        rebuilt = TelemetryResult.from_dict({})
        assert rebuilt.epoch_cycles == DEFAULT_EPOCH_CYCLES
        assert rebuilt.read_latency.count == 0
        assert len(rebuilt.epochs) == 0
