"""Tests for the declarative experiment engine: job specs, content-addressed
keys, result serialization, the sharded persistent cache, the warm-pool
parallel executor, and the ``python -m repro`` CLI."""

import dataclasses
import json
import math
import os
import pickle
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.cli import main
from repro.experiments import engine
from repro.experiments.engine import (JobExecutionError, JobExecutor,
                                      ResultCache, SimJob, cache_salt)
from repro.experiments.engine.executor import _chunked
from repro.experiments.engine.spec import ExperimentScale
from repro.experiments.figures import figure9_cache_hit_rate
from repro.experiments.runner import geometric_mean
from repro.sim.metrics import SimulationResult
from repro.workloads.multiprogram import make_multiprogrammed_workload

TINY = ExperimentScale.tiny()


@dataclasses.dataclass(frozen=True)
class PoisonJob:
    """A picklable job whose materialization fails (or kills its worker).

    Implements the small protocol the executor needs — ``key()``,
    ``trace_signature()``, ``config_signature()``, ``workload_name``,
    ``build_config()``, ``build_traces()``, ``describe()`` — without being
    a real :class:`SimJob`.  The ``zzz`` signature prefix sorts it after
    every real job, so real chunks run (and cache) first.
    """

    name: str = "poison"
    #: ``None`` raises in the worker; an int calls ``os._exit`` (killing
    #: the worker process and breaking the pool).
    exit_code: int | None = None

    def key(self):
        return f"poison:{self.name}:{self.exit_code}"

    def trace_signature(self):
        return ("zzz-poison", self.name)

    def config_signature(self):
        return ("zzz-poison", self.name)

    @property
    def workload_name(self):
        return self.name

    def build_config(self):
        if self.exit_code is not None:
            os._exit(self.exit_code)
        raise RuntimeError("this job is poisoned")

    def build_traces(self):
        return []

    def describe(self):
        return {"kind": "poison", "name": self.name}


@pytest.fixture(autouse=True)
def fresh_default_engine():
    """Keep the process-wide default engine isolated per test."""
    engine.reset()
    yield
    engine.reset()


class TestSimJob:
    def test_key_is_stable_across_equal_jobs(self):
        a = SimJob.single_core("FIGCache-Fast", "lbm", TINY)
        b = SimJob.single_core("FIGCache-Fast", "lbm",
                               ExperimentScale.tiny())
        assert a == b
        assert a.key() == b.key()

    def test_key_distinguishes_inputs(self):
        base = SimJob.single_core("FIGCache-Fast", "lbm", TINY)
        keys = {
            base.key(),
            SimJob.single_core("Base", "lbm", TINY).key(),
            SimJob.single_core("FIGCache-Fast", "mcf", TINY).key(),
            SimJob.single_core("FIGCache-Fast", "lbm", TINY,
                               segment_blocks=32).key(),
            SimJob.single_core(
                "FIGCache-Fast", "lbm",
                ExperimentScale.tiny().__class__(
                    single_core_records=500)).key(),
        }
        assert len(keys) == 5

    def test_key_ignores_scale_fields_that_do_not_affect_the_job(self):
        # mixes_per_category only selects which jobs a figure creates; a
        # single-core job's simulation is unaffected, so the cache entry
        # must be shared.
        import dataclasses
        a = SimJob.single_core("Base", "lbm", TINY)
        other_scale = dataclasses.replace(TINY, mixes_per_category=5,
                                          benchmarks_per_class=3)
        b = SimJob.single_core("Base", "lbm", other_scale)
        assert a.key() == b.key()

    def test_multicore_job_builds_and_keys(self):
        workload = make_multiprogrammed_workload(1.0, 0, num_cores=2)
        job = SimJob.multicore("FIGCache-Fast", workload, TINY)
        assert job.workload_name == workload.name
        assert job.channels == TINY.multicore_channels
        assert len(job.build_traces()) == 2
        assert job.key() != SimJob.multicore("Base", workload, TINY).key()

    def test_jobs_are_picklable(self):
        workload = make_multiprogrammed_workload(0.5, 1, num_cores=2)
        for job in (SimJob.single_core("LISA-VILLA", "mcf", TINY),
                    SimJob.multicore("FIGCache-Slow", workload, TINY)):
            clone = pickle.loads(pickle.dumps(job))
            assert clone == job
            assert clone.key() == job.key()

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            SimJob(kind="weird", configuration="Base", scale=TINY)
        with pytest.raises(ValueError):
            SimJob(kind="single-core", configuration="Base", scale=TINY)


class TestResultSerialization:
    def test_round_trip_is_exact(self):
        result = SimJob.single_core("FIGCache-Fast", "lbm", TINY).run()
        data = json.loads(json.dumps(result.to_dict()))
        clone = SimulationResult.from_dict(data)
        assert clone == result
        assert clone.to_dict() == result.to_dict()
        # The energy breakdown survives to the bit.
        assert clone.energy == result.energy
        assert clone.energy.total_nj == result.energy.total_nj
        assert clone.row_buffer_hit_rate == result.row_buffer_hit_rate

    def test_round_trip_preserves_row_activation_counts(self):
        result = SimJob.single_core("Base", "lbm", TINY,
                                    track_row_activations=True).run()
        counts = result.dram_counters.row_activation_counts
        assert counts  # tuple-keyed dict, the hard case for JSON
        clone = SimulationResult.from_dict(
            json.loads(json.dumps(result.to_dict())))
        assert clone.dram_counters.row_activation_counts == counts
        assert clone.dram_counters == result.dram_counters


class TestResultCache:
    def test_memory_only_cache(self):
        cache = ResultCache()
        assert not cache.persistent
        assert cache.get("missing") is None
        result = SimJob.single_core("Base", "gcc", TINY).run()
        cache.put("k", result)
        assert cache.get("k") == result
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.stores) == (1, 1, 1)

    def test_persistent_cache_survives_new_instance(self, tmp_path):
        job = SimJob.single_core("FIGCache-Slow", "mcf", TINY)
        result = job.run()
        ResultCache(tmp_path).put(job.key(), result)
        reloaded = ResultCache(tmp_path).get(job.key())
        assert reloaded == result

    def test_stale_salt_is_a_miss(self, tmp_path):
        job = SimJob.single_core("Base", "gcc", TINY)
        cache = ResultCache(tmp_path)
        cache.put(job.key(), job.run())
        path = cache._path(job.key())
        payload = json.loads(path.read_text())
        assert payload["salt"] == cache_salt()
        payload["salt"] = "0:0.0.0"
        path.write_text(json.dumps(payload))
        assert ResultCache(tmp_path).get(job.key()) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        job = SimJob.single_core("Base", "gcc", TINY)
        cache = ResultCache(tmp_path)
        cache.put(job.key(), job.run())
        cache._path(job.key()).write_text("{not json")
        assert ResultCache(tmp_path).get(job.key()) is None

    def test_clear_removes_disk_entries(self, tmp_path):
        job = SimJob.single_core("Base", "gcc", TINY)
        cache = ResultCache(tmp_path)
        cache.put(job.key(), job.run())
        assert cache.stats().disk_entries == 1
        cache.clear()
        assert cache.stats().disk_entries == 0
        assert not list(tmp_path.glob("*.json"))
        assert not list(tmp_path.glob("*/*.json"))

    def test_layout_is_sharded_by_key_prefix(self, tmp_path):
        job = SimJob.single_core("Base", "gcc", TINY)
        key = job.key()
        cache = ResultCache(tmp_path)
        cache.put(key, job.run())
        path = tmp_path / key[:2] / f"{key}.json"
        assert path.is_file()
        # Nothing lands flat in the cache root any more.
        assert not list(tmp_path.glob("*.json"))

    def test_legacy_flat_entries_remain_readable(self, tmp_path):
        job = SimJob.single_core("Base", "gcc", TINY)
        key = job.key()
        result = job.run()
        cache = ResultCache(tmp_path)
        cache.put(key, result)
        # Rewrite the entry in the pre-sharding flat layout.
        sharded = cache._path(key)
        flat = tmp_path / f"{key}.json"
        flat.write_bytes(sharded.read_bytes())
        sharded.unlink()
        sharded.parent.rmdir()
        assert ResultCache(tmp_path).get(key) == result

    def test_put_migrates_legacy_entry_into_shard(self, tmp_path):
        job = SimJob.single_core("Base", "gcc", TINY)
        key = job.key()
        result = job.run()
        cache = ResultCache(tmp_path)
        cache.put(key, result)
        flat = tmp_path / f"{key}.json"
        flat.write_bytes(cache._path(key).read_bytes())
        cache._path(key).unlink()

        fresh = ResultCache(tmp_path)
        assert fresh.stats().disk_legacy == 1
        fresh.put(key, result)
        assert not flat.exists()
        assert fresh._path(key).is_file()
        assert fresh.stats().disk_legacy == 0
        assert ResultCache(tmp_path).get(key) == result

    def test_clear_removes_legacy_flat_entries(self, tmp_path):
        job = SimJob.single_core("Base", "gcc", TINY)
        key = job.key()
        cache = ResultCache(tmp_path)
        cache.put(key, job.run())
        flat = tmp_path / f"{key}.json"
        flat.write_bytes(cache._path(key).read_bytes())
        removed = ResultCache(tmp_path).clear()
        assert removed == 1  # one distinct key, present in both layouts
        assert not flat.exists()
        assert ResultCache(tmp_path).get(key) is None

    def test_compressed_entries_round_trip(self, tmp_path):
        job = SimJob.single_core("Base", "gcc", TINY)
        key = job.key()
        result = job.run()
        cache = ResultCache(tmp_path, compress=True)
        cache.put(key, result)
        path = tmp_path / key[:2] / f"{key}.json.gz"
        assert path.is_file()
        stats = cache.stats()
        assert stats.disk_compressed == 1
        reloaded = ResultCache(tmp_path)
        assert reloaded.get(key) == result

    def test_auto_compression_kicks_in_above_threshold(self, tmp_path,
                                                       monkeypatch):
        from repro.experiments.engine import cache as cache_module
        monkeypatch.setattr(cache_module, "COMPRESS_MIN_BYTES", 16)
        job = SimJob.single_core("Base", "gcc", TINY)
        key = job.key()
        result = job.run()
        cache = ResultCache(tmp_path)  # compress="auto"
        cache.put(key, result)
        assert (tmp_path / key[:2] / f"{key}.json.gz").is_file()
        assert ResultCache(tmp_path).get(key) == result

    def test_put_many_stores_every_pair(self, tmp_path):
        a = SimJob.single_core("Base", "gcc", TINY)
        b = SimJob.single_core("FIGCache-Fast", "gcc", TINY)
        results = {job: job.run() for job in (a, b)}
        cache = ResultCache(tmp_path)
        cache.put_many((job.key(), result)
                       for job, result in results.items())
        stats = cache.stats()
        assert stats.stores == 2
        assert stats.disk_entries == 2
        for job, result in results.items():
            assert ResultCache(tmp_path).get(job.key()) == result

    def test_stats_serve_from_index_not_filesystem(self, tmp_path):
        job = SimJob.single_core("Base", "gcc", TINY)
        cache = ResultCache(tmp_path)
        cache.put(job.key(), job.run())
        reader = ResultCache(tmp_path)
        assert reader.stats().disk_entries == 1
        # An out-of-band write is invisible until the index is refreshed —
        # stats() and get() misses are pure memory operations.
        (tmp_path / "ab").mkdir(exist_ok=True)
        (tmp_path / "ab" / ("ab" + "0" * 62 + ".json")).write_text("{}")
        assert reader.stats().disk_entries == 1
        reader.refresh_index()
        assert reader.stats().disk_entries == 2

    def test_rejects_bad_compress_value(self, tmp_path):
        with pytest.raises(ValueError):
            ResultCache(tmp_path, compress="sometimes")


class TestJobExecutor:
    def test_deduplicates_equal_jobs(self):
        executor = JobExecutor()
        job = SimJob.single_core("Base", "gcc", TINY)
        results = executor.run([job, SimJob.single_core("Base", "gcc", TINY)])
        assert len(results) == 1
        assert executor.simulations_executed == 1

    def test_cache_hits_skip_execution(self):
        executor = JobExecutor()
        job = SimJob.single_core("Base", "gcc", TINY)
        first = executor.run_one(job)
        second = executor.run_one(job)
        assert first == second
        assert executor.simulations_executed == 1
        assert executor.cache_hits == 1

    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError):
            JobExecutor(jobs=0)

    def test_parallel_matches_serial_bit_for_bit(self):
        engine.configure(jobs=1)
        serial = figure9_cache_hit_rate(TINY)
        engine.configure(jobs=2)
        parallel = figure9_cache_hit_rate(TINY)
        assert parallel["rows"] == serial["rows"]

    def test_warm_persistent_cache_runs_zero_simulations(self, tmp_path):
        cold = engine.configure(jobs=2, cache_dir=str(tmp_path))
        first = figure9_cache_hit_rate(TINY)
        assert cold.simulations_executed > 0

        warm = engine.configure(jobs=2, cache_dir=str(tmp_path))
        second = figure9_cache_hit_rate(TINY)
        assert warm.simulations_executed == 0
        assert warm.cache_hits == cold.simulations_executed
        assert second["rows"] == first["rows"]

    def test_jobs_env_variable_sets_worker_count(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert JobExecutor().jobs == 3


def _tiny_jobs(*benchmarks):
    return [SimJob.single_core("Base", name, TINY) for name in benchmarks]


class TestWarmPool:
    def test_pool_persists_across_batches(self):
        with JobExecutor(jobs=2) as executor:
            assert not executor.pool_active
            executor.run(_tiny_jobs("gcc", "mcf"))
            assert executor.pool_active
            first = executor.last_worker_pids
            executor.run(_tiny_jobs("lbm", "zeusmp"))
            second = executor.last_worker_pids
        assert first and second
        # Both batches were served by the same two-process pool; a pool
        # recreated per batch would have produced four distinct PIDs.
        assert len(first | second) <= 2
        assert os.getpid() not in (first | second)

    def test_close_is_idempotent_and_pool_respawns(self):
        executor = JobExecutor(jobs=2)
        executor.run(_tiny_jobs("gcc", "mcf"))
        executor.close()
        assert not executor.pool_active
        executor.close()  # idempotent
        executor.run(_tiny_jobs("lbm", "zeusmp"))
        assert executor.pool_active
        assert executor.simulations_executed == 4
        executor.close()

    def test_serial_batches_never_spawn_a_pool(self):
        executor = JobExecutor(jobs=1)
        executor.run(_tiny_jobs("gcc", "mcf"))
        assert not executor.pool_active
        assert executor.last_worker_pids == frozenset((os.getpid(),))


class TestChunking:
    def test_even_contiguous_split(self):
        assert _chunked([1, 2, 3, 4, 5], 2) == [[1, 2, 3], [4, 5]]
        assert _chunked([1, 2, 3], 8) == [[1], [2], [3]]
        assert _chunked([1, 2, 3, 4], 1) == [[1, 2, 3, 4]]

    def test_split_preserves_order_and_items(self):
        items = list(range(23))
        chunks = _chunked(items, 7)
        assert len(chunks) == 7
        assert [x for chunk in chunks for x in chunk] == items


class TestWorkerFailures:
    def test_serial_failure_names_the_job(self):
        executor = JobExecutor(jobs=1)
        with pytest.raises(JobExecutionError) as excinfo:
            executor.run([PoisonJob()])
        assert "'kind': 'poison'" in str(excinfo.value)
        assert excinfo.value.job == PoisonJob()

    def test_parallel_failure_names_the_job_and_keeps_finished_work(
            self, tmp_path):
        jobs = _tiny_jobs("gcc", "mcf", "lbm")
        with JobExecutor(cache=ResultCache(tmp_path), jobs=2) as executor:
            with pytest.raises(JobExecutionError) as excinfo:
                executor.run([*jobs, PoisonJob()])
        message = str(excinfo.value)
        assert "'kind': 'poison'" in message
        assert "this job is poisoned" in message  # worker traceback shipped
        # The poison job sorts into the last chunk, so every real job's
        # chunk was dispatched first and its results reached the cache
        # before the failure was raised.
        survivors = ResultCache(tmp_path)
        assert all(survivors.get(job.key()) is not None for job in jobs)

    def test_dead_worker_breaks_pool_but_sweep_is_resumable(self, tmp_path):
        jobs = _tiny_jobs("gcc", "mcf", "lbm", "zeusmp", "libquantum",
                          "bwaves")
        executor = JobExecutor(cache=ResultCache(tmp_path), jobs=2)
        with pytest.raises(BrokenProcessPool):
            executor.run([*jobs, PoisonJob(exit_code=1)])
        assert not executor.pool_active  # broken pool was discarded

        # Completion-order caching: everything drained before the worker
        # died is on disk.  Only the chunk in flight on the surviving
        # worker can be lost.
        cached = sum(ResultCache(tmp_path).get(job.key()) is not None
                     for job in jobs)
        assert cached >= len(jobs) - 2

        # Re-running the sweep simulates only what never finished ...
        resume = JobExecutor(cache=ResultCache(tmp_path), jobs=2)
        results = resume.run(jobs)
        assert len(results) == len(jobs)
        assert resume.simulations_executed == len(jobs) - cached
        resume.close()

        # ... and the original executor recovers: the next parallel batch
        # (two jobs no run has cached yet) lazily spawns a fresh pool.
        again = executor.run(_tiny_jobs("leslie3d", "GemsFDTD"))
        assert len(again) == 2
        assert executor.pool_active
        executor.close()


class TestProgressEvents:
    """The executor's structured progress stream (PR 8)."""

    @staticmethod
    def _events(path):
        lines = path.read_text(encoding="utf-8").splitlines()
        events = [json.loads(line) for line in lines]
        assert all(event["schema"] == 1 for event in events)
        return events

    def test_jsonl_stream_for_a_parallel_batch(self, tmp_path):
        from repro.experiments.engine import JsonlFileSink
        jobs = _tiny_jobs("gcc", "mcf", "lbm")
        log = tmp_path / "progress.jsonl"
        with JobExecutor(cache=ResultCache(tmp_path / "cache"),
                         jobs=2) as executor:
            executor.progress = sink = JsonlFileSink(log)
            executor.run(jobs)
            sink.close()
        events = self._events(log)
        kinds = [event["kind"] for event in events]
        assert kinds[0] == "batch-start"
        assert kinds[-1] == "batch-end"
        assert "pool-spawned" in kinds
        assert kinds.count("chunk-dispatched") == \
            kinds.count("chunk-completed")
        start, end = events[0], events[-1]
        assert start["total"] == 3 and start["cache_hits"] == 0
        # ``pending`` is the batch's simulate count; a clean batch ends
        # with every pending job done.
        assert end["done"] == 3 and end["pending"] == 3
        assert all(event["workers"] == 2 for event in events)

    def test_warm_batch_reports_all_cache_hits(self, tmp_path):
        from repro.experiments.engine import JsonlFileSink
        jobs = _tiny_jobs("gcc", "mcf")
        with JobExecutor(cache=ResultCache(tmp_path / "cache"),
                         jobs=1) as executor:
            executor.run(jobs)
            log = tmp_path / "warm.jsonl"
            executor.progress = sink = JsonlFileSink(log)
            executor.run(jobs)
            sink.close()
        events = self._events(log)
        start = events[0]
        assert start["kind"] == "batch-start"
        assert start["cache_hits"] == start["total"] == 2
        assert start["pending"] == 0
        # Nothing to simulate: the stream is just start -> end.
        assert [event["kind"] for event in events] == \
            ["batch-start", "batch-end"]

    def test_failure_emits_job_failed_and_still_raises(self, tmp_path):
        from repro.experiments.engine import JsonlFileSink
        log = tmp_path / "fail.jsonl"
        executor = JobExecutor(jobs=1)
        executor.progress = sink = JsonlFileSink(log)
        with pytest.raises(JobExecutionError):
            executor.run([PoisonJob()])
        sink.close()
        events = self._events(log)
        kinds = [event["kind"] for event in events]
        assert "job-failed" in kinds
        assert kinds[-1] == "batch-end"  # emitted even on failure
        failed = next(e for e in events if e["kind"] == "job-failed")
        assert "poisoned" in failed["error"]
        assert "'kind': 'poison'" in failed["job"]

    def test_callback_sink_sees_serial_job_completions(self):
        from repro.experiments.engine import CallbackSink
        seen = []
        executor = JobExecutor(jobs=1)
        executor.progress = CallbackSink(seen.append)
        executor.run(_tiny_jobs("gcc", "mcf"))
        kinds = [event.kind for event in seen]
        assert kinds[0] == "batch-start" and kinds[-1] == "batch-end"
        assert kinds.count("job-completed") == 2
        done = [e.done for e in seen if e.kind == "job-completed"]
        assert done == [1, 2]

    def test_stderr_sink_writes_human_lines(self):
        import io
        from repro.experiments.engine import StderrLineSink
        stream = io.StringIO()
        executor = JobExecutor(jobs=1)
        executor.progress = sink = StderrLineSink(stream)
        executor.run(_tiny_jobs("gcc"))
        sink.close()
        text = stream.getvalue()
        assert "[engine]" in text
        assert "1/1 jobs" in text

    def test_sweep_cli_progress_file(self, tmp_path, capsys):
        log = tmp_path / "progress.jsonl"
        argv = ["sweep", "--segment-blocks", "8", "--cache-rows", "32",
                "--scale", "tiny", "--jobs", "2",
                "--cache-dir", str(tmp_path / "cache"),
                "--progress-file", str(log)]
        assert main(argv) == 0
        capsys.readouterr()
        events = self._events(log)
        kinds = [event["kind"] for event in events]
        assert kinds[0] == "batch-start" and kinds[-1] == "batch-end"


class TestGeometricMean:
    def test_no_underflow_or_overflow_on_long_extreme_lists(self):
        # 1e4 values near zero: a running product underflows to 0.0 long
        # before the end; the log-space form is exact.
        small = [1e-6] * 10000
        assert geometric_mean(small) == pytest.approx(1e-6, rel=1e-9)
        # 1e4 values near 1e6: a running product overflows to inf.
        large = [1e6] * 10000
        assert geometric_mean(large) == pytest.approx(1e6, rel=1e-9)
        mixed = [1e-6, 1e6] * 5000
        assert geometric_mean(mixed) == pytest.approx(1.0, rel=1e-9)
        assert math.isfinite(geometric_mean(large))

    def test_matches_direct_definition_on_small_lists(self):
        values = [0.5, 2.0, 4.0]
        direct = (0.5 * 2.0 * 4.0) ** (1.0 / 3.0)
        assert geometric_mean(values) == pytest.approx(direct)

    def test_validates_input(self):
        assert geometric_mean([]) == 0.0
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])


class TestCLI:
    def test_run_figure_warm_cache_second_invocation(self, tmp_path, capsys):
        argv = ["run-figure", "7", "--scale", "tiny", "--jobs", "2",
                "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "Figure 7" in cold
        assert "0 simulations executed" not in cold

        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "0 simulations executed" in warm
        # Identical tables, straight from the persistent cache.
        assert warm.splitlines()[:-2] == cold.splitlines()[:-2]

    def test_cache_stats_and_clear(self, tmp_path, capsys):
        argv_dir = ["--cache-dir", str(tmp_path)]
        main(["run-figure", "7", "--scale", "tiny"] + argv_dir)
        capsys.readouterr()
        main(["cache", "stats"] + argv_dir)
        out = capsys.readouterr().out
        assert str(tmp_path) in out and "disk entries    : 12" in out
        main(["cache", "clear"] + argv_dir)
        assert "cleared 12" in capsys.readouterr().out
        main(["cache", "stats"] + argv_dir)
        assert "disk entries    : 0" in capsys.readouterr().out

    def test_run_static_overhead(self, capsys):
        assert main(["run-static", "overhead", "--cache-dir", "none"]) == 0
        assert "Section 8.3" in capsys.readouterr().out

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "run-figure" in out and "rowhammer" in out

    def test_sweep_tiny(self, tmp_path, capsys):
        argv = ["sweep", "--segment-blocks", "8,16", "--cache-rows", "32",
                "--scale", "tiny", "--jobs", "2",
                "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "Design-space sweep" in out
        assert "512B" in out and "1kB" in out
