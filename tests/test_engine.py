"""Tests for the declarative experiment engine: job specs, content-addressed
keys, result serialization, the persistent cache, the parallel executor, and
the ``python -m repro`` CLI."""

import json
import math
import pickle

import pytest

from repro.cli import main
from repro.experiments import engine
from repro.experiments.engine import (JobExecutor, ResultCache, SimJob,
                                      cache_salt)
from repro.experiments.engine.spec import ExperimentScale
from repro.experiments.figures import figure9_cache_hit_rate
from repro.experiments.runner import geometric_mean
from repro.sim.metrics import SimulationResult
from repro.workloads.multiprogram import make_multiprogrammed_workload

TINY = ExperimentScale.tiny()


@pytest.fixture(autouse=True)
def fresh_default_engine():
    """Keep the process-wide default engine isolated per test."""
    engine.reset()
    yield
    engine.reset()


class TestSimJob:
    def test_key_is_stable_across_equal_jobs(self):
        a = SimJob.single_core("FIGCache-Fast", "lbm", TINY)
        b = SimJob.single_core("FIGCache-Fast", "lbm",
                               ExperimentScale.tiny())
        assert a == b
        assert a.key() == b.key()

    def test_key_distinguishes_inputs(self):
        base = SimJob.single_core("FIGCache-Fast", "lbm", TINY)
        keys = {
            base.key(),
            SimJob.single_core("Base", "lbm", TINY).key(),
            SimJob.single_core("FIGCache-Fast", "mcf", TINY).key(),
            SimJob.single_core("FIGCache-Fast", "lbm", TINY,
                               segment_blocks=32).key(),
            SimJob.single_core(
                "FIGCache-Fast", "lbm",
                ExperimentScale.tiny().__class__(
                    single_core_records=500)).key(),
        }
        assert len(keys) == 5

    def test_key_ignores_scale_fields_that_do_not_affect_the_job(self):
        # mixes_per_category only selects which jobs a figure creates; a
        # single-core job's simulation is unaffected, so the cache entry
        # must be shared.
        import dataclasses
        a = SimJob.single_core("Base", "lbm", TINY)
        other_scale = dataclasses.replace(TINY, mixes_per_category=5,
                                          benchmarks_per_class=3)
        b = SimJob.single_core("Base", "lbm", other_scale)
        assert a.key() == b.key()

    def test_multicore_job_builds_and_keys(self):
        workload = make_multiprogrammed_workload(1.0, 0, num_cores=2)
        job = SimJob.multicore("FIGCache-Fast", workload, TINY)
        assert job.workload_name == workload.name
        assert job.channels == TINY.multicore_channels
        assert len(job.build_traces()) == 2
        assert job.key() != SimJob.multicore("Base", workload, TINY).key()

    def test_jobs_are_picklable(self):
        workload = make_multiprogrammed_workload(0.5, 1, num_cores=2)
        for job in (SimJob.single_core("LISA-VILLA", "mcf", TINY),
                    SimJob.multicore("FIGCache-Slow", workload, TINY)):
            clone = pickle.loads(pickle.dumps(job))
            assert clone == job
            assert clone.key() == job.key()

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            SimJob(kind="weird", configuration="Base", scale=TINY)
        with pytest.raises(ValueError):
            SimJob(kind="single-core", configuration="Base", scale=TINY)


class TestResultSerialization:
    def test_round_trip_is_exact(self):
        result = SimJob.single_core("FIGCache-Fast", "lbm", TINY).run()
        data = json.loads(json.dumps(result.to_dict()))
        clone = SimulationResult.from_dict(data)
        assert clone == result
        assert clone.to_dict() == result.to_dict()
        # The energy breakdown survives to the bit.
        assert clone.energy == result.energy
        assert clone.energy.total_nj == result.energy.total_nj
        assert clone.row_buffer_hit_rate == result.row_buffer_hit_rate

    def test_round_trip_preserves_row_activation_counts(self):
        result = SimJob.single_core("Base", "lbm", TINY,
                                    track_row_activations=True).run()
        counts = result.dram_counters.row_activation_counts
        assert counts  # tuple-keyed dict, the hard case for JSON
        clone = SimulationResult.from_dict(
            json.loads(json.dumps(result.to_dict())))
        assert clone.dram_counters.row_activation_counts == counts
        assert clone.dram_counters == result.dram_counters


class TestResultCache:
    def test_memory_only_cache(self):
        cache = ResultCache()
        assert not cache.persistent
        assert cache.get("missing") is None
        result = SimJob.single_core("Base", "gcc", TINY).run()
        cache.put("k", result)
        assert cache.get("k") == result
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.stores) == (1, 1, 1)

    def test_persistent_cache_survives_new_instance(self, tmp_path):
        job = SimJob.single_core("FIGCache-Slow", "mcf", TINY)
        result = job.run()
        ResultCache(tmp_path).put(job.key(), result)
        reloaded = ResultCache(tmp_path).get(job.key())
        assert reloaded == result

    def test_stale_salt_is_a_miss(self, tmp_path):
        job = SimJob.single_core("Base", "gcc", TINY)
        cache = ResultCache(tmp_path)
        cache.put(job.key(), job.run())
        path = tmp_path / f"{job.key()}.json"
        payload = json.loads(path.read_text())
        assert payload["salt"] == cache_salt()
        payload["salt"] = "0:0.0.0"
        path.write_text(json.dumps(payload))
        assert ResultCache(tmp_path).get(job.key()) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        job = SimJob.single_core("Base", "gcc", TINY)
        cache = ResultCache(tmp_path)
        cache.put(job.key(), job.run())
        (tmp_path / f"{job.key()}.json").write_text("{not json")
        assert ResultCache(tmp_path).get(job.key()) is None

    def test_clear_removes_disk_entries(self, tmp_path):
        job = SimJob.single_core("Base", "gcc", TINY)
        cache = ResultCache(tmp_path)
        cache.put(job.key(), job.run())
        assert cache.stats().disk_entries == 1
        cache.clear()
        assert cache.stats().disk_entries == 0
        assert not list(tmp_path.glob("*.json"))


class TestJobExecutor:
    def test_deduplicates_equal_jobs(self):
        executor = JobExecutor()
        job = SimJob.single_core("Base", "gcc", TINY)
        results = executor.run([job, SimJob.single_core("Base", "gcc", TINY)])
        assert len(results) == 1
        assert executor.simulations_executed == 1

    def test_cache_hits_skip_execution(self):
        executor = JobExecutor()
        job = SimJob.single_core("Base", "gcc", TINY)
        first = executor.run_one(job)
        second = executor.run_one(job)
        assert first == second
        assert executor.simulations_executed == 1
        assert executor.cache_hits == 1

    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError):
            JobExecutor(jobs=0)

    def test_parallel_matches_serial_bit_for_bit(self):
        engine.configure(jobs=1)
        serial = figure9_cache_hit_rate(TINY)
        engine.configure(jobs=2)
        parallel = figure9_cache_hit_rate(TINY)
        assert parallel["rows"] == serial["rows"]

    def test_warm_persistent_cache_runs_zero_simulations(self, tmp_path):
        cold = engine.configure(jobs=2, cache_dir=str(tmp_path))
        first = figure9_cache_hit_rate(TINY)
        assert cold.simulations_executed > 0

        warm = engine.configure(jobs=2, cache_dir=str(tmp_path))
        second = figure9_cache_hit_rate(TINY)
        assert warm.simulations_executed == 0
        assert warm.cache_hits == cold.simulations_executed
        assert second["rows"] == first["rows"]

    def test_jobs_env_variable_sets_worker_count(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert JobExecutor().jobs == 3


class TestGeometricMean:
    def test_no_underflow_or_overflow_on_long_extreme_lists(self):
        # 1e4 values near zero: a running product underflows to 0.0 long
        # before the end; the log-space form is exact.
        small = [1e-6] * 10000
        assert geometric_mean(small) == pytest.approx(1e-6, rel=1e-9)
        # 1e4 values near 1e6: a running product overflows to inf.
        large = [1e6] * 10000
        assert geometric_mean(large) == pytest.approx(1e6, rel=1e-9)
        mixed = [1e-6, 1e6] * 5000
        assert geometric_mean(mixed) == pytest.approx(1.0, rel=1e-9)
        assert math.isfinite(geometric_mean(large))

    def test_matches_direct_definition_on_small_lists(self):
        values = [0.5, 2.0, 4.0]
        direct = (0.5 * 2.0 * 4.0) ** (1.0 / 3.0)
        assert geometric_mean(values) == pytest.approx(direct)

    def test_validates_input(self):
        assert geometric_mean([]) == 0.0
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])


class TestCLI:
    def test_run_figure_warm_cache_second_invocation(self, tmp_path, capsys):
        argv = ["run-figure", "7", "--scale", "tiny", "--jobs", "2",
                "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "Figure 7" in cold
        assert "0 simulations executed" not in cold

        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "0 simulations executed" in warm
        # Identical tables, straight from the persistent cache.
        assert warm.splitlines()[:-2] == cold.splitlines()[:-2]

    def test_cache_stats_and_clear(self, tmp_path, capsys):
        argv_dir = ["--cache-dir", str(tmp_path)]
        main(["run-figure", "7", "--scale", "tiny"] + argv_dir)
        capsys.readouterr()
        main(["cache", "stats"] + argv_dir)
        out = capsys.readouterr().out
        assert str(tmp_path) in out and "disk entries    : 12" in out
        main(["cache", "clear"] + argv_dir)
        assert "cleared 12" in capsys.readouterr().out
        main(["cache", "stats"] + argv_dir)
        assert "disk entries    : 0" in capsys.readouterr().out

    def test_run_static_overhead(self, capsys):
        assert main(["run-static", "overhead", "--cache-dir", "none"]) == 0
        assert "Section 8.3" in capsys.readouterr().out

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "run-figure" in out and "rowhammer" in out

    def test_sweep_tiny(self, tmp_path, capsys):
        argv = ["sweep", "--segment-blocks", "8,16", "--cache-rows", "32",
                "--scale", "tiny", "--jobs", "2",
                "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "Design-space sweep" in out
        assert "512B" in out and "1kB" in out
