"""Tests for the pluggable simulation-backend layer (PR 6).

Covers the three guarantees the backend layer makes:

* **Bit-identical physics** — for every mechanism, DRAM standard, and
  telemetry setting exercised here, the ``"turbo"`` backend must produce
  exactly the same :meth:`SimulationResult.to_dict` payload as the
  reference ``"python"`` loop (single-core fused path *and* the generic
  multi-core/multi-channel path).
* **Selection precedence** — explicit ``SystemConfig.backend`` beats the
  ``REPRO_SIM_BACKEND`` environment variable, which beats the
  ``"python"`` default; unknown names fail loudly with the list of
  registered choices.
* **Cache-key neutrality** — ``config_digest`` deliberately ignores the
  backend field, so results computed by one backend are valid experiment
  cache hits for another.

Also pins the :meth:`ChannelController.wakeup_view` accessor contract the
hoisted event loops rely on: a controller that rebinds its wake-up
structures mid-run must crash the run loudly instead of silently losing
wake-ups.
"""

import pytest

from repro.controller.channel_controller import ChannelController
from repro.experiments.engine import ExperimentScale
from repro.sim.backend import (BACKEND_ENV_VAR, DEFAULT_BACKEND,
                               backend_names, resolve_backend)
from repro.sim.config import config_digest, make_system_config
from repro.sim.system import System, run_workload
from repro.workloads.catalog import get_benchmark
from repro.workloads.multiprogram import make_workload_suite

#: Records per single-core parity trace — small enough to keep the matrix
#: fast, large enough to fill the MSHRs, trigger writebacks, evictions,
#: refresh, and controller wake-ups under every mechanism.
PARITY_RECORDS = 600

ALL_CONFIGURATIONS = ("Base", "FIGCache-Slow", "FIGCache-Fast",
                      "FIGCache-Ideal", "LISA-VILLA", "LL-DRAM")

ALL_STANDARDS = ("DDR4-1600", "DDR4-2400", "DDR4-3200",
                 "LPDDR4-3200", "HBM2", "DDR5-4800")


def _single_result(configuration: str, workload: str, backend: str,
                   **kwargs) -> dict:
    """Run one single-core workload under ``backend`` and dump the result."""
    config = make_system_config(configuration, channels=1,
                                backend=backend, **kwargs)
    traces = [get_benchmark(workload).make_trace(PARITY_RECORDS)]
    return run_workload(config, traces, workload).to_dict()


class TestCrossBackendParity:
    """``turbo`` must be bit-identical to the reference loop."""

    @pytest.mark.parametrize("configuration", ALL_CONFIGURATIONS)
    @pytest.mark.parametrize("workload", ("mcf", "gcc"))
    def test_single_core_parity(self, configuration, workload):
        reference = _single_result(configuration, workload, "python")
        turbo = _single_result(configuration, workload, "turbo")
        assert turbo == reference

    @pytest.mark.parametrize("standard", ALL_STANDARDS)
    def test_standard_parity(self, standard):
        reference = _single_result("FIGCache-Fast", "mcf", "python",
                                   standard=standard)
        turbo = _single_result("FIGCache-Fast", "mcf", "turbo",
                               standard=standard)
        assert turbo == reference

    @pytest.mark.parametrize("configuration", ("Base", "FIGCache-Fast"))
    def test_telemetry_parity(self, configuration):
        reference = _single_result(configuration, "lbm", "python",
                                   telemetry=True)
        turbo = _single_result(configuration, "lbm", "turbo",
                               telemetry=True)
        assert turbo == reference

    @pytest.mark.parametrize("configuration", ("Base", "FIGCache-Fast"))
    def test_multicore_parity(self, configuration):
        """Multi-core mixes exercise the generic (non-fused) turbo loop."""
        scale = ExperimentScale.smoke()
        suite = {w.name: w for w in make_workload_suite(
            num_cores=scale.num_cores,
            mixes_per_category=scale.mixes_per_category)}
        mix = suite["mix-50pct-0"]
        results = {}
        for backend in ("python", "turbo"):
            config = make_system_config(configuration,
                                        channels=scale.multicore_channels,
                                        backend=backend)
            traces = mix.make_traces(scale.multicore_records)
            results[backend] = run_workload(config, traces,
                                            mix.name).to_dict()
        assert results["turbo"] == results["python"]


class TestTracingParity:
    """Tracing must not perturb results, and both backends must emit the
    same event stream (PR 8).

    With a tracer installed the turbo backend leaves its fully-fused
    single-channel loop for the generic one; these tests pin that the
    detour is invisible in the results *and* that the recorded DRAM
    command sequence is identical to the reference loop's.
    """

    @staticmethod
    def _traced(configuration: str, workload: str, backend: str):
        from repro.sim.tracing import EventTracer
        config = make_system_config(configuration, channels=1,
                                    backend=backend)
        traces = [get_benchmark(workload).make_trace(PARITY_RECORDS)]
        tracer = EventTracer()
        result = run_workload(config, traces, workload, tracer=tracer)
        return result.to_dict(), tracer

    @staticmethod
    def _normalized(events):
        """Event list with request ids remapped by first appearance.

        Request ids come from a process-global counter, so two runs in
        the same process never share absolute ids; everything else about
        the streams must match exactly.
        """
        from repro.sim.tracing import REQ
        ids: dict = {}
        normalized = []
        for record in events:
            if record[0] == REQ:
                dense = ids.setdefault(record[5], len(ids))
                record = record[:5] + (dense,) + record[6:]
            normalized.append(record)
        return normalized

    @pytest.mark.parametrize("configuration",
                             ("Base", "FIGCache-Fast", "LISA-VILLA"))
    def test_backends_emit_identical_event_streams(self, configuration):
        reference, ref_tracer = self._traced(configuration, "mcf", "python")
        turbo, turbo_tracer = self._traced(configuration, "mcf", "turbo")
        assert turbo == reference
        assert self._normalized(turbo_tracer.events) == \
            self._normalized(ref_tracer.events)
        assert turbo_tracer.total_events == ref_tracer.total_events

    @pytest.mark.parametrize("backend", ("python", "turbo"))
    def test_tracing_on_matches_tracing_off(self, backend):
        baseline = _single_result("FIGCache-Fast", "mcf", backend)
        traced, _ = self._traced("FIGCache-Fast", "mcf", backend)
        assert traced == baseline

    def test_multicore_backends_emit_identical_event_streams(self):
        """A tracer makes the fused multi-core loop (PR 9) detour too.

        The detour lands in the reference-compatible generic loop, so a
        traced multi-core turbo run must match the python backend in both
        results and the recorded command stream — same guarantee the
        single-core cases above pin, on the N-channel × M-core path.
        """
        from repro.sim.tracing import EventTracer
        scale = ExperimentScale.smoke()
        suite = {w.name: w for w in make_workload_suite(
            num_cores=scale.num_cores,
            mixes_per_category=scale.mixes_per_category)}
        mix = suite["mix-50pct-0"]
        runs = {}
        for backend in ("python", "turbo"):
            config = make_system_config("FIGCache-Fast",
                                        channels=scale.multicore_channels,
                                        backend=backend)
            traces = mix.make_traces(scale.multicore_records)
            tracer = EventTracer()
            result = run_workload(config, traces, mix.name, tracer=tracer)
            runs[backend] = (result.to_dict(), tracer)
        turbo_result, turbo_tracer = runs["turbo"]
        reference, ref_tracer = runs["python"]
        assert turbo_result == reference
        assert self._normalized(turbo_tracer.events) == \
            self._normalized(ref_tracer.events)
        assert turbo_tracer.total_events == ref_tracer.total_events


class TestBackendSelection:
    """Name → env var → default precedence, with loud failures."""

    def test_registry_lists_builtins(self):
        names = backend_names()
        assert "python" in names and "turbo" in names
        assert DEFAULT_BACKEND == "python"

    def test_default_resolution(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert resolve_backend(None).name == "python"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "turbo")
        assert resolve_backend(None).name == "turbo"

    def test_empty_env_falls_through_to_default(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "")
        assert resolve_backend(None).name == DEFAULT_BACKEND

    def test_explicit_name_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "no-such-backend")
        assert resolve_backend("turbo").name == "turbo"

    def test_unknown_name_raises_with_choices(self):
        with pytest.raises(ValueError) as excinfo:
            resolve_backend("warp-drive")
        message = str(excinfo.value)
        assert "warp-drive" in message
        for name in backend_names():
            assert name in message

    def test_unknown_env_value_raises(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "warp-drive")
        with pytest.raises(ValueError):
            resolve_backend(None)

    def test_config_backend_reaches_system_run(self, monkeypatch):
        """An explicit config backend wins even over a bogus env value."""
        monkeypatch.setenv(BACKEND_ENV_VAR, "no-such-backend")
        result = _single_result("Base", "mcf", "turbo")
        assert result["total_cycles"] > 0


class TestDigestNeutrality:
    """The backend never changes results, so it never changes the digest."""

    def test_digest_ignores_backend(self):
        digests = {config_digest(make_system_config("FIGCache-Fast",
                                                    backend=backend))
                   for backend in (None, "python", "turbo")}
        assert len(digests) == 1

    def test_digest_still_sees_real_knobs(self):
        base = config_digest(make_system_config("FIGCache-Fast"))
        other = config_digest(make_system_config("FIGCache-Fast",
                                                 standard="DDR5-4800"))
        assert base != other


class _RebindingCC(ChannelController):
    """Evil controller that rebinds its wake-up structures mid-run.

    Violates the :meth:`ChannelController.wakeup_view` accessor contract
    on purpose: the first ``enqueue()`` call replaces ``_wakeup_heap``
    and ``_wakeup_cycle`` with copies, so the run loop's hoisted snapshot
    goes stale.  (``enqueue`` is the hook because both event loops call
    it on every request arrival; ``wake`` is inlined by the hot loops.)
    Empty ``__slots__`` keeps the layout compatible with the parent so
    instances can be re-classed in place.
    """

    __slots__ = ()

    def enqueue(self, request, now):
        self._wakeup_heap = list(self._wakeup_heap)
        self._wakeup_cycle = dict(self._wakeup_cycle)
        return super().enqueue(request, now)


class TestWakeupViewContract:
    """The hoisted wakeup_views snapshot must stay live for a whole run."""

    @staticmethod
    def _build_system(backend: str, channels: int = 1) -> System:
        config = make_system_config("Base", channels=channels,
                                    backend=backend)
        traces = [get_benchmark("mcf").make_trace(PARITY_RECORDS)]
        return System(config, traces)

    def test_wakeup_view_is_stable_across_a_run(self):
        system = self._build_system("python")
        cc = system.controller.channel_controllers[0]
        heap_before, live_before = cc.wakeup_view()
        system.run("mcf")
        heap_after, live_after = cc.wakeup_view()
        assert heap_after is heap_before
        assert live_after is live_before

    # The turbo case uses two channels: its fully-fused single-channel
    # loop inlines every controller interaction (no enqueue/wake calls),
    # so only the generic multi-channel loop can observe the subclass.
    @pytest.mark.parametrize("backend,channels",
                             (("python", 1), ("turbo", 2)))
    def test_rebinding_controller_fails_loudly(self, backend, channels):
        """A contract violation must crash the run, not corrupt it."""
        system = self._build_system(backend, channels)
        for cc in system.controller.channel_controllers:
            cc.__class__ = _RebindingCC
        with pytest.raises((AssertionError, RuntimeError)):
            system.run("mcf")
