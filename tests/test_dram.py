"""Unit and property tests for the DRAM device substrate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram import (AddressMapper, Bank, Channel, Command,
                        CommandCounters, DRAMConfig, DRAMDevice, DRAMTimings,
                        Rank, TimingSet, derive_fast_timings)
from repro.dram.address import DecodedAddress
from repro.dram.subarray import build_subarrays


# ----------------------------------------------------------------------
# Timings.
# ----------------------------------------------------------------------
class TestTimings:
    def test_default_timings_are_ddr4_1600(self):
        timings = DRAMTimings()
        assert timings.trcd_ns == pytest.approx(13.75)
        assert timings.tras_ns == pytest.approx(35.0)
        assert timings.treloc_ns == pytest.approx(1.0)

    def test_fast_timings_use_paper_reductions(self):
        fast = derive_fast_timings(DRAMTimings())
        assert fast.trcd_ns == pytest.approx(13.75 * (1 - 0.455))
        assert fast.trp_ns == pytest.approx(13.75 * (1 - 0.382))
        assert fast.tras_ns == pytest.approx(35.0 * (1 - 0.629))

    def test_cycle_conversion_rounds_up(self):
        ts = TimingSet.from_timings(DRAMTimings(), clock_ghz=3.2)
        assert ts.trcd == 44  # 13.75 ns * 3.2 GHz = 44 cycles exactly
        assert ts.tras == 112
        assert ts.treloc == 4  # 1 ns * 3.2 -> 3.2 -> rounds up to 4

    def test_cycle_conversion_is_monotone_in_clock(self):
        slow_clock = TimingSet.from_timings(DRAMTimings(), clock_ghz=1.0)
        fast_clock = TimingSet.from_timings(DRAMTimings(), clock_ghz=4.0)
        assert fast_clock.trcd >= slow_clock.trcd

    def test_latency_helpers_ordering(self):
        ts = TimingSet.from_timings(DRAMTimings())
        assert ts.row_hit_latency < ts.row_miss_latency
        assert ts.row_miss_latency < ts.row_conflict_latency

    def test_ns_round_trip(self):
        ts = TimingSet.from_timings(DRAMTimings())
        assert ts.ns(ts.cycles(10.0)) == pytest.approx(10.0, abs=0.5)

    @given(st.floats(min_value=0.01, max_value=1000.0))
    @settings(max_examples=50, deadline=None)
    def test_cycles_never_undershoot(self, ns):
        ts = TimingSet.from_timings(DRAMTimings())
        assert ts.cycles(ns) >= ns * ts.clock_ghz - 1e-6


# ----------------------------------------------------------------------
# Configuration.
# ----------------------------------------------------------------------
class TestDRAMConfig:
    def test_table1_capacity_is_4gb_per_channel(self):
        config = DRAMConfig()
        assert config.channel_capacity_bytes == 4 * 1024 ** 3
        assert config.banks_per_channel == 16
        assert config.blocks_per_row == 128

    def test_fast_region_rows_follow_regular_rows(self):
        config = DRAMConfig(fast_subarrays_per_bank=2)
        first_fast = config.fast_region_row(0)
        assert first_fast == config.regular_rows_per_bank
        assert config.is_fast_row(first_fast)
        assert not config.is_fast_row(first_fast - 1)

    def test_subarray_of_row_regular_and_fast(self):
        config = DRAMConfig(fast_subarrays_per_bank=2)
        assert config.subarray_of_row(0) == 0
        assert config.subarray_of_row(config.rows_per_subarray) == 1
        fast_row = config.fast_region_row(33)
        assert config.subarray_of_row(fast_row) == config.subarrays_per_bank + 1

    def test_all_subarrays_fast_flag(self):
        config = DRAMConfig(all_subarrays_fast=True)
        assert config.is_fast_row(0)

    def test_row_out_of_range_raises(self):
        config = DRAMConfig(fast_subarrays_per_bank=1)
        with pytest.raises(ValueError):
            config.subarray_of_row(config.rows_per_bank + 5)
        with pytest.raises(ValueError):
            config.fast_region_row(config.fast_rows_per_bank)

    def test_construction_rejects_bad_block_size(self):
        # Validation now runs in __post_init__, so the inconsistent
        # organization never comes into existence.
        with pytest.raises(ValueError, match="multiple of the cache block"):
            DRAMConfig(row_size_bytes=8192, block_size_bytes=96)

    def test_construction_rejects_zero_fast_rows(self):
        with pytest.raises(ValueError, match="rows_per_fast_subarray"):
            DRAMConfig(fast_subarrays_per_bank=2, rows_per_fast_subarray=0)

    def test_construction_rejects_negative_timing(self):
        with pytest.raises(ValueError, match="trcd_ns"):
            DRAMConfig(timings=DRAMTimings(trcd_ns=-1.0))

    def test_construction_rejects_unknown_refresh_mode(self):
        with pytest.raises(ValueError, match="refresh mode"):
            DRAMConfig(refresh_mode="sometimes")

    def test_construction_rejects_per_bank_refresh_without_trfc_pb(self):
        with pytest.raises(ValueError, match="trfc_pb_ns"):
            DRAMConfig(refresh_mode="per-bank")


# ----------------------------------------------------------------------
# Address mapping.
# ----------------------------------------------------------------------
class TestAddressMapper:
    def test_decode_fields_in_range(self):
        config = DRAMConfig(channels=4)
        mapper = AddressMapper(config)
        decoded = mapper.decode(123456789 * 64)
        assert 0 <= decoded.channel < 4
        assert 0 <= decoded.bank < config.banks_per_bankgroup
        assert 0 <= decoded.bankgroup < config.bankgroups_per_rank
        assert 0 <= decoded.row < config.regular_rows_per_bank
        assert 0 <= decoded.column_block < config.blocks_per_row

    def test_consecutive_blocks_share_a_row(self):
        mapper = AddressMapper(DRAMConfig(channels=1))
        a = mapper.decode(0x10000)
        b = mapper.decode(0x10000 + 64)
        assert a.row == b.row
        assert a.bank == b.bank
        assert b.column_block == a.column_block + 1

    def test_flat_bank_is_unique_per_bank(self):
        config = DRAMConfig(channels=1)
        mapper = AddressMapper(config)
        seen = set()
        for bankgroup in range(config.bankgroups_per_rank):
            for bank in range(config.banks_per_bankgroup):
                decoded = DecodedAddress(channel=0, rank=0,
                                         bankgroup=bankgroup, bank=bank,
                                         row=0, column_block=0)
                seen.add(mapper.flat_bank(decoded))
        assert len(seen) == config.banks_per_channel

    def test_segment_of(self):
        mapper = AddressMapper(DRAMConfig())
        decoded = DecodedAddress(channel=0, rank=0, bankgroup=0, bank=0,
                                 row=10, column_block=35)
        assert mapper.segment_of(decoded, 16) == 2

    def test_negative_address_rejected(self):
        mapper = AddressMapper(DRAMConfig())
        with pytest.raises(ValueError):
            mapper.decode(-1)

    @given(st.integers(min_value=0, max_value=2 ** 33))
    @settings(max_examples=200, deadline=None)
    def test_encode_decode_round_trip(self, block_index):
        config = DRAMConfig(channels=2)
        mapper = AddressMapper(config)
        address = block_index * config.block_size_bytes
        decoded = mapper.decode(address)
        assert mapper.decode(mapper.encode(decoded)) == decoded


# ----------------------------------------------------------------------
# Subarrays.
# ----------------------------------------------------------------------
class TestSubarrays:
    def test_build_subarrays_layout(self):
        subarrays = build_subarrays(num_slow=4, rows_per_slow=8,
                                    num_fast=2, rows_per_fast=2)
        assert len(subarrays) == 6
        assert subarrays[0].first_row == 0
        assert subarrays[3].last_row == 31
        assert subarrays[4].is_fast and subarrays[4].first_row == 32
        assert subarrays[5].last_row == 35

    def test_row_offset_and_contains(self):
        subarrays = build_subarrays(2, 8, 0, 0)
        assert subarrays[1].contains_row(9)
        assert subarrays[1].row_offset(9) == 1
        with pytest.raises(ValueError):
            subarrays[0].row_offset(9)


# ----------------------------------------------------------------------
# Bank timing behaviour.
# ----------------------------------------------------------------------
def make_bank(fast_subarrays=2, all_fast=False):
    config = DRAMConfig(fast_subarrays_per_bank=fast_subarrays,
                        all_subarrays_fast=all_fast)
    counters = CommandCounters()
    rank = Rank(config.slow_timing_set(), refresh_enabled=False)
    bank = Bank(config, rank, (0, 0, 0, 0), counters)
    return bank, counters, config


class TestBank:
    def test_first_access_is_a_row_miss(self):
        bank, counters, _ = make_bank()
        result = bank.access(0, row=100, is_write=False, bus_free_at=0)
        assert result.outcome == "miss"
        assert counters.activates == 1
        assert result.completion_cycle > result.issue_cycle

    def test_second_access_to_same_row_is_a_hit_and_faster(self):
        bank, _, _ = make_bank()
        first = bank.access(0, 100, False, 0)
        second = bank.access(first.completion_cycle, 100, False,
                             first.completion_cycle)
        assert second.outcome == "hit"
        first_latency = first.completion_cycle - first.issue_cycle
        second_latency = second.completion_cycle - second.issue_cycle
        assert second_latency < first_latency

    def test_access_to_other_row_is_a_conflict(self):
        bank, counters, _ = make_bank()
        first = bank.access(0, 100, False, 0)
        conflict = bank.access(first.completion_cycle + 200, 200, False, 0)
        assert conflict.outcome == "conflict"
        assert counters.precharges == 1
        assert bank.open_row == 200

    def test_conflict_is_slower_than_miss(self):
        bank_a, _, _ = make_bank()
        miss = bank_a.access(0, 100, False, 0)
        bank_b, _, _ = make_bank()
        bank_b.access(0, 50, False, 0)
        conflict = bank_b.access(500, 100, False, 0)
        assert (conflict.completion_cycle - conflict.issue_cycle) > \
            (miss.completion_cycle - miss.issue_cycle)

    def test_fast_row_miss_is_faster_than_slow_row_miss(self):
        bank, _, config = make_bank()
        slow = bank.access(0, 100, False, 0)
        fast_bank, _, _ = make_bank()
        fast_row = config.fast_region_row(0)
        fast = fast_bank.access(0, fast_row, False, 0)
        assert fast.served_fast
        assert (fast.completion_cycle - fast.issue_cycle) < \
            (slow.completion_cycle - slow.issue_cycle)

    def test_write_blocks_precharge_longer_than_read(self):
        bank_r, _, _ = make_bank()
        bank_r.access(0, 1, False, 0)
        read_next = bank_r.earliest_start(10 ** 6, 2)
        bank_w, _, _ = make_bank()
        bank_w.access(0, 1, True, 0)
        write_next = bank_w.earliest_start(10 ** 6, 2)
        assert write_next >= read_next

    def test_relocate_counts_one_reloc_per_block(self):
        bank, counters, config = make_bank()
        bank.access(0, 100, False, 0)
        result = bank.relocate(200, 100, config.fast_region_row(0), 16)
        assert result.reloc_commands == 16
        assert counters.relocs == 16
        assert result.completion_cycle > result.start_cycle

    def test_relocate_skips_activate_when_source_open(self):
        bank_open, _, config = make_bank()
        bank_open.access(0, 100, False, 0)
        open_result = bank_open.relocate(500, 100, config.fast_region_row(0),
                                         16)
        bank_closed, _, _ = make_bank()
        closed_result = bank_closed.relocate(500, 100,
                                             config.fast_region_row(0), 16)
        assert open_result.activates == 1
        assert closed_result.activates == 2
        assert (open_result.completion_cycle - open_result.start_cycle) < \
            (closed_result.completion_cycle - closed_result.start_cycle)

    def test_relocate_keep_source_open_preserves_row(self):
        bank, _, config = make_bank()
        bank.access(0, 100, False, 0)
        bank.relocate(500, 100, config.fast_region_row(0), 16,
                      keep_source_open=True)
        assert bank.open_row == 100

    def test_relocate_without_keep_source_open_precharges(self):
        bank, _, config = make_bank()
        bank.access(0, 100, False, 0)
        bank.relocate(500, 100, config.fast_region_row(0), 16)
        assert bank.open_row is None

    def test_relocate_same_row_rejected(self):
        bank, _, _ = make_bank()
        with pytest.raises(ValueError):
            bank.relocate(0, 5, 5, 1)
        with pytest.raises(ValueError):
            bank.relocate(0, 5, 6, 0)

    def test_bulk_relocate_scales_with_transfer_cycles(self):
        bank_a, _, config = make_bank()
        short = bank_a.bulk_row_relocate(0, 100, config.fast_region_row(0), 10)
        bank_b, _, _ = make_bank()
        long = bank_b.bulk_row_relocate(0, 100, config.fast_region_row(0), 500)
        assert (long.completion_cycle - long.start_cycle) - \
            (short.completion_cycle - short.start_cycle) == 490

    def test_relocation_occupies_bank(self):
        bank, _, config = make_bank()
        bank.access(0, 100, False, 0)
        result = bank.relocate(200, 100, config.fast_region_row(0), 16)
        follow_up = bank.access(result.start_cycle + 1, 100, False, 0)
        assert follow_up.issue_cycle >= result.completion_cycle


# ----------------------------------------------------------------------
# Rank constraints and refresh.
# ----------------------------------------------------------------------
class TestRank:
    def test_trrd_spacing(self):
        timing = TimingSet.from_timings(DRAMTimings())
        rank = Rank(timing)
        rank.note_activate(0)
        assert rank.constrain_activate(1) >= timing.trrd

    def test_tfaw_limits_fifth_activate(self):
        timing = TimingSet.from_timings(DRAMTimings())
        rank = Rank(timing)
        for cycle in (0, 1, 2, 3):
            rank.note_activate(rank.constrain_activate(cycle))
        assert rank.constrain_activate(4) >= timing.tfaw

    def test_refresh_due_and_perform(self):
        timing = TimingSet.from_timings(DRAMTimings())
        rank = Rank(timing)
        assert not rank.refresh_due(0)
        assert rank.refresh_due(timing.trefi + 1)
        done = rank.perform_refresh(timing.trefi + 1)
        assert done == timing.trefi + 1 + timing.trfc
        assert rank.refresh_count == 1

    def test_refresh_disabled(self):
        timing = TimingSet.from_timings(DRAMTimings())
        rank = Rank(timing, refresh_enabled=False)
        assert not rank.refresh_due(10 ** 9)
        assert rank.pending_refreshes(10 ** 9) == 0


# ----------------------------------------------------------------------
# Channel and device.
# ----------------------------------------------------------------------
class TestChannelAndDevice:
    def test_channel_refresh_closes_rows(self):
        config = DRAMConfig()
        channel = Channel(config, 0, refresh_enabled=True)
        timing = config.slow_timing_set()
        channel.access(0, 0, 100, False)
        assert channel.bank(0).open_row == 100
        # Jump past several refresh intervals; the next access must wait for
        # the refresh and find the bank closed (so it re-activates).
        result = channel.access(3 * timing.trefi, 0, 100, False)
        assert result.outcome == "miss"
        assert channel.counters.refreshes >= 1

    def test_bus_serialises_back_to_back_accesses(self):
        config = DRAMConfig()
        channel = Channel(config, 0, refresh_enabled=False)
        first = channel.access(0, 0, 10, False)
        second = channel.access(0, 1, 10, False)
        assert second.completion_cycle >= first.completion_cycle \
            + config.slow_timing_set().tbl

    def test_device_counters_merge(self):
        device = DRAMDevice(DRAMConfig(channels=2), refresh_enabled=False)
        decoded = device.decode(0)
        device.channel(0).access(0, device.flat_bank(decoded), decoded.row,
                                 False)
        total = device.total_counters()
        assert total.reads == 1
        assert total.activates == 1

    def test_command_counters_reject_unknown_outcome(self):
        counters = CommandCounters()
        with pytest.raises(ValueError):
            counters.record_outcome("bogus")

    def test_command_counters_row_tracking_disabled_by_default(self):
        counters = CommandCounters()
        counters.record_row_activation(("b",), 5)
        assert counters.row_activation_counts == {}

    def test_command_counters_record_each_command(self):
        counters = CommandCounters()
        for command in Command:
            counters.record_command(command)
        assert counters.activates == 1
        assert counters.relocs == 1
        assert counters.refreshes == 1
        assert counters.column_accesses == 2
