"""Figure 13: sensitivity to the row segment size."""

from conftest import report

from repro.experiments import figure13_segment_size


def test_figure13_segment_size(benchmark, bench_scale):
    data = benchmark.pedantic(
        figure13_segment_size, args=(bench_scale,),
        kwargs={"segment_sizes_blocks": (8, 16, 64, 128)},
        iterations=1, rounds=1)
    report(data)
    assert any(row[1] == "1kB" for row in data["rows"])
