"""Figure 9: in-DRAM cache hit rate of the caching mechanisms."""

from conftest import report

from repro.experiments import figure9_cache_hit_rate


def test_figure9_cache_hit_rate(benchmark, bench_scale):
    data = benchmark.pedantic(figure9_cache_hit_rate, args=(bench_scale,),
                              iterations=1, rounds=1)
    report(data)
    assert all(0.0 <= row[2] <= 1.0 for row in data["rows"])
