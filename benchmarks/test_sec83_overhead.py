"""Section 8.3: hardware overhead accounting."""

from conftest import report

from repro.experiments import section83_overhead


def test_section83_overhead(benchmark):
    data = benchmark(section83_overhead)
    report(data)
    values = dict((row[0], row[1]) for row in data["rows"])
    assert values["FTS storage per channel (kB)"] == 26.0
    assert values["LISA-VILLA fast subarrays (% of DRAM chip)"] > \
        values["FIGCache-Fast cache rows (% of DRAM chip)"]
