"""Table 1: the simulated system configuration."""

from conftest import report

from repro.experiments import table1_configuration


def test_table1_configuration(benchmark):
    data = benchmark(table1_configuration)
    report(data)
    assert len(data["rows"]) >= 5
