"""Figure 15: sensitivity to the row segment insertion threshold."""

from conftest import report

from repro.experiments import figure15_insertion_threshold


def test_figure15_insertion_threshold(benchmark, bench_scale):
    data = benchmark.pedantic(
        figure15_insertion_threshold, args=(bench_scale,),
        kwargs={"thresholds": (1, 2, 4)}, iterations=1, rounds=1)
    report(data)
    assert any(row[1] == "Threshold 1" for row in data["rows"])
