"""Section 4.2: the RELOC latency Monte-Carlo study."""

from conftest import report

from repro.experiments import section42_reloc_timing


def test_section42_reloc_timing(benchmark):
    data = benchmark(section42_reloc_timing, iterations=2000)
    report(data)
    values = dict((row[0], row[1]) for row in data["rows"])
    assert abs(values["guardbanded RELOC latency (ns)"] - 1.0) < 1e-9
    assert abs(values["end-to-end one-block relocation (ns)"] - 63.5) < 1.0
