"""Figure 12: sensitivity to in-DRAM cache capacity (fast subarrays)."""

from conftest import report

from repro.experiments import figure12_cache_capacity


def test_figure12_cache_capacity(benchmark, bench_scale):
    data = benchmark.pedantic(
        figure12_cache_capacity, args=(bench_scale,),
        kwargs={"fast_subarray_counts": (1, 2, 4)}, iterations=1, rounds=1)
    report(data)
    assert any(row[1] == "LL-DRAM" for row in data["rows"])
