"""Table 2: the workload catalog and its measured intensity split."""

from conftest import report

from repro.experiments import table2_workloads


def test_table2_workloads(benchmark):
    data = benchmark(table2_workloads, records=3000)
    report(data)
    assert len(data["rows"]) == 20
