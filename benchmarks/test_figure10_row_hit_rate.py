"""Figure 10: DRAM row-buffer hit rate of the caching mechanisms."""

from conftest import report

from repro.experiments import figure10_row_buffer_hit_rate


def test_figure10_row_buffer_hit_rate(benchmark, bench_scale):
    data = benchmark.pedantic(figure10_row_buffer_hit_rate,
                              args=(bench_scale,), iterations=1, rounds=1)
    report(data)
    assert all(0.0 <= row[2] <= 1.0 for row in data["rows"])
