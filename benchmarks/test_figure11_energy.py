"""Figure 11: system energy breakdown normalised to Base."""

from conftest import report

from repro.experiments import figure11_energy


def test_figure11_energy(benchmark, bench_scale):
    data = benchmark.pedantic(figure11_energy, args=(bench_scale,),
                              iterations=1, rounds=1)
    report(data)
    totals = {(row[0], row[1]): row[-1] for row in data["rows"]}
    base_rows = [key for key in totals if key[1] == "Base"]
    assert all(abs(totals[key] - 1.0) < 1e-6 for key in base_rows)
