"""Figure 7: single-core speedup over Base per intensity category."""

from conftest import report

from repro.experiments import figure7_single_core


def test_figure7_single_core(benchmark, bench_scale):
    data = benchmark.pedantic(figure7_single_core, args=(bench_scale,),
                              iterations=1, rounds=1)
    report(data)
    speedups = {(row[0], row[1]): row[2] for row in data["rows"]}
    intensive_fast = speedups[("Memory Intensive", "FIGCache-Fast")]
    assert intensive_fast > 1.0
