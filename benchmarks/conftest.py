"""Shared scale, cache isolation, and printing helpers for the benchmarks.

Every benchmark regenerates one of the paper's tables or figures at a
reduced scale (see DESIGN.md / EXPERIMENTS.md for the scaling notes) and
prints the resulting rows so the numbers can be compared with the paper.
"""

import pytest

from repro.experiments import ExperimentScale, format_table, engine


@pytest.fixture(scope="module", autouse=True)
def isolated_result_cache():
    """Give every benchmark module a fresh, memory-only experiment engine.

    An explicitly memory-only executor (cache_dir=None) guarantees one
    figure module can never observe — or be timed against — results cached
    by another, even when ``REPRO_CACHE_DIR`` points at a warm persistent
    cache in the surrounding environment.  Within a module, jobs still
    share the cache, which is what the figure runners rely on.  The
    teardown restores the environment-configured default for whatever runs
    after the harness.
    """
    engine.configure(cache_dir=None)
    yield
    engine.reset()


@pytest.fixture(scope="session")
def bench_scale():
    """Scale used by the simulation-driven benchmarks."""
    return ExperimentScale.bench()


def report(data):
    """Print an experiment's result table."""
    title = data.get("figure") or data.get("table") or data.get("section")
    print()
    print(format_table(f"{title}: {data.get('metric', '')}",
                       data["columns"], data["rows"]))
