"""Shared scale and printing helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures at a
reduced scale (see DESIGN.md / EXPERIMENTS.md for the scaling notes) and
prints the resulting rows so the numbers can be compared with the paper.
"""

import pytest

from repro.experiments import ExperimentScale, format_table


@pytest.fixture(scope="session")
def bench_scale():
    """Scale used by the simulation-driven benchmarks."""
    return ExperimentScale(single_core_records=6000, multicore_records=1500,
                           num_cores=8, multicore_channels=4,
                           mixes_per_category=1, benchmarks_per_class=2)


def report(data):
    """Print an experiment's result table."""
    title = data.get("figure") or data.get("table") or data.get("section")
    print()
    print(format_table(f"{title}: {data.get('metric', '')}",
                       data["columns"], data["rows"]))
