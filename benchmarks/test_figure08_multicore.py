"""Figure 8: eight-core weighted speedup over Base per intensity mix."""

from conftest import report

from repro.experiments import figure8_multicore


def test_figure8_multicore(benchmark, bench_scale):
    data = benchmark.pedantic(figure8_multicore, args=(bench_scale,),
                              iterations=1, rounds=1)
    report(data)
    assert all(row[2] > 0 for row in data["rows"])
