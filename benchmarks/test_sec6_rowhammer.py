"""Sections 6 / 8.1: RowHammer-style activation-concentration study."""

from conftest import report

from repro.experiments import ExperimentScale, rowhammer_activation_study


def test_rowhammer_activation_study(benchmark):
    scale = ExperimentScale(single_core_records=4000)
    data = benchmark.pedantic(rowhammer_activation_study, args=(scale,),
                              kwargs={"benchmark": "lbm"},
                              iterations=1, rounds=1)
    report(data)
    rows = {row[0]: row for row in data["rows"]}
    assert rows["FIGCache-Fast"][1] <= rows["Base"][1]
