"""Figure 14: sensitivity to the in-DRAM cache replacement policy."""

from conftest import report

from repro.experiments import figure14_replacement_policy


def test_figure14_replacement_policy(benchmark, bench_scale):
    data = benchmark.pedantic(figure14_replacement_policy,
                              args=(bench_scale,), iterations=1, rounds=1)
    report(data)
    policies = {row[1] for row in data["rows"]}
    assert {"Random", "LRU", "SegmentBenefit", "RowBenefit"} <= policies
