"""Optional ahead-of-time (AOT) build of the turbo simulation backend.

The package is pure Python and installs without a compiler.  When Cython
is available (``pip install -e '.[aot]'`` provides it), this script
additionally compiles the two hot modules of the turbo backend —
``repro/sim/turbo.py`` and ``repro/sim/turbo_tables.py`` — to C
extensions.  Compiled and interpreted builds are bit-identical by the
backend contract; the only observable difference is speed and the
``compiled: true`` flag in bench reports (see
:func:`repro.sim.backend.backend_build_info`).

Recipe (also in docs/performance.md)::

    pip install -e '.[aot]'             # pure-Python install + Cython
    python setup.py build_ext --inplace # compile the turbo modules

Without Cython the second step is a no-op that prints a note, and
imports keep using the pure-Python modules.  Deleting the built
``*.so``/``*.pyd`` files next to the sources reverts to interpreted
mode; ``python setup.py aot_clean`` does exactly that.
"""

import glob
import os

from setuptools import Command, setup

#: Turbo-backend modules compiled by the optional AOT build.
AOT_MODULES = [
    os.path.join("src", "repro", "sim", "turbo_tables.py"),
    os.path.join("src", "repro", "sim", "turbo.py"),
]


def aot_extensions():
    """Cython extensions for the turbo backend, or [] without Cython."""
    try:
        from Cython.Build import cythonize
    except ImportError:
        if "build_ext" in os.sys.argv:
            print("setup.py: Cython not installed — skipping the AOT build "
                  "of the turbo backend (pip install -e '.[aot]' provides "
                  "it); the pure-Python modules stay in use")
        return []
    return cythonize(
        AOT_MODULES,
        # The modules are plain Python (shared with the interpreted
        # backend), so compile in full language_level 3 semantics.
        compiler_directives={"language_level": "3"},
        quiet=True)


class AotClean(Command):
    """Remove AOT build products so imports fall back to pure Python."""

    description = "delete compiled turbo-backend extensions (*.so/*.pyd/*.c)"
    user_options = []

    def initialize_options(self):
        pass

    def finalize_options(self):
        pass

    def run(self):
        for source in AOT_MODULES:
            stem = source[:-3]
            for pattern in (stem + ".c", stem + ".*.so", stem + ".*.pyd",
                            stem + ".so", stem + ".pyd"):
                for path in glob.glob(pattern):
                    print(f"removing {path}")
                    os.remove(path)


setup(ext_modules=aot_extensions(), cmdclass={"aot_clean": AotClean})
