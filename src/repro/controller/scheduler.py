"""FR-FCFS request scheduling.

FR-FCFS (first-ready, first-come-first-served) prefers requests that hit the
currently open row of their bank (they are "first ready"), and falls back to
the oldest request otherwise.  This is the scheduling policy used by the
paper's baseline memory controller (Table 1).

The scheduler operates on *per-bank* candidate queues maintained by the
:class:`~repro.controller.channel_controller.ChannelController`: each call
to :meth:`FRFCFSScheduler.pick` receives only the requests targeting the
bank being scheduled, already in FCFS order, instead of scanning the whole
channel's read and write queues.  FCFS selection is therefore "front of the
queue" and first-ready selection is a single in-order scan for the first
open-row hit — both O(pending requests of this bank) rather than O(all
queued requests x banks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.controller.request import MemoryRequest
from repro.dram.bank import Bank


@dataclass(frozen=True)
class SchedulerConfig:
    """Scheduling and queueing parameters (paper Table 1 defaults)."""

    #: Read queue capacity per channel.
    read_queue_depth: int = 64
    #: Write queue capacity per channel.
    write_queue_depth: int = 64
    #: Write-drain starts when the write queue reaches this occupancy.
    write_drain_high_watermark: int = 48
    #: Write-drain stops when the write queue falls to this occupancy.
    write_drain_low_watermark: int = 16


class FRFCFSScheduler:
    """Selects the next request to issue for one bank of one channel."""

    __slots__ = ('_config', '_write_backlog_threshold')

    def __init__(self, config: SchedulerConfig | None = None):
        self._config = config or SchedulerConfig()
        # Hoisted for the per-pick hot path (frozen-dataclass attribute
        # access costs a descriptor lookup per call otherwise).
        self._write_backlog_threshold = self._config.write_drain_low_watermark

    @property
    def config(self) -> SchedulerConfig:
        """Queue and watermark configuration."""
        return self._config

    def pick(self, bank: Bank,
             bank_reads: Sequence[MemoryRequest],
             bank_writes: Sequence[MemoryRequest],
             write_backlog: int, drain_mode: bool,
             row_of=None) -> MemoryRequest | None:
        """Pick the next request to issue for ``bank``.

        ``bank_reads`` and ``bank_writes`` hold only this bank's pending
        requests, in FCFS (ascending ``request_id``) order — the channel
        controller maintains these per-bank queues on enqueue/dequeue.
        ``write_backlog`` is the channel-wide write-queue occupancy, which
        gates opportunistic write issue outside of drain mode.

        Reads have priority over writes except during write drain.  Within a
        class, requests that would hit the open row of the bank are preferred
        (first-ready); ties are broken by arrival order (FCFS), i.e. the
        earliest request in queue order.

        ``row_of`` maps a request to the DRAM row it would actually be served
        from.  In-DRAM caching mechanisms redirect hot segments to cache
        rows, so the effective row can differ from the row encoded in the
        request's address; passing the mechanism's view here lets FR-FCFS
        exploit open cache rows.  When None, the address row is used
        directly (the fast path for mechanisms that never remap rows).
        """
        open_row = bank.open_row

        if drain_mode:
            choice = _first_ready(bank_writes, open_row, row_of)
            if choice is None:
                choice = _first_ready(bank_reads, open_row, row_of)
            return choice

        choice = _first_ready(bank_reads, open_row, row_of)
        if choice is not None:
            return choice
        # No reads pending for this bank: opportunistically issue writes once
        # the write queue has accumulated a modest batch, so that write
        # bandwidth is not starved outside of drain mode.
        if write_backlog >= self._write_backlog_threshold:
            return _first_ready(bank_writes, open_row, row_of)
        return None


def _first_ready(candidates: Sequence[MemoryRequest], open_row: int | None,
                 row_of) -> MemoryRequest | None:
    """FR-FCFS selection among one bank's ``candidates``.

    ``candidates`` is in FCFS order, so the first open-row hit found is
    the oldest hit, and the fallback is simply the front of the queue.
    """
    if not candidates:
        return None
    if open_row is not None:
        if row_of is None:
            for request in candidates:
                if request.decoded.row == open_row:
                    return request
        else:
            for request in candidates:
                if row_of(request) == open_row:
                    return request
    return candidates[0]
