"""FR-FCFS request scheduling.

FR-FCFS (first-ready, first-come-first-served) prefers requests that hit the
currently open row of their bank (they are "first ready"), and falls back to
the oldest request otherwise.  This is the scheduling policy used by the
paper's baseline memory controller (Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.controller.request import MemoryRequest
from repro.dram.channel import Channel


@dataclass(frozen=True)
class SchedulerConfig:
    """Scheduling and queueing parameters (paper Table 1 defaults)."""

    #: Read queue capacity per channel.
    read_queue_depth: int = 64
    #: Write queue capacity per channel.
    write_queue_depth: int = 64
    #: Write-drain starts when the write queue reaches this occupancy.
    write_drain_high_watermark: int = 48
    #: Write-drain stops when the write queue falls to this occupancy.
    write_drain_low_watermark: int = 16


class FRFCFSScheduler:
    """Selects the next request to issue for one bank of one channel."""

    def __init__(self, config: SchedulerConfig | None = None):
        self._config = config or SchedulerConfig()

    @property
    def config(self) -> SchedulerConfig:
        """Queue and watermark configuration."""
        return self._config

    def pick(self, channel: Channel, flat_bank: int,
             read_queue: list[MemoryRequest],
             write_queue: list[MemoryRequest],
             drain_mode: bool, row_of=None) -> MemoryRequest | None:
        """Pick the next request to issue for ``flat_bank``.

        Reads have priority over writes except during write drain.  Within a
        class, requests that would hit the open row of the bank are preferred
        (first-ready); ties are broken by arrival order (FCFS).

        ``row_of`` maps a request to the DRAM row it would actually be served
        from.  In-DRAM caching mechanisms redirect hot segments to cache
        rows, so the effective row can differ from the row encoded in the
        request's address; passing the mechanism's view here lets FR-FCFS
        exploit open cache rows.  When omitted, the address row is used.
        """
        if row_of is None:
            def row_of(req: MemoryRequest) -> int:
                return req.decoded.row

        bank_reads = [req for req in read_queue if req.flat_bank == flat_bank]
        bank_writes = [req for req in write_queue if req.flat_bank == flat_bank]

        if drain_mode:
            choice = self._first_ready(channel, flat_bank, bank_writes, row_of)
            if choice is None:
                choice = self._first_ready(channel, flat_bank, bank_reads,
                                           row_of)
            return choice

        choice = self._first_ready(channel, flat_bank, bank_reads, row_of)
        if choice is not None:
            return choice
        # No reads pending for this bank: opportunistically issue writes once
        # the write queue has accumulated a modest batch, so that write
        # bandwidth is not starved outside of drain mode.
        if len(write_queue) >= self._config.write_drain_low_watermark:
            return self._first_ready(channel, flat_bank, bank_writes, row_of)
        return None

    @staticmethod
    def _first_ready(channel: Channel, flat_bank: int,
                     candidates: list[MemoryRequest],
                     row_of) -> MemoryRequest | None:
        """FR-FCFS selection among ``candidates`` for one bank."""
        if not candidates:
            return None
        bank = channel.bank(flat_bank)
        open_row = bank.open_row
        if open_row is not None:
            hits = [req for req in candidates if row_of(req) == open_row]
            if hits:
                return min(hits, key=lambda req: req.request_id)
        return min(candidates, key=lambda req: req.request_id)
