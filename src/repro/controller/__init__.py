"""Memory controller substrate.

The controller sits between the last-level cache and the DRAM device.  It
holds per-channel read and write request queues, schedules requests with the
FR-FCFS policy (row hits first, then oldest), drains writes in batches using
high/low watermarks, and consults the configured in-DRAM caching mechanism
(:mod:`repro.core` / :mod:`repro.baselines`) to decide where each request is
actually served and whether row-segment relocations must be performed.
"""

from repro.controller.channel_controller import ChannelController
from repro.controller.controller import MemoryController
from repro.controller.request import MemoryRequest
from repro.controller.scheduler import FRFCFSScheduler, SchedulerConfig

__all__ = [
    "ChannelController",
    "FRFCFSScheduler",
    "MemoryController",
    "MemoryRequest",
    "SchedulerConfig",
]
