"""Per-channel memory controller: queues, scheduling, and service.

The :class:`ChannelController` owns one channel's read and write queues and
decides, whenever a bank is (or becomes) free, which queued request to issue
next using FR-FCFS.  The actual service — including any in-DRAM cache lookup
and relocation — is delegated to the configured caching mechanism.

The controller is event-driven.  Two entry points matter to the simulator:

* :meth:`enqueue` — a new request arrives; returns any newly completed
  requests (scheduling is attempted immediately).
* :meth:`wake` — a previously busy bank may have become free; returns newly
  completed requests.

Both return completed requests rather than scheduling callbacks so that the
surrounding simulator (``repro.sim``) can turn them into core wake-up events.
"""

from __future__ import annotations

from repro.controller.request import MemoryRequest
from repro.controller.scheduler import FRFCFSScheduler, SchedulerConfig
from repro.core.mechanism import CachingMechanism
from repro.dram.channel import Channel


class ChannelController:
    """Request queues and scheduling for one memory channel."""

    def __init__(self, channel: Channel, mechanism: CachingMechanism,
                 scheduler_config: SchedulerConfig | None = None):
        self._channel = channel
        self._mechanism = mechanism
        self._scheduler = FRFCFSScheduler(scheduler_config)
        self._read_queue: list[MemoryRequest] = []
        self._write_queue: list[MemoryRequest] = []
        self._drain_mode = False
        #: Banks with work pending but currently busy, mapped to the cycle at
        #: which they should be re-examined.
        self._pending_wakeups: dict[int, int] = {}
        #: Completed request statistics.
        self.completed_reads = 0
        self.completed_writes = 0
        self.total_read_latency = 0

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    @property
    def channel(self) -> Channel:
        """The DRAM channel driven by this controller."""
        return self._channel

    @property
    def mechanism(self) -> CachingMechanism:
        """The in-DRAM caching mechanism in use."""
        return self._mechanism

    @property
    def read_queue_occupancy(self) -> int:
        """Number of reads currently queued."""
        return len(self._read_queue)

    @property
    def write_queue_occupancy(self) -> int:
        """Number of writes currently queued."""
        return len(self._write_queue)

    @property
    def scheduler_config(self) -> SchedulerConfig:
        """Queueing/watermark configuration."""
        return self._scheduler.config

    def read_queue_full(self) -> bool:
        """True when no more reads can be accepted."""
        return len(self._read_queue) >= self._scheduler.config.read_queue_depth

    def write_queue_full(self) -> bool:
        """True when no more writes can be accepted."""
        return (len(self._write_queue)
                >= self._scheduler.config.write_queue_depth)

    def has_pending_work(self) -> bool:
        """True while any request is still queued."""
        return bool(self._read_queue or self._write_queue)

    def next_wakeup(self) -> int | None:
        """Earliest cycle at which a busy bank with pending work frees up."""
        if not self._pending_wakeups:
            return None
        return min(self._pending_wakeups.values())

    def average_read_latency(self) -> float:
        """Mean read latency (cycles) over completed reads."""
        if self.completed_reads == 0:
            return 0.0
        return self.total_read_latency / self.completed_reads

    # ------------------------------------------------------------------
    # Event entry points.
    # ------------------------------------------------------------------
    def enqueue(self, request: MemoryRequest, now: int) -> list[MemoryRequest]:
        """Accept a new request and try to schedule its bank immediately."""
        if request.decoded is None or request.flat_bank < 0:
            raise ValueError("request must be decoded before enqueueing")
        queue = self._write_queue if request.is_write else self._read_queue
        queue.append(request)
        self._update_drain_mode()
        return self._try_schedule_bank(request.flat_bank, now)

    def wake(self, now: int) -> list[MemoryRequest]:
        """Re-attempt scheduling on banks whose wake-up time has arrived."""
        completed: list[MemoryRequest] = []
        due = [bank for bank, cycle in self._pending_wakeups.items()
               if cycle <= now]
        for bank in due:
            del self._pending_wakeups[bank]
        for bank in due:
            completed.extend(self._try_schedule_bank(bank, now))
        return completed

    def drain_all(self, now: int) -> tuple[int, list[MemoryRequest]]:
        """Service every queued request, ignoring future arrivals.

        Used at the end of a simulation to flush outstanding writes.  Returns
        the cycle at which the last request finished and the completed
        requests.
        """
        completed: list[MemoryRequest] = []
        current = now
        while self.has_pending_work():
            progressed = False
            banks = {req.flat_bank
                     for req in self._read_queue + self._write_queue}
            for bank in sorted(banks):
                served = self._try_schedule_bank(bank, current,
                                                 force_writes=True)
                if served:
                    progressed = True
                    completed.extend(served)
            if not progressed:
                wake = self.next_wakeup()
                current = wake if wake is not None else current + 1
                self._pending_wakeups.clear()
        last = max((req.completion_cycle for req in completed), default=now)
        return last, completed

    # ------------------------------------------------------------------
    # Scheduling internals.
    # ------------------------------------------------------------------
    def _try_schedule_bank(self, flat_bank: int, now: int,
                           force_writes: bool = False) -> list[MemoryRequest]:
        """Issue as many requests as the bank allows starting at ``now``."""
        completed: list[MemoryRequest] = []
        while True:
            bank = self._channel.bank(flat_bank)
            ready_at = bank.ready_for_next
            if ready_at > now:
                self._note_wakeup(flat_bank, ready_at)
                break
            request = self._scheduler.pick(
                self._channel, flat_bank, self._read_queue, self._write_queue,
                drain_mode=self._drain_mode or force_writes,
                row_of=self._effective_row)
            if request is None:
                break
            self._dequeue(request)
            self._service(request, now)
            completed.append(request)
            self._update_drain_mode()
        return completed

    def _effective_row(self, request: MemoryRequest) -> int:
        return self._mechanism.effective_row(self._channel, request.decoded,
                                             request.flat_bank)

    def _service(self, request: MemoryRequest, now: int) -> None:
        result = self._mechanism.service(self._channel, now, request.decoded,
                                         request.flat_bank, request.is_write)
        request.issue_cycle = now
        request.completion_cycle = result.completion_cycle
        request.in_dram_cache_hit = result.in_dram_cache_hit
        request.row_buffer_outcome = result.row_buffer_outcome
        request.served_fast = result.served_fast
        if request.is_write:
            self.completed_writes += 1
        else:
            self.completed_reads += 1
            self.total_read_latency += request.latency

    def _dequeue(self, request: MemoryRequest) -> None:
        queue = self._write_queue if request.is_write else self._read_queue
        queue.remove(request)

    def _note_wakeup(self, flat_bank: int, cycle: int) -> None:
        """Remember that ``flat_bank`` has pending work and frees at ``cycle``."""
        has_work = any(req.flat_bank == flat_bank
                       for req in self._read_queue) \
            or any(req.flat_bank == flat_bank for req in self._write_queue)
        if not has_work:
            self._pending_wakeups.pop(flat_bank, None)
            return
        existing = self._pending_wakeups.get(flat_bank)
        if existing is None or cycle < existing:
            self._pending_wakeups[flat_bank] = cycle

    def _update_drain_mode(self) -> None:
        config = self._scheduler.config
        occupancy = len(self._write_queue)
        if not self._drain_mode and occupancy >= config.write_drain_high_watermark:
            self._drain_mode = True
        elif self._drain_mode and occupancy <= config.write_drain_low_watermark:
            self._drain_mode = False
