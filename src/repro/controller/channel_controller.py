"""Per-channel memory controller: queues, scheduling, and service.

The :class:`ChannelController` owns one channel's read and write queues and
decides, whenever a bank is (or becomes) free, which queued request to issue
next using FR-FCFS.  The actual service — including any in-DRAM cache lookup
and relocation — is delegated to the configured caching mechanism.

Queues are indexed per bank: ``dict[flat_bank, deque]`` for reads and for
writes, maintained on enqueue and dequeue, so every scheduling attempt
consults only the candidates of the bank being scheduled instead of
re-filtering the whole channel's queues (the pre-PR-2 behaviour, which made
each pick O(queued requests) per bank).  Each per-bank deque is kept in
ascending ``request_id`` order — the FCFS order the scheduler's tie-breaks
are defined over — so "oldest request" is the front of the deque.  Requests
almost always arrive in id order; the rare out-of-order arrival (a core
that ran far ahead issues a request whose arrival cycle lands after a
younger core's) is insertion-sorted from the back.

Bank wake-ups are tracked two ways: an insertion-ordered ``dict`` mapping
each pending bank to its wake cycle (the order banks are re-examined in —
it determines shared-bus interleaving and must stay stable), and a
lazily-invalidated min-heap over ``(cycle, bank)`` entries that answers
:meth:`next_wakeup` in O(1) amortised instead of a ``min()`` scan per
event.  Heap entries whose cycle no longer matches the dict are stale and
skipped on pop.

The controller is event-driven.  Two entry points matter to the simulator:

* :meth:`enqueue` — a new request arrives; returns any newly completed
  requests (scheduling is attempted immediately).
* :meth:`wake` — a previously busy bank may have become free; returns newly
  completed requests.

Both return completed requests rather than scheduling callbacks so that the
surrounding simulator (``repro.sim``) can turn them into core wake-up events.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush

from repro.controller.request import MemoryRequest
from repro.controller.scheduler import FRFCFSScheduler, SchedulerConfig
from repro.core.mechanism import CachingMechanism
from repro.dram.channel import Channel

#: Shared empty candidate list for banks with no pending work of a class.
_NO_REQUESTS: tuple = ()


class ChannelController:
    """Request queues and scheduling for one memory channel."""

    __slots__ = ('_channel', '_mechanism', '_scheduler', '_reads_by_bank',
                 '_writes_by_bank', '_read_count', '_write_count',
                 '_drain_mode', '_wakeup_cycle', '_wakeup_heap',
                 '_read_queue_depth', '_write_queue_depth', '_drain_high',
                 '_drain_low', '_row_of', '_direct_access',
                 'completed_reads', 'completed_writes',
                 'read_latencies', 'write_latencies', 'tracer')

    def __init__(self, channel: Channel, mechanism: CachingMechanism,
                 scheduler_config: SchedulerConfig | None = None):
        self._channel = channel
        self._mechanism = mechanism
        self._scheduler = FRFCFSScheduler(scheduler_config)
        #: Per-bank pending requests in FCFS (request_id) order.
        self._reads_by_bank: dict[int, deque[MemoryRequest]] = {}
        self._writes_by_bank: dict[int, deque[MemoryRequest]] = {}
        #: Channel-wide queue occupancies (the per-bank dicts only hold
        #: non-empty deques, so totals are tracked separately).
        self._read_count = 0
        self._write_count = 0
        self._drain_mode = False
        #: Banks with work pending but currently busy, mapped to the cycle
        #: at which they should be re-examined.  Insertion order is the
        #: order due banks are scheduled in.
        self._wakeup_cycle: dict[int, int] = {}
        #: Min-heap over (cycle, bank); entries not matching
        #: ``_wakeup_cycle`` are stale and skipped lazily.
        self._wakeup_heap: list[tuple[int, int]] = []
        #: Hot-path configuration and dispatch, hoisted once.
        config = self._scheduler.config
        self._read_queue_depth = config.read_queue_depth
        self._write_queue_depth = config.write_queue_depth
        self._drain_high = config.write_drain_high_watermark
        self._drain_low = config.write_drain_low_watermark
        #: Row-remap hook handed to the scheduler: None when the mechanism
        #: never redirects requests, so FR-FCFS reads the address row
        #: directly (see ``CachingMechanism.remaps_rows``).
        self._row_of = self._effective_row if mechanism.remaps_rows else None
        #: Direct-access mechanisms (no in-DRAM cache) are served straight
        #: through Channel.access (see CachingMechanism.direct_access).
        self._direct_access = mechanism.direct_access
        #: Completed request statistics.  Latencies (completion minus
        #: arrival) are counted exactly per distinct value — the storage
        #: behind both the mean-latency metric and the telemetry layer's
        #: percentile queries (see :mod:`repro.sim.telemetry`).
        self.completed_reads = 0
        self.completed_writes = 0
        self.read_latencies: dict[int, int] = {}
        self.write_latencies: dict[int, int] = {}
        #: Optional event tracer (see :mod:`repro.sim.tracing`).  ``None``
        #: when tracing is off; the service paths pay one ``is not None``
        #: check per serviced request.
        self.tracer = None

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    @property
    def channel(self) -> Channel:
        """The DRAM channel driven by this controller."""
        return self._channel

    @property
    def mechanism(self) -> CachingMechanism:
        """The in-DRAM caching mechanism in use."""
        return self._mechanism

    @property
    def read_queue_occupancy(self) -> int:
        """Number of reads currently queued."""
        return self._read_count

    @property
    def write_queue_occupancy(self) -> int:
        """Number of writes currently queued."""
        return self._write_count

    @property
    def scheduler_config(self) -> SchedulerConfig:
        """Queueing/watermark configuration."""
        return self._scheduler.config

    def read_queue_full(self) -> bool:
        """True when no more reads can be accepted."""
        return self._read_count >= self._read_queue_depth

    def write_queue_full(self) -> bool:
        """True when no more writes can be accepted."""
        return self._write_count >= self._write_queue_depth

    def has_pending_work(self) -> bool:
        """True while any request is still queued."""
        return bool(self._read_count or self._write_count)

    def has_pending_wakeups(self) -> bool:
        """True when any busy bank is waiting to be re-examined."""
        return bool(self._wakeup_cycle)

    def pending_requests_for_bank(self, flat_bank: int) -> int:
        """Queued reads plus writes currently targeting ``flat_bank``."""
        reads = self._reads_by_bank.get(flat_bank)
        writes = self._writes_by_bank.get(flat_bank)
        return (len(reads) if reads else 0) + (len(writes) if writes else 0)

    def wakeup_view(self) -> tuple[list, dict]:
        """The live ``(wake-up heap, wake-cycle dict)`` pair for hot loops.

        Accessor contract: the controller never rebinds ``_wakeup_heap``
        or ``_wakeup_cycle`` after construction — both are mutated in
        place — so a snapshot taken once per simulation run stays live for
        the whole run.  The simulator hot loops peek these structures
        directly instead of calling :meth:`next_wakeup` per event and
        verify the contract with a debug assertion at the end of the run
        (a subclass that rebinds either attribute would silently desync
        the snapshot otherwise).
        """
        return self._wakeup_heap, self._wakeup_cycle

    def next_wakeup(self) -> int | None:
        """Earliest cycle at which a busy bank with pending work frees up.

        Answered from the lazily-invalidated min-heap: stale heads (entries
        superseded by an earlier wake-up or already woken) are popped until
        the head matches the live per-bank wake cycle.  KEEP the stale-head
        rule IN SYNC with the inlined peeks in
        ``MemoryController.next_wakeup`` and ``Simulator._run``.
        """
        heap = self._wakeup_heap
        live = self._wakeup_cycle
        while heap:
            cycle, bank = heap[0]
            if live.get(bank) == cycle:
                return cycle
            heappop(heap)
        return None

    @property
    def total_read_latency(self) -> int:
        """Sum of completed read latencies in cycles (exact integer)."""
        return sum(latency * count
                   for latency, count in self.read_latencies.items())

    def average_read_latency(self) -> float:
        """Mean read latency (cycles) over completed reads."""
        if self.completed_reads == 0:
            return 0.0
        return self.total_read_latency / self.completed_reads

    def read_latency_histogram(self):
        """Read-latency distribution as a telemetry histogram view.

        The returned :class:`~repro.sim.telemetry.LatencyHistogram` wraps
        the live counts (no copy); callers that mutate it should merge
        into a fresh histogram instead.
        """
        from repro.sim.telemetry import LatencyHistogram
        return LatencyHistogram(self.read_latencies)

    def write_latency_histogram(self):
        """Write-latency distribution as a telemetry histogram view."""
        from repro.sim.telemetry import LatencyHistogram
        return LatencyHistogram(self.write_latencies)

    def telemetry_counters(self) -> dict[str, int]:
        """Cumulative counters for the telemetry epoch sampler.

        Uniform stats-producer protocol (see :mod:`repro.sim.telemetry`).
        Queue occupancies are instantaneous values, not cumulative counts,
        and are therefore exposed separately (``read_queue_occupancy``).
        """
        return {
            "completed_reads": self.completed_reads,
            "completed_writes": self.completed_writes,
            "total_read_latency": self.total_read_latency,
        }

    # ------------------------------------------------------------------
    # Event entry points.
    # ------------------------------------------------------------------
    def enqueue(self, request: MemoryRequest, now: int) -> list[MemoryRequest]:
        """Accept a new request and try to schedule its bank immediately."""
        if request.decoded is None or request.flat_bank < 0:
            raise ValueError("request must be decoded before enqueueing")
        flat_bank = request.flat_bank
        if request.is_write:
            index = self._writes_by_bank
            self._write_count += 1
            if not self._drain_mode \
                    and self._write_count >= self._drain_high:
                self._drain_mode = True
        else:
            index = self._reads_by_bank
            # Fast path: a read arriving for a bank with no other pending
            # requests and no bank busy time left is picked unconditionally
            # by FR-FCFS (a sole read candidate wins under every mode), so
            # the queue insertion, pick, and dequeue can all be skipped.
            # No wake-up bookkeeping is needed: the bank had no pending
            # work, so no wake-up entry can exist for it.
            if flat_bank not in index \
                    and flat_bank not in self._writes_by_bank \
                    and self._channel.bank(flat_bank).ready_for_next <= now:
                self._service(request, now)
                return [request]
            self._read_count += 1
        queue = index.get(flat_bank)
        if queue is None:
            index[flat_bank] = deque((request,))
        elif queue[-1].request_id < request.request_id:
            queue.append(request)
        else:
            # Rare out-of-order arrival: restore FCFS (request_id) order.
            position = len(queue) - 1
            request_id = request.request_id
            while position > 0 and queue[position - 1].request_id > request_id:
                position -= 1
            queue.insert(position, request)
        # Busy bank: record the wake-up and return without entering the
        # scheduling loop (arrivals burst while a bank serves, so this is
        # the common slow-path outcome).
        ready_at = self._channel.bank(flat_bank).ready_for_next
        if ready_at > now:
            self._note_wakeup(flat_bank, ready_at)
            return []
        return self._try_schedule_bank(flat_bank, now)

    def wake(self, now: int) -> list[MemoryRequest]:
        """Re-attempt scheduling on banks whose wake-up time has arrived."""
        wakeups = self._wakeup_cycle
        if not wakeups:
            return []
        if len(wakeups) == 1:
            # Common case: exactly one busy bank is pending.
            bank, cycle = next(iter(wakeups.items()))
            if cycle > now:
                return []
            del wakeups[bank]
            return self._try_schedule_bank(bank, now)
        due = [bank for bank, cycle in wakeups.items() if cycle <= now]
        if not due:
            return []
        for bank in due:
            del wakeups[bank]
        completed: list[MemoryRequest] = []
        for bank in due:
            completed.extend(self._try_schedule_bank(bank, now))
        return completed

    def drain_all(self, now: int) -> tuple[int, list[MemoryRequest]]:
        """Service every queued request, ignoring future arrivals.

        Used at the end of a simulation to flush outstanding writes.  Returns
        the cycle at which the last request finished and the completed
        requests.
        """
        completed: list[MemoryRequest] = []
        current = now
        while self._read_count or self._write_count:
            progressed = False
            banks = sorted(self._reads_by_bank.keys()
                           | self._writes_by_bank.keys())
            for bank in banks:
                served = self._try_schedule_bank(bank, current,
                                                 force_writes=True)
                if served:
                    progressed = True
                    completed.extend(served)
            if not progressed:
                wake = self.next_wakeup()
                current = wake if wake is not None else current + 1
                self._wakeup_cycle.clear()
                self._wakeup_heap.clear()
        last = max((req.completion_cycle for req in completed), default=now)
        return last, completed

    # ------------------------------------------------------------------
    # Scheduling internals.
    # ------------------------------------------------------------------
    def _try_schedule_bank(self, flat_bank: int, now: int,
                           force_writes: bool = False) -> list[MemoryRequest]:
        """Issue as many requests as the bank allows starting at ``now``."""
        completed: list[MemoryRequest] = []
        channel = self._channel
        bank = channel.bank(flat_bank)
        reads_by_bank = self._reads_by_bank
        writes_by_bank = self._writes_by_bank
        pick = self._scheduler.pick
        row_of = self._row_of
        direct_access = self._direct_access
        read_latencies = self.read_latencies
        write_latencies = self.write_latencies
        tracer = self.tracer
        # Every mechanism reports the bank's post-service readiness in
        # ``ServiceResult.bank_busy_until``, so only the first iteration
        # reads the bank's ``ready_for_next``.
        ready_at = bank.ready_for_next
        while True:
            if ready_at > now:
                self._note_wakeup(flat_bank, ready_at)
                break
            bank_reads = reads_by_bank.get(flat_bank)
            bank_writes = writes_by_bank.get(flat_bank)
            if bank_writes is None:
                if bank_reads is None:
                    break
                if len(bank_reads) == 1:
                    # A sole read candidate wins under every scheduling
                    # mode; skip the pick.
                    request = bank_reads[0]
                else:
                    request = pick(bank, bank_reads, _NO_REQUESTS,
                                   self._write_count,
                                   self._drain_mode or force_writes, row_of)
            else:
                drain = self._drain_mode or force_writes
                if bank_reads is None and not drain \
                        and self._write_count < self._drain_low:
                    # Writes only, but neither draining nor enough write
                    # backlog: the scheduler would hold them back.
                    break
                request = pick(bank,
                               bank_reads if bank_reads is not None
                               else _NO_REQUESTS,
                               bank_writes,
                               self._write_count, drain, row_of)
            if request is None:
                break
            self._dequeue(request)
            # Inline copy of _service (one call per serviced request
            # saved) — KEEP IN SYNC with the _service method, which the
            # enqueue fast path uses.  For direct-access mechanisms (no
            # in-DRAM cache) the service is exactly one column access, so
            # the mechanism dispatch and the ServiceResult wrapper are
            # skipped as well.
            is_write = request.is_write
            if direct_access:
                access = channel.access(now, flat_bank, request.decoded.row,
                                        is_write)
                completion_cycle = access.completion_cycle
                request.issue_cycle = now
                request.completion_cycle = completion_cycle
                request.in_dram_cache_hit = None
                request.row_buffer_outcome = access.outcome
                request.served_fast = access.served_fast
                ready_at = access.bank_ready_cycle
            else:
                result = self._mechanism.service(channel, now,
                                                 request.decoded, flat_bank,
                                                 is_write)
                completion_cycle = result.completion_cycle
                request.issue_cycle = now
                request.completion_cycle = completion_cycle
                request.in_dram_cache_hit = result.in_dram_cache_hit
                request.row_buffer_outcome = result.row_buffer_outcome
                request.served_fast = result.served_fast
                ready_at = result.bank_busy_until
            latency = completion_cycle - request.arrival_cycle
            if is_write:
                self.completed_writes += 1
                write_latencies[latency] = \
                    write_latencies.get(latency, 0) + 1
            else:
                self.completed_reads += 1
                read_latencies[latency] = read_latencies.get(latency, 0) + 1
            if tracer is not None:
                tracer.request_serviced(request)
            completed.append(request)
        return completed

    def _effective_row(self, request: MemoryRequest) -> int:
        return self._mechanism.effective_row(self._channel, request.decoded,
                                             request.flat_bank)

    def _service(self, request: MemoryRequest, now: int) -> int:
        """Service one picked request; returns the bank's next ready cycle.

        KEEP IN SYNC with the inline copy in :meth:`_try_schedule_bank`
        (inlined there because it runs once per serviced request).
        """
        if self._direct_access:
            access = self._channel.access(now, request.flat_bank,
                                          request.decoded.row,
                                          request.is_write)
            completion_cycle = access.completion_cycle
            request.issue_cycle = now
            request.completion_cycle = completion_cycle
            request.in_dram_cache_hit = None
            request.row_buffer_outcome = access.outcome
            request.served_fast = access.served_fast
            ready_at = access.bank_ready_cycle
        else:
            result = self._mechanism.service(self._channel, now,
                                             request.decoded,
                                             request.flat_bank,
                                             request.is_write)
            completion_cycle = result.completion_cycle
            request.issue_cycle = now
            request.completion_cycle = completion_cycle
            request.in_dram_cache_hit = result.in_dram_cache_hit
            request.row_buffer_outcome = result.row_buffer_outcome
            request.served_fast = result.served_fast
            ready_at = result.bank_busy_until
        latency = completion_cycle - request.arrival_cycle
        if request.is_write:
            self.completed_writes += 1
            self.write_latencies[latency] = \
                self.write_latencies.get(latency, 0) + 1
        else:
            self.completed_reads += 1
            self.read_latencies[latency] = \
                self.read_latencies.get(latency, 0) + 1
        if self.tracer is not None:
            self.tracer.request_serviced(request)
        return ready_at

    def _dequeue(self, request: MemoryRequest) -> None:
        flat_bank = request.flat_bank
        if request.is_write:
            index = self._writes_by_bank
            self._write_count -= 1
            if self._drain_mode and self._write_count <= self._drain_low:
                self._drain_mode = False
        else:
            index = self._reads_by_bank
            self._read_count -= 1
        queue = index[flat_bank]
        if queue[0] is request:
            queue.popleft()
        else:
            queue.remove(request)
        if not queue:
            del index[flat_bank]

    def _note_wakeup(self, flat_bank: int, cycle: int) -> None:
        """Remember that ``flat_bank`` has pending work and frees at ``cycle``."""
        if flat_bank not in self._reads_by_bank \
                and flat_bank not in self._writes_by_bank:
            self._wakeup_cycle.pop(flat_bank, None)
            return
        existing = self._wakeup_cycle.get(flat_bank)
        if existing is None or cycle < existing:
            self._wakeup_cycle[flat_bank] = cycle
            heappush(self._wakeup_heap, (cycle, flat_bank))
