"""Memory request representation."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.dram.address import DecodedAddress

_request_ids = itertools.count()


@dataclass
class MemoryRequest:
    """One cache-block request issued by a core (an LLC miss or writeback).

    Timestamps are in simulator (CPU) cycles.  ``completion_cycle`` is filled
    in by the memory controller when the request has been serviced.
    """

    #: Core that issued the request (writebacks keep the evicting core's id).
    core_id: int
    #: Physical byte address of the cache block.
    address: int
    #: True for writes (LLC writebacks), False for reads (demand misses).
    is_write: bool
    #: Cycle at which the request entered the memory controller.
    arrival_cycle: int
    #: Decoded DRAM coordinates (filled by the memory controller).
    decoded: DecodedAddress | None = None
    #: Flat bank index within the channel (filled by the memory controller).
    flat_bank: int = -1
    #: Cycle at which the request was picked by the scheduler.
    issue_cycle: int = -1
    #: Cycle at which the data transfer finished.
    completion_cycle: int = -1
    #: Whether the request hit in the in-DRAM cache (None when the configured
    #: mechanism has no cache, e.g. the Base system).
    in_dram_cache_hit: bool | None = None
    #: Row-buffer outcome recorded when the request was serviced.
    row_buffer_outcome: str = ""
    #: True when the request was served from a fast (short-bitline) region.
    served_fast: bool = False
    #: Unique, monotonically increasing id (used for FCFS tie-breaking).
    request_id: int = field(default_factory=lambda: next(_request_ids))

    @property
    def latency(self) -> int:
        """Memory latency observed by the requester, in cycles."""
        if self.completion_cycle < 0:
            raise ValueError("request has not completed yet")
        return self.completion_cycle - self.arrival_cycle

    @property
    def queueing_delay(self) -> int:
        """Cycles spent waiting in the controller queues before issue."""
        if self.issue_cycle < 0:
            raise ValueError("request has not been issued yet")
        return self.issue_cycle - self.arrival_cycle
