"""Memory request representation."""

from __future__ import annotations

import itertools

from repro.dram.address import DecodedAddress

_request_ids = itertools.count()


class MemoryRequest:
    """One cache-block request issued by a core (an LLC miss or writeback).

    Timestamps are in simulator (CPU) cycles.  ``completion_cycle`` is filled
    in by the memory controller when the request has been serviced.

    A hand-written slotted class rather than a dataclass: millions of
    instances are created per simulation, so ``__init__`` stores only the
    fields every request needs up front.  The service-outcome fields
    (``in_dram_cache_hit``, ``row_buffer_outcome``, ``served_fast``) are
    assigned by the controller when the request is serviced and must not be
    read before then.  Requests compare by identity: two distinct request
    objects are never the same request, and identity comparison keeps queue
    membership tests O(1) per element on the scheduling hot path.
    """

    __slots__ = (
        # Core that issued the request (writebacks keep the evicting
        # core's id).
        'core_id',
        #: Physical byte address of the cache block.
        'address',
        #: True for writes (LLC writebacks), False for reads (demand misses).
        'is_write',
        #: Cycle at which the request entered the memory controller.
        'arrival_cycle',
        #: Decoded DRAM coordinates (filled by the memory controller).
        'decoded',
        #: Flat bank index within the channel (filled by the controller).
        'flat_bank',
        #: Cycle at which the request was picked by the scheduler.
        'issue_cycle',
        #: Cycle at which the data transfer finished.
        'completion_cycle',
        #: Whether the request hit in the in-DRAM cache (None when the
        #: configured mechanism has no cache, e.g. the Base system).
        'in_dram_cache_hit',
        #: Row-buffer outcome recorded when the request was serviced.
        'row_buffer_outcome',
        #: True when served from a fast (short-bitline) region.
        'served_fast',
        #: Unique, monotonically increasing id (used for FCFS tie-breaking).
        'request_id',
        #: Event-ordering sequence number stamped by the turbo simulation
        #: backend when the arrival event is scheduled (unset under the
        #: reference backend, which carries the sequence in its event
        #: tuples instead).
        'event_seq',
    )

    def __init__(self, core_id: int, address: int, is_write: bool,
                 arrival_cycle: int):
        self.core_id = core_id
        self.address = address
        self.is_write = is_write
        self.arrival_cycle = arrival_cycle
        self.decoded: DecodedAddress | None = None
        self.flat_bank = -1
        self.issue_cycle = -1
        self.completion_cycle = -1
        self.request_id = next(_request_ids)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "write" if self.is_write else "read"
        return (f"MemoryRequest(id={self.request_id}, core={self.core_id}, "
                f"{kind} @ {self.address:#x}, arrival={self.arrival_cycle})")

    @property
    def latency(self) -> int:
        """Memory latency observed by the requester, in cycles."""
        if self.completion_cycle < 0:
            raise ValueError("request has not completed yet")
        return self.completion_cycle - self.arrival_cycle

    @property
    def queueing_delay(self) -> int:
        """Cycles spent waiting in the controller queues before issue."""
        if self.issue_cycle < 0:
            raise ValueError("request has not been issued yet")
        return self.issue_cycle - self.arrival_cycle
