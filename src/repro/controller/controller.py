"""Top-level memory controller spanning all channels.

The :class:`MemoryController` routes each request to its channel's
:class:`~repro.controller.channel_controller.ChannelController` using the
address mapping, and aggregates completion statistics across channels.
"""

from __future__ import annotations

from repro.controller.channel_controller import ChannelController
from repro.controller.request import MemoryRequest
from repro.controller.scheduler import SchedulerConfig
from repro.core.mechanism import CachingMechanism
from repro.dram.device import DRAMDevice


class MemoryController:
    """All per-channel controllers plus request routing."""

    def __init__(self, device: DRAMDevice,
                 mechanisms: list[CachingMechanism],
                 scheduler_config: SchedulerConfig | None = None):
        if len(mechanisms) != len(device.channels):
            raise ValueError(
                "one caching mechanism instance is required per channel "
                f"(got {len(mechanisms)} for {len(device.channels)} channels)")
        self._device = device
        self.channel_controllers = [
            ChannelController(channel, mechanism, scheduler_config)
            for channel, mechanism in zip(device.channels, mechanisms)
        ]

    @property
    def device(self) -> DRAMDevice:
        """The DRAM device driven by this controller."""
        return self._device

    def route(self, request: MemoryRequest) -> ChannelController:
        """Decode the request's address and return its channel controller."""
        decoded = self._device.decode(request.address)
        request.decoded = decoded
        request.flat_bank = self._device.flat_bank(decoded)
        return self.channel_controllers[decoded.channel]

    def enqueue(self, request: MemoryRequest, now: int) -> list[MemoryRequest]:
        """Route and enqueue a request; returns newly completed requests."""
        controller = self.route(request)
        return controller.enqueue(request, now)

    def wake(self, now: int) -> list[MemoryRequest]:
        """Give every channel a chance to issue requests at cycle ``now``."""
        completed: list[MemoryRequest] = []
        for controller in self.channel_controllers:
            completed.extend(controller.wake(now))
        return completed

    def next_wakeup(self) -> int | None:
        """Earliest wake-up cycle needed by any channel, or None."""
        wakeups = [controller.next_wakeup()
                   for controller in self.channel_controllers]
        wakeups = [cycle for cycle in wakeups if cycle is not None]
        return min(wakeups) if wakeups else None

    def has_pending_work(self) -> bool:
        """True while any channel still has queued requests."""
        return any(controller.has_pending_work()
                   for controller in self.channel_controllers)

    def drain_all(self, now: int) -> int:
        """Flush all queues; returns the cycle the last request finished."""
        last = now
        for controller in self.channel_controllers:
            finished, _ = controller.drain_all(now)
            last = max(last, finished)
        return last

    # ------------------------------------------------------------------
    # Aggregate statistics.
    # ------------------------------------------------------------------
    @property
    def completed_reads(self) -> int:
        """Reads completed across all channels."""
        return sum(controller.completed_reads
                   for controller in self.channel_controllers)

    @property
    def completed_writes(self) -> int:
        """Writes completed across all channels."""
        return sum(controller.completed_writes
                   for controller in self.channel_controllers)

    def average_read_latency(self) -> float:
        """Mean read latency in cycles across all channels."""
        total_latency = sum(controller.total_read_latency
                            for controller in self.channel_controllers)
        total_reads = self.completed_reads
        if total_reads == 0:
            return 0.0
        return total_latency / total_reads
