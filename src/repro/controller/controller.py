"""Top-level memory controller spanning all channels.

The :class:`MemoryController` routes each request to its channel's
:class:`~repro.controller.channel_controller.ChannelController` using the
address mapping, and aggregates completion statistics across channels.
"""

from __future__ import annotations

from heapq import heappop

from repro.controller.channel_controller import ChannelController
from repro.controller.request import MemoryRequest
from repro.controller.scheduler import SchedulerConfig
from repro.core.mechanism import CachingMechanism
from repro.dram.device import DRAMDevice


class MemoryController:
    """All per-channel controllers plus request routing."""

    __slots__ = ('_device', 'channel_controllers', '_route_cache',
                 '_controllers_tuple')

    def __init__(self, device: DRAMDevice,
                 mechanisms: list[CachingMechanism],
                 scheduler_config: SchedulerConfig | None = None):
        if len(mechanisms) != len(device.channels):
            raise ValueError(
                "one caching mechanism instance is required per channel "
                f"(got {len(mechanisms)} for {len(device.channels)} channels)")
        self._device = device
        self.channel_controllers = [
            ChannelController(channel, mechanism, scheduler_config)
            for channel, mechanism in zip(device.channels, mechanisms)
        ]
        #: Routing results memoized per block address: every request to the
        #: same block decodes to the same coordinates, flat bank, and
        #: channel, so repeated traffic skips the decode/flat-bank work.
        #: Unbounded by design — its size is the workload's block
        #: footprint, which the trace generators keep far below DRAM
        #: capacity.  Revisit with an LRU bound if trace footprints ever
        #: approach memory size.
        self._route_cache: dict[int, tuple] = {}
        #: Tuple copy for the per-event wake-up scan (tuple iteration is
        #: slightly cheaper than list iteration, and the set of channels
        #: never changes).
        self._controllers_tuple = tuple(self.channel_controllers)

    @property
    def device(self) -> DRAMDevice:
        """The DRAM device driven by this controller."""
        return self._device

    def route(self, request: MemoryRequest) -> ChannelController:
        """Decode the request's address and return its channel controller."""
        entry = self._route_cache.get(request.address)
        if entry is None:
            decoded = self._device.decode(request.address)
            flat_bank = self._device.flat_bank(decoded)
            entry = (decoded, flat_bank,
                     self.channel_controllers[decoded.channel])
            self._route_cache[request.address] = entry
        request.decoded = entry[0]
        request.flat_bank = entry[1]
        return entry[2]

    def enqueue(self, request: MemoryRequest, now: int) -> list[MemoryRequest]:
        """Route and enqueue a request; returns newly completed requests.

        Routing is inlined (one cache probe) rather than delegated to
        :meth:`route` — this runs once per memory request.
        """
        entry = self._route_cache.get(request.address)
        if entry is None:
            decoded = self._device.decode(request.address)
            flat_bank = self._device.flat_bank(decoded)
            entry = (decoded, flat_bank,
                     self.channel_controllers[decoded.channel])
            self._route_cache[request.address] = entry
        request.decoded = entry[0]
        request.flat_bank = entry[1]
        return entry[2].enqueue(request, now)

    def wake(self, now: int) -> list[MemoryRequest]:
        """Give every channel a chance to issue requests at cycle ``now``."""
        completed: list[MemoryRequest] = []
        for controller in self._controllers_tuple:
            if controller._wakeup_cycle:
                completed.extend(controller.wake(now))
        return completed

    def next_wakeup(self) -> int | None:
        """Earliest wake-up cycle needed by any channel, or None.

        Each channel answers from its lazily-invalidated wake-up heap, so
        this is O(channels) rather than O(pending banks).  The per-channel
        heap peek is inlined: this runs after every controller-facing
        event, and a method call per channel is measurable.
        """
        earliest = None
        for controller in self._controllers_tuple:
            heap = controller._wakeup_heap
            live = controller._wakeup_cycle
            while heap:
                head = heap[0]
                if live.get(head[1]) == head[0]:
                    cycle = head[0]
                    if earliest is None or cycle < earliest:
                        earliest = cycle
                    break
                heappop(heap)
        return earliest

    def has_pending_work(self) -> bool:
        """True while any channel still has queued requests."""
        return any(controller.has_pending_work()
                   for controller in self.channel_controllers)

    def drain_all(self, now: int) -> int:
        """Flush all queues; returns the cycle the last request finished."""
        last = now
        for controller in self.channel_controllers:
            finished, _ = controller.drain_all(now)
            last = max(last, finished)
        return last

    # ------------------------------------------------------------------
    # Aggregate statistics.
    # ------------------------------------------------------------------
    @property
    def completed_reads(self) -> int:
        """Reads completed across all channels."""
        return sum(controller.completed_reads
                   for controller in self.channel_controllers)

    @property
    def completed_writes(self) -> int:
        """Writes completed across all channels."""
        return sum(controller.completed_writes
                   for controller in self.channel_controllers)

    def average_read_latency(self) -> float:
        """Mean read latency in cycles across all channels."""
        total_latency = sum(controller.total_read_latency
                            for controller in self.channel_controllers)
        total_reads = self.completed_reads
        if total_reads == 0:
            return 0.0
        return total_latency / total_reads

    def read_latency_histogram(self):
        """Read-latency distribution merged across all channels."""
        from repro.sim.telemetry import LatencyHistogram
        merged = LatencyHistogram()
        for controller in self.channel_controllers:
            merged.merge(controller.read_latency_histogram())
        return merged

    def write_latency_histogram(self):
        """Write-latency distribution merged across all channels."""
        from repro.sim.telemetry import LatencyHistogram
        merged = LatencyHistogram()
        for controller in self.channel_controllers:
            merged.merge(controller.write_latency_histogram())
        return merged

    def queue_depths(self) -> list[int]:
        """Instantaneous read+write queue occupancy per channel."""
        return [controller.read_queue_occupancy
                + controller.write_queue_occupancy
                for controller in self.channel_controllers]
