"""DRAM command vocabulary.

The set of commands issued by the memory controller to the DRAM device.
``RELOC`` is the new command introduced by the FIGARO substrate (paper
Section 4.1): it copies one column of data between the local row buffers of
two subarrays in the same bank through the global row buffer.
"""

from __future__ import annotations

import enum


class Command(enum.Enum):
    """Commands the memory controller can issue to a DRAM bank or rank."""

    #: Open (activate) a row: latch its contents into the local row buffer.
    ACTIVATE = "ACT"
    #: Close the open row and prepare bitlines for the next activation.
    PRECHARGE = "PRE"
    #: Read one column (one cache block across the rank) from the open row.
    READ = "RD"
    #: Write one column into the open row.
    WRITE = "WR"
    #: All-bank refresh for one rank.
    REFRESH = "REF"
    #: FIGARO column relocation between two local row buffers via the GRB.
    RELOC = "RELOC"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Commands that transfer data over the channel data bus.
DATA_COMMANDS = frozenset({Command.READ, Command.WRITE})

#: Commands that operate purely inside the DRAM chip (no channel data).
INTERNAL_COMMANDS = frozenset({Command.ACTIVATE, Command.PRECHARGE,
                               Command.REFRESH, Command.RELOC})
