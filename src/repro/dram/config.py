"""DRAM organization configuration.

:class:`DRAMConfig` captures the organization side of the paper's Table 1:
channels, ranks, bank groups, banks, subarrays, rows, and row/block sizes,
plus the fast-subarray layout used by FIGCache-Fast, LISA-VILLA, and
LL-DRAM.

The defaults describe the paper's DDR4-1600 device.  Other standards are
built with :meth:`DRAMConfig.from_profile` from the named
:class:`~repro.dram.standards.DeviceProfile` entries in
:mod:`repro.dram.standards`, which carry per-standard organization,
timings, refresh mode, and fast-subarray derivation factors.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dram.timings import (FAST_TRAS_REDUCTION, FAST_TRCD_REDUCTION,
                                FAST_TRP_REDUCTION, DRAMTimings, TimingSet)

#: Refresh modes a configuration may select.  ``all-bank`` blocks the whole
#: rank for tRFC (DDR4/DDR5 REFab); ``per-bank`` refreshes one bank at a
#: time for tRFCpb, rotating round-robin (LPDDR4 REFpb, HBM2 REFSB).
REFRESH_MODES = ("all-bank", "per-bank")


@dataclass(frozen=True)
class DRAMConfig:
    """Organization and timing configuration for the simulated DRAM system.

    The defaults reproduce the paper's Table 1: DDR4, 800 MHz bus, one rank,
    4 bank groups with 4 banks each, 64 subarrays per bank, 512 rows per
    subarray, 8 kB rows, 64 B cache blocks, and 4 GB per channel.
    """

    #: Number of independent memory channels (1 for single-core runs,
    #: 4 for eight-core runs in the paper).
    channels: int = 1
    #: Ranks per channel.
    ranks_per_channel: int = 1
    #: Bank groups per rank.
    bankgroups_per_rank: int = 4
    #: Banks per bank group.
    banks_per_bankgroup: int = 4
    #: Regular (slow) subarrays per bank.
    subarrays_per_bank: int = 64
    #: Rows per regular subarray.
    rows_per_subarray: int = 512
    #: Row size in bytes (per rank; the paper uses 8 kB DDR4 rows).
    row_size_bytes: int = 8192
    #: Cache block (column across the rank) size in bytes.
    block_size_bytes: int = 64
    #: Number of extra fast subarrays appended to each bank (0 for plain
    #: DDR4 and FIGCache-Slow, 2 for FIGCache-Fast, 16 for LISA-VILLA).
    fast_subarrays_per_bank: int = 0
    #: Rows per fast subarray (the paper uses 32-row fast subarrays).
    rows_per_fast_subarray: int = 32
    #: When true, every subarray uses fast timings (the LL-DRAM idealized
    #: configuration).
    all_subarrays_fast: bool = False
    #: CPU clock frequency used as the simulator clock domain.
    cpu_clock_ghz: float = 3.2
    #: Regular (slow) subarray timing parameters.
    timings: DRAMTimings = field(default_factory=DRAMTimings)
    #: Name of the device standard this organization models (matches a
    #: profile in :mod:`repro.dram.standards` for catalog-built configs).
    standard: str = "DDR4-1600"
    #: Refresh mode: ``"all-bank"`` (REFab, blocks the rank for tRFC) or
    #: ``"per-bank"`` (REFpb/REFSB, blocks one bank for tRFCpb).
    refresh_mode: str = "all-bank"
    #: Per-standard fast-subarray timing reductions.  The defaults are the
    #: paper's Table 1 / LISA-VILLA SPICE figures; profiles may override
    #: them for standards with different bitline geometry.
    fast_trcd_reduction: float = FAST_TRCD_REDUCTION
    fast_trp_reduction: float = FAST_TRP_REDUCTION
    fast_tras_reduction: float = FAST_TRAS_REDUCTION

    def __post_init__(self) -> None:
        """Validate the organization eagerly, with actionable messages.

        Construction-time validation replaces the silent downstream
        breakage (wrong address decode widths, zero-row fast regions,
        negative cycle counts) that an inconsistent configuration used to
        cause only deep inside a simulation.
        """
        self.validate()

    # ------------------------------------------------------------------
    # Derived organization properties.
    # ------------------------------------------------------------------
    @property
    def banks_per_rank(self) -> int:
        """Total banks in one rank."""
        return self.bankgroups_per_rank * self.banks_per_bankgroup

    @property
    def banks_per_channel(self) -> int:
        """Total banks in one channel."""
        return self.banks_per_rank * self.ranks_per_channel

    @property
    def blocks_per_row(self) -> int:
        """Cache blocks (rank-level columns) per DRAM row."""
        return self.row_size_bytes // self.block_size_bytes

    @property
    def regular_rows_per_bank(self) -> int:
        """Rows held in the regular (slow) subarrays of one bank."""
        return self.subarrays_per_bank * self.rows_per_subarray

    @property
    def fast_rows_per_bank(self) -> int:
        """Rows held in the appended fast subarrays of one bank."""
        return self.fast_subarrays_per_bank * self.rows_per_fast_subarray

    @property
    def rows_per_bank(self) -> int:
        """All rows in one bank, regular plus fast."""
        return self.regular_rows_per_bank + self.fast_rows_per_bank

    @property
    def bank_capacity_bytes(self) -> int:
        """Addressable (regular) capacity of one bank in bytes."""
        return self.regular_rows_per_bank * self.row_size_bytes

    @property
    def channel_capacity_bytes(self) -> int:
        """Addressable capacity of one channel in bytes."""
        return self.bank_capacity_bytes * self.banks_per_channel

    @property
    def total_capacity_bytes(self) -> int:
        """Addressable capacity of the whole memory system in bytes."""
        return self.channel_capacity_bytes * self.channels

    # ------------------------------------------------------------------
    # Timing sets.
    # ------------------------------------------------------------------
    def slow_timing_set(self) -> TimingSet:
        """Cycle-domain timings for regular subarrays."""
        return TimingSet.from_timings(self.timings, self.cpu_clock_ghz)

    def fast_timings(self) -> DRAMTimings:
        """Nanosecond timings for fast (short-bitline) subarrays.

        Derived from the regular timings with this configuration's
        per-standard reduction factors (the defaults reproduce
        :func:`~repro.dram.timings.derive_fast_timings`).
        """
        return self.timings.scaled(
            trcd_factor=1.0 - self.fast_trcd_reduction,
            trp_factor=1.0 - self.fast_trp_reduction,
            tras_factor=1.0 - self.fast_tras_reduction)

    def fast_timing_set(self) -> TimingSet:
        """Cycle-domain timings for fast (short-bitline) subarrays."""
        return TimingSet.from_timings(self.fast_timings(),
                                      self.cpu_clock_ghz)

    # ------------------------------------------------------------------
    # Row / subarray helpers.
    # ------------------------------------------------------------------
    def subarray_of_row(self, row: int) -> int:
        """Return the subarray index that holds ``row`` within a bank.

        Regular rows occupy subarrays ``0 .. subarrays_per_bank - 1``; rows in
        appended fast subarrays are numbered after all regular rows and map to
        subarray indices ``subarrays_per_bank ..``.
        """
        if row < 0:
            raise ValueError(f"row index must be non-negative, got {row}")
        if row < self.regular_rows_per_bank:
            return row // self.rows_per_subarray
        fast_row = row - self.regular_rows_per_bank
        if fast_row >= self.fast_rows_per_bank:
            raise ValueError(
                f"row {row} out of range for bank with "
                f"{self.rows_per_bank} rows")
        return self.subarrays_per_bank + fast_row // self.rows_per_fast_subarray

    def is_fast_row(self, row: int) -> bool:
        """Return True when ``row`` resides in a fast (short-bitline) region."""
        if self.all_subarrays_fast:
            return True
        return row >= self.regular_rows_per_bank

    def fast_region_row(self, index: int) -> int:
        """Return the bank-level row id of the ``index``-th fast-region row."""
        if index < 0 or index >= self.fast_rows_per_bank:
            raise ValueError(
                f"fast region row index {index} out of range "
                f"(bank has {self.fast_rows_per_bank} fast rows)")
        return self.regular_rows_per_bank + index

    def validate(self) -> None:
        """Raise ``ValueError`` for configurations that cannot be simulated.

        Run automatically on construction (``__post_init__``); kept public
        because :class:`~repro.dram.device.DRAMDevice` and the address
        mapper also call it defensively on the configs they receive.
        """
        if self.channels <= 0:
            raise ValueError("at least one channel is required")
        if self.block_size_bytes <= 0:
            raise ValueError("block_size_bytes must be positive, got "
                             f"{self.block_size_bytes}")
        if self.row_size_bytes % self.block_size_bytes != 0:
            raise ValueError(
                f"row size ({self.row_size_bytes} B) must be a multiple of "
                f"the cache block size ({self.block_size_bytes} B)")
        if self.blocks_per_row & (self.blocks_per_row - 1):
            raise ValueError(
                f"blocks per row must be a power of two, got "
                f"{self.blocks_per_row} ({self.row_size_bytes} B rows of "
                f"{self.block_size_bytes} B blocks)")
        for name in ("ranks_per_channel", "bankgroups_per_rank",
                     "banks_per_bankgroup", "subarrays_per_bank",
                     "rows_per_subarray"):
            value = getattr(self, name)
            if value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")
        if self.fast_subarrays_per_bank < 0:
            raise ValueError("fast_subarrays_per_bank must be non-negative, "
                             f"got {self.fast_subarrays_per_bank}")
        if self.fast_subarrays_per_bank > 0 \
                and self.rows_per_fast_subarray <= 0:
            raise ValueError(
                f"{self.fast_subarrays_per_bank} fast subarray(s) per bank "
                f"need a positive rows_per_fast_subarray, got "
                f"{self.rows_per_fast_subarray}")
        if self.cpu_clock_ghz <= 0:
            raise ValueError(f"cpu_clock_ghz must be positive, got "
                             f"{self.cpu_clock_ghz}")
        if self.refresh_mode not in REFRESH_MODES:
            raise ValueError(
                f"unknown refresh mode {self.refresh_mode!r}; choose one of "
                f"{REFRESH_MODES}")
        if self.refresh_mode == "per-bank" \
                and not (self.timings.trfc_pb_ns or 0) > 0:
            raise ValueError(
                "per-bank refresh needs a positive trfc_pb_ns (tRFCpb) in "
                "the timing table; without it the tRFC fallback would "
                "block each bank for the full all-bank refresh time at "
                "the per-bank cadence")
        for name, value in vars(self.timings).items():
            if value is not None and value < 0:
                raise ValueError(
                    f"timing parameter {name} must be non-negative, got "
                    f"{value} (standard {self.standard!r})")
        for name in ("fast_trcd_reduction", "fast_trp_reduction",
                     "fast_tras_reduction"):
            value = getattr(self, name)
            if not 0.0 <= value < 1.0:
                raise ValueError(f"{name} must be in [0, 1), got {value}")

    # ------------------------------------------------------------------
    # Standard profiles.
    # ------------------------------------------------------------------
    @classmethod
    def from_profile(cls, profile, channels: int = 1,
                     **overrides) -> "DRAMConfig":
        """Build a configuration from a device-catalog profile.

        ``profile`` is a :class:`~repro.dram.standards.DeviceProfile` (or
        anything exposing the same fields).  Fast-subarray layout and other
        mechanism-side knobs are supplied via ``overrides``, exactly as
        keyword arguments to :class:`DRAMConfig`.
        """
        kwargs = dict(
            channels=channels,
            ranks_per_channel=profile.ranks_per_channel,
            bankgroups_per_rank=profile.bankgroups_per_rank,
            banks_per_bankgroup=profile.banks_per_bankgroup,
            subarrays_per_bank=profile.subarrays_per_bank,
            rows_per_subarray=profile.rows_per_subarray,
            row_size_bytes=profile.row_size_bytes,
            timings=profile.timings,
            standard=profile.name,
            refresh_mode=profile.refresh_mode,
            fast_trcd_reduction=profile.fast_trcd_reduction,
            fast_trp_reduction=profile.fast_trp_reduction,
            fast_tras_reduction=profile.fast_tras_reduction,
        )
        kwargs.update(overrides)
        return cls(**kwargs)
