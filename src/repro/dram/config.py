"""DRAM organization configuration.

:class:`DRAMConfig` captures the organization side of the paper's Table 1:
channels, ranks, bank groups, banks, subarrays, rows, and row/block sizes,
plus the fast-subarray layout used by FIGCache-Fast, LISA-VILLA, and
LL-DRAM.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dram.timings import DRAMTimings, TimingSet, derive_fast_timings


@dataclass(frozen=True)
class DRAMConfig:
    """Organization and timing configuration for the simulated DRAM system.

    The defaults reproduce the paper's Table 1: DDR4, 800 MHz bus, one rank,
    4 bank groups with 4 banks each, 64 subarrays per bank, 512 rows per
    subarray, 8 kB rows, 64 B cache blocks, and 4 GB per channel.
    """

    #: Number of independent memory channels (1 for single-core runs,
    #: 4 for eight-core runs in the paper).
    channels: int = 1
    #: Ranks per channel.
    ranks_per_channel: int = 1
    #: Bank groups per rank.
    bankgroups_per_rank: int = 4
    #: Banks per bank group.
    banks_per_bankgroup: int = 4
    #: Regular (slow) subarrays per bank.
    subarrays_per_bank: int = 64
    #: Rows per regular subarray.
    rows_per_subarray: int = 512
    #: Row size in bytes (per rank; the paper uses 8 kB DDR4 rows).
    row_size_bytes: int = 8192
    #: Cache block (column across the rank) size in bytes.
    block_size_bytes: int = 64
    #: Number of extra fast subarrays appended to each bank (0 for plain
    #: DDR4 and FIGCache-Slow, 2 for FIGCache-Fast, 16 for LISA-VILLA).
    fast_subarrays_per_bank: int = 0
    #: Rows per fast subarray (the paper uses 32-row fast subarrays).
    rows_per_fast_subarray: int = 32
    #: When true, every subarray uses fast timings (the LL-DRAM idealized
    #: configuration).
    all_subarrays_fast: bool = False
    #: CPU clock frequency used as the simulator clock domain.
    cpu_clock_ghz: float = 3.2
    #: Regular (slow) subarray timing parameters.
    timings: DRAMTimings = field(default_factory=DRAMTimings)

    # ------------------------------------------------------------------
    # Derived organization properties.
    # ------------------------------------------------------------------
    @property
    def banks_per_rank(self) -> int:
        """Total banks in one rank."""
        return self.bankgroups_per_rank * self.banks_per_bankgroup

    @property
    def banks_per_channel(self) -> int:
        """Total banks in one channel."""
        return self.banks_per_rank * self.ranks_per_channel

    @property
    def blocks_per_row(self) -> int:
        """Cache blocks (rank-level columns) per DRAM row."""
        return self.row_size_bytes // self.block_size_bytes

    @property
    def regular_rows_per_bank(self) -> int:
        """Rows held in the regular (slow) subarrays of one bank."""
        return self.subarrays_per_bank * self.rows_per_subarray

    @property
    def fast_rows_per_bank(self) -> int:
        """Rows held in the appended fast subarrays of one bank."""
        return self.fast_subarrays_per_bank * self.rows_per_fast_subarray

    @property
    def rows_per_bank(self) -> int:
        """All rows in one bank, regular plus fast."""
        return self.regular_rows_per_bank + self.fast_rows_per_bank

    @property
    def bank_capacity_bytes(self) -> int:
        """Addressable (regular) capacity of one bank in bytes."""
        return self.regular_rows_per_bank * self.row_size_bytes

    @property
    def channel_capacity_bytes(self) -> int:
        """Addressable capacity of one channel in bytes."""
        return self.bank_capacity_bytes * self.banks_per_channel

    @property
    def total_capacity_bytes(self) -> int:
        """Addressable capacity of the whole memory system in bytes."""
        return self.channel_capacity_bytes * self.channels

    # ------------------------------------------------------------------
    # Timing sets.
    # ------------------------------------------------------------------
    def slow_timing_set(self) -> TimingSet:
        """Cycle-domain timings for regular subarrays."""
        return TimingSet.from_timings(self.timings, self.cpu_clock_ghz)

    def fast_timing_set(self) -> TimingSet:
        """Cycle-domain timings for fast (short-bitline) subarrays."""
        return TimingSet.from_timings(derive_fast_timings(self.timings),
                                      self.cpu_clock_ghz)

    # ------------------------------------------------------------------
    # Row / subarray helpers.
    # ------------------------------------------------------------------
    def subarray_of_row(self, row: int) -> int:
        """Return the subarray index that holds ``row`` within a bank.

        Regular rows occupy subarrays ``0 .. subarrays_per_bank - 1``; rows in
        appended fast subarrays are numbered after all regular rows and map to
        subarray indices ``subarrays_per_bank ..``.
        """
        if row < 0:
            raise ValueError(f"row index must be non-negative, got {row}")
        if row < self.regular_rows_per_bank:
            return row // self.rows_per_subarray
        fast_row = row - self.regular_rows_per_bank
        if fast_row >= self.fast_rows_per_bank:
            raise ValueError(
                f"row {row} out of range for bank with "
                f"{self.rows_per_bank} rows")
        return self.subarrays_per_bank + fast_row // self.rows_per_fast_subarray

    def is_fast_row(self, row: int) -> bool:
        """Return True when ``row`` resides in a fast (short-bitline) region."""
        if self.all_subarrays_fast:
            return True
        return row >= self.regular_rows_per_bank

    def fast_region_row(self, index: int) -> int:
        """Return the bank-level row id of the ``index``-th fast-region row."""
        if index < 0 or index >= self.fast_rows_per_bank:
            raise ValueError(
                f"fast region row index {index} out of range "
                f"(bank has {self.fast_rows_per_bank} fast rows)")
        return self.regular_rows_per_bank + index

    def validate(self) -> None:
        """Raise ``ValueError`` for configurations that cannot be simulated."""
        if self.channels <= 0:
            raise ValueError("at least one channel is required")
        if self.row_size_bytes % self.block_size_bytes != 0:
            raise ValueError("row size must be a multiple of the block size")
        if self.blocks_per_row & (self.blocks_per_row - 1):
            raise ValueError("blocks per row must be a power of two")
        for name in ("ranks_per_channel", "bankgroups_per_rank",
                     "banks_per_bankgroup", "subarrays_per_bank",
                     "rows_per_subarray"):
            value = getattr(self, name)
            if value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")
