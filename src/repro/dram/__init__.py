"""DRAM device substrate.

This package models the DRAM organization and timing behaviour that the
FIGARO/FIGCache mechanisms are built on: channels, ranks, bank groups, banks,
subarrays, rows, and columns, together with the timing parameters that
govern ACTIVATE / READ / WRITE / PRECHARGE / REFRESH and the new RELOC
command introduced by FIGARO.  The defaults model the paper's DDR4-1600
Table 1 device; other standards (DDR4 speed grades, LPDDR4, HBM2, DDR5)
are built from the device catalog in :mod:`repro.dram.standards`.

The model is event-driven rather than cycle-stepped: each bank tracks the
earliest cycle at which the next command of each kind may be issued, and the
memory controller (``repro.controller``) asks banks to service requests at
specific points in time.  This keeps multi-core simulations fast enough to
run the paper's full experiment matrix in pure Python while preserving the
first-order latency effects (row hits, row misses, row conflicts, bank-level
parallelism, refresh, and relocation occupancy) that the paper's results
depend on.
"""

from repro.dram.address import AddressMapper, DecodedAddress
from repro.dram.bank import AccessResult, Bank, RelocationResult
from repro.dram.channel import Channel
from repro.dram.commands import Command
from repro.dram.config import DRAMConfig
from repro.dram.counters import CommandCounters
from repro.dram.device import DRAMDevice
from repro.dram.rank import Rank
from repro.dram.subarray import Subarray
from repro.dram.timings import DRAMTimings, TimingSet, derive_fast_timings

__all__ = [
    "AccessResult",
    "AddressMapper",
    "Bank",
    "Channel",
    "Command",
    "CommandCounters",
    "DRAMConfig",
    "DRAMDevice",
    "DRAMTimings",
    "DecodedAddress",
    "Rank",
    "RelocationResult",
    "Subarray",
    "TimingSet",
    "derive_fast_timings",
]
