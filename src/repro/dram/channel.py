"""Channel model: banks, ranks, the shared data bus, and refresh.

A :class:`Channel` owns the rank and bank timing state for one memory
channel and exposes the operations the memory controller needs: servicing a
column access, relocating a row segment, and applying refresh.
"""

from __future__ import annotations

from repro.dram.bank import AccessResult, Bank, RelocationResult
from repro.dram.config import DRAMConfig
from repro.dram.counters import CommandCounters
from repro.dram.rank import Rank


class Channel:
    """Timing state for one memory channel."""

    __slots__ = ('_config', '_id', 'counters', '_ranks', '_banks', '_rank_of',
                 '_bus_free_at', 'tracer')

    def __init__(self, config: DRAMConfig, channel_id: int,
                 refresh_enabled: bool = True,
                 track_row_activations: bool = False):
        self._config = config
        self._id = channel_id
        self.counters = CommandCounters(
            track_row_activations=track_row_activations)
        slow = config.slow_timing_set()
        self._ranks = [Rank(slow, refresh_enabled=refresh_enabled,
                            refresh_mode=config.refresh_mode,
                            num_banks=config.banks_per_rank,
                            num_bankgroups=config.bankgroups_per_rank)
                       for _ in range(config.ranks_per_channel)]
        self._banks: list[Bank] = []
        #: Owning rank per flat bank index (avoids a division per access).
        self._rank_of: list[Rank] = []
        for rank_id, rank in enumerate(self._ranks):
            for bankgroup in range(config.bankgroups_per_rank):
                for bank in range(config.banks_per_bankgroup):
                    key = (channel_id, rank_id, bankgroup, bank)
                    self._banks.append(Bank(config, rank, key, self.counters))
                    self._rank_of.append(rank)
        #: Earliest cycle the shared data bus is free.
        self._bus_free_at = 0
        #: Optional event tracer (see :mod:`repro.sim.tracing`); checked
        #: only on the cold refresh path.
        self.tracer = None

    # ------------------------------------------------------------------
    # Topology accessors.
    # ------------------------------------------------------------------
    @property
    def channel_id(self) -> int:
        """Index of this channel in the memory system."""
        return self._id

    @property
    def config(self) -> DRAMConfig:
        """The DRAM configuration for this channel."""
        return self._config

    @property
    def num_banks(self) -> int:
        """Total number of banks in this channel."""
        return len(self._banks)

    def bank(self, flat_bank: int) -> Bank:
        """Return the bank with the given flat index within the channel."""
        return self._banks[flat_bank]

    def banks(self) -> list[Bank]:
        """All banks of this channel."""
        return list(self._banks)

    def rank_of_bank(self, flat_bank: int) -> Rank:
        """Return the rank that owns the given flat bank index."""
        return self._rank_of[flat_bank]

    @property
    def bus_free_at(self) -> int:
        """Earliest cycle at which the channel data bus is free."""
        return self._bus_free_at

    # ------------------------------------------------------------------
    # Operations.
    # ------------------------------------------------------------------
    def access(self, now: int, flat_bank: int, row: int,
               is_write: bool) -> AccessResult:
        """Service one column access, honouring refresh and bus occupancy."""
        # Refresh is due a handful of times per million cycles; check the
        # rank's deadline inline so the common case skips the refresh walk.
        rank = self._rank_of[flat_bank]
        if rank.refresh_enabled and now >= rank.next_refresh_due:
            start = self._apply_refresh(now, flat_bank)
        else:
            start = now
        result = self._banks[flat_bank].access(start, row, is_write,
                                               self._bus_free_at)
        self._bus_free_at = result.completion_cycle
        return result

    def relocate(self, now: int, flat_bank: int, source_row: int,
                 destination_row: int, num_blocks: int,
                 keep_source_open: bool = False) -> RelocationResult:
        """Relocate a row segment inside one bank using FIGARO."""
        start = self._apply_refresh(now, flat_bank)
        bank = self._banks[flat_bank]
        return bank.relocate(start, source_row, destination_row, num_blocks,
                             keep_source_open=keep_source_open)

    def bulk_relocate(self, now: int, flat_bank: int, source_row: int,
                      destination_row: int, transfer_cycles: int,
                      keep_source_open: bool = False) -> RelocationResult:
        """Relocate an entire row with a bulk (LISA-style) mechanism."""
        start = self._apply_refresh(now, flat_bank)
        bank = self._banks[flat_bank]
        return bank.bulk_row_relocate(start, source_row, destination_row,
                                      transfer_cycles,
                                      keep_source_open=keep_source_open)

    def earliest_start(self, now: int, flat_bank: int, row: int) -> int:
        """Earliest cycle an access could start (used by the scheduler)."""
        return self._banks[flat_bank].earliest_start(now, row)

    # ------------------------------------------------------------------
    # Refresh handling.
    # ------------------------------------------------------------------
    def _apply_refresh(self, now: int, flat_bank: int) -> int:
        """Perform any due refreshes for the bank's rank; return the adjusted
        earliest start cycle for a new operation.

        All-bank mode (DDR4/DDR5 REFab): each pending refresh blocks every
        bank of the rank for tRFC, so the access always waits out the
        chain.  Per-bank mode (LPDDR4 REFpb, HBM2 REFSB): refresh commands
        to *different* banks overlap in time, so each pending refresh is
        stamped at its own due slot (it ran on schedule in the background)
        and blocks only its round-robin target bank for tRFCpb from that
        slot.  The access waits only when its own bank's refresh window
        extends past ``now``.  Serialising the catch-up from ``now``
        instead (tRFCpb back to back, the obvious port of the all-bank
        chain) is wrong and unstable: with per-bank cadences of
        tREFI/banks, a traffic burst's worth of pending refreshes would
        block every bank of the rank far into the future, stalling the
        traffic that drains the backlog and growing the next backlog —
        a runaway that sent HBM2 simulations past the cycle limit.
        """
        rank = self.rank_of_bank(flat_bank)
        start = now
        pending = rank.pending_refreshes(now)
        if pending == 0:
            return start
        banks_per_rank = self._config.banks_per_rank
        first_bank = (flat_bank // banks_per_rank) * banks_per_rank
        if rank.refresh_mode == "per-bank":
            # Runs ~banks-per-rank times more often than the all-bank
            # path but touches one bank per refresh, so index the bank
            # list directly instead of slicing out the whole rank.
            banks = self._banks
            local_bank = flat_bank - first_bank
            tracer = self.tracer
            for _ in range(pending):
                due = rank.next_refresh_due
                completion = rank.perform_refresh(due)
                self.counters.refreshes += 1
                target = rank.last_refreshed_bank
                if tracer is not None:
                    tracer.refresh(due, completion, self._id,
                                   first_bank + target, "per-bank")
                # Close the target's row unconditionally (the refresh
                # happened, even if its window already passed); the
                # force only costs time when ``completion`` is still in
                # the future.
                banks[first_bank + target] \
                    .force_precharge_for_refresh(completion)
                if target == local_bank and completion > start:
                    start = completion
            return start
        rank_banks = self._banks[first_bank:first_bank + banks_per_rank]
        tracer = self.tracer
        for _ in range(pending):
            completion = rank.perform_refresh(start)
            self.counters.refreshes += 1
            if tracer is not None:
                tracer.refresh(start, completion, self._id, first_bank,
                               "all-bank")
            for bank in rank_banks:
                bank.force_precharge_for_refresh(completion)
            start = completion
        return start
