"""Rank-level timing state: inter-bank activation limits and refresh.

A rank groups the chips that operate in lockstep.  Three rank-wide
constraints matter to the architecture model:

* tRRD / tFAW limit how quickly ACTIVATE commands may be issued across the
  banks of one rank; bank-grouped standards additionally pace same-group
  ACTIVATEs at tRRD_L and column commands at tCCD_S/tCCD_L (state lives
  here, enforcement is inlined in :class:`~repro.dram.bank.Bank`).
* Periodic refresh (tREFI / tRFC) blocks the whole rank and closes all
  open rows — or, for per-bank-refresh standards (LPDDR4 REFpb, HBM2
  REFSB), blocks a single rotating bank for tRFCpb at a tREFI/banks
  cadence.
"""

from __future__ import annotations

from collections import deque

from repro.dram.timings import TimingSet

_FAR_PAST = -(10 ** 9)


class Rank:
    """Timing state shared by all banks of one rank."""

    __slots__ = ('_timing', 'refresh_enabled', '_recent_activates',
                 '_last_activate', 'next_refresh_due', 'refresh_count',
                 'refresh_mode', '_refresh_interval', '_refresh_duration',
                 '_num_banks', 'refresh_bank_pointer', 'last_refreshed_bank',
                 '_last_col_cycle', '_bg_last_col', '_bg_last_act')

    def __init__(self, timing: TimingSet, refresh_enabled: bool = True,
                 refresh_mode: str = "all-bank", num_banks: int = 16,
                 num_bankgroups: int = 4):
        self._timing = timing
        self.refresh_enabled = refresh_enabled
        #: Issue cycles of the most recent ACTIVATEs (for tFAW).
        self._recent_activates: deque[int] = deque(maxlen=4)
        #: Cycle of the most recent ACTIVATE (for tRRD).
        self._last_activate = _FAR_PAST
        #: Refresh cadence: all-bank refresh blocks the rank for tRFC every
        #: tREFI; per-bank refresh blocks one bank for tRFCpb every
        #: tREFI / banks, visiting banks round-robin.
        self.refresh_mode = refresh_mode
        self._num_banks = num_banks
        if refresh_mode == "per-bank":
            self._refresh_interval = max(timing.trefi // num_banks, 1)
            self._refresh_duration = timing.trfc_pb
        else:
            self._refresh_interval = timing.trefi
            self._refresh_duration = timing.trfc
        #: Cycle at which the next refresh is due (read by the channel's
        #: per-access fast path; treat as read-only outside this class).
        self.next_refresh_due = self._refresh_interval
        #: Number of refresh commands performed (for energy accounting; a
        #: per-bank refresh counts as one command).
        self.refresh_count = 0
        #: Next bank to be refreshed and the bank the most recent
        #: :meth:`perform_refresh` targeted (per-bank mode only).
        self.refresh_bank_pointer = 0
        self.last_refreshed_bank = -1
        #: Bank-group pacing state (enforced inline by Bank for standards
        #: with tCCD_S/tCCD_L or tRRD_L splits): the most recent column
        #: command cycle rank-wide (tCCD_S) and per bank group (tCCD_L),
        #: and the most recent ACTIVATE cycle per bank group (tRRD_L).
        self._last_col_cycle = _FAR_PAST
        self._bg_last_col = [_FAR_PAST] * num_bankgroups
        self._bg_last_act = [_FAR_PAST] * num_bankgroups

    @property
    def timing(self) -> TimingSet:
        """Rank-level timing parameters (regular/slow timings)."""
        return self._timing

    # ------------------------------------------------------------------
    # Activation pacing (tRRD / tFAW).
    # ------------------------------------------------------------------
    def constrain_activate(self, cycle: int) -> int:
        """Return the earliest cycle an ACTIVATE may issue, given tRRD/tFAW."""
        earliest = max(cycle, self._last_activate + self._timing.trrd)
        if len(self._recent_activates) == 4:
            oldest = self._recent_activates[0]
            earliest = max(earliest, oldest + self._timing.tfaw)
        return earliest

    def note_activate(self, cycle: int) -> None:
        """Record that an ACTIVATE was issued at ``cycle``."""
        self._last_activate = cycle
        self._recent_activates.append(cycle)

    # ------------------------------------------------------------------
    # Refresh.
    # ------------------------------------------------------------------
    @property
    def refresh_interval(self) -> int:
        """Cycles between refresh commands (tREFI, or tREFI/banks per-bank)."""
        return self._refresh_interval

    @property
    def refresh_duration(self) -> int:
        """Cycles one refresh command blocks its target (tRFC or tRFCpb)."""
        return self._refresh_duration

    def refresh_due(self, now: int) -> bool:
        """Return True when a refresh should be performed at or before ``now``."""
        return self.refresh_enabled and now >= self.next_refresh_due

    def pending_refreshes(self, now: int) -> int:
        """Number of refresh intervals elapsed but not yet serviced."""
        if not self.refresh_enabled or now < self.next_refresh_due:
            return 0
        elapsed = now - self.next_refresh_due
        return 1 + elapsed // self._refresh_interval

    def perform_refresh(self, now: int) -> int:
        """Perform one refresh command starting at ``now``.

        Returns the cycle at which the refreshed target becomes available
        again.  In all-bank mode the caller must also call
        :meth:`Bank.force_precharge_for_refresh` on every bank of the
        rank; in per-bank mode only on ``last_refreshed_bank``, which this
        method sets (and advances round-robin) before returning.
        """
        if not self.refresh_enabled:
            return now
        completion = now + self._refresh_duration
        self.next_refresh_due += self._refresh_interval
        self.refresh_count += 1
        if self.refresh_mode == "per-bank":
            self.last_refreshed_bank = self.refresh_bank_pointer
            self.refresh_bank_pointer = \
                (self.refresh_bank_pointer + 1) % self._num_banks
        return completion
