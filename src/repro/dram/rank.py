"""Rank-level timing state: inter-bank activation limits and refresh.

A rank groups the chips that operate in lockstep.  Two rank-wide constraints
matter to the architecture model:

* tRRD / tFAW limit how quickly ACTIVATE commands may be issued across the
  banks of one rank.
* Periodic refresh (tREFI / tRFC) blocks the whole rank and closes all open
  rows.
"""

from __future__ import annotations

from collections import deque

from repro.dram.timings import TimingSet


class Rank:
    """Timing state shared by all banks of one rank."""

    __slots__ = ('_timing', 'refresh_enabled', '_recent_activates', '_last_activate', 'next_refresh_due', 'refresh_count')

    def __init__(self, timing: TimingSet, refresh_enabled: bool = True):
        self._timing = timing
        self.refresh_enabled = refresh_enabled
        #: Issue cycles of the most recent ACTIVATEs (for tFAW).
        self._recent_activates: deque[int] = deque(maxlen=4)
        #: Cycle of the most recent ACTIVATE (for tRRD).
        self._last_activate = -(10 ** 9)
        #: Cycle at which the next refresh is due (read by the channel's
        #: per-access fast path; treat as read-only outside this class).
        self.next_refresh_due = timing.trefi
        #: Number of refreshes performed (for energy accounting).
        self.refresh_count = 0

    @property
    def timing(self) -> TimingSet:
        """Rank-level timing parameters (regular/slow timings)."""
        return self._timing

    # ------------------------------------------------------------------
    # Activation pacing (tRRD / tFAW).
    # ------------------------------------------------------------------
    def constrain_activate(self, cycle: int) -> int:
        """Return the earliest cycle an ACTIVATE may issue, given tRRD/tFAW."""
        earliest = max(cycle, self._last_activate + self._timing.trrd)
        if len(self._recent_activates) == 4:
            oldest = self._recent_activates[0]
            earliest = max(earliest, oldest + self._timing.tfaw)
        return earliest

    def note_activate(self, cycle: int) -> None:
        """Record that an ACTIVATE was issued at ``cycle``."""
        self._last_activate = cycle
        self._recent_activates.append(cycle)

    # ------------------------------------------------------------------
    # Refresh.
    # ------------------------------------------------------------------
    def refresh_due(self, now: int) -> bool:
        """Return True when a refresh should be performed at or before ``now``."""
        return self.refresh_enabled and now >= self.next_refresh_due

    def pending_refreshes(self, now: int) -> int:
        """Number of refresh intervals elapsed but not yet serviced."""
        if not self.refresh_enabled or now < self.next_refresh_due:
            return 0
        elapsed = now - self.next_refresh_due
        return 1 + elapsed // self._timing.trefi

    def perform_refresh(self, now: int) -> int:
        """Perform one all-bank refresh starting at ``now``.

        Returns the cycle at which the rank becomes available again.  The
        caller must also call :meth:`Bank.force_precharge_for_refresh` on
        every bank of the rank, because refresh closes all open rows.
        """
        if not self.refresh_enabled:
            return now
        completion = now + self._timing.trfc
        self.next_refresh_due += self._timing.trefi
        self.refresh_count += 1
        return completion
