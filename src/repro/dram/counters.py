"""Command and event counters used for statistics and energy accounting."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dram.commands import Command


@dataclass
class CommandCounters:
    """Counts of DRAM commands and access outcomes.

    One instance is kept per channel; the energy model and the experiment
    metrics consume these counts after a simulation finishes.
    """

    activates: int = 0
    precharges: int = 0
    reads: int = 0
    writes: int = 0
    refreshes: int = 0
    relocs: int = 0
    #: ACTIVATE/READ/WRITE issued to fast (short-bitline) regions.
    fast_activates: int = 0
    fast_reads: int = 0
    fast_writes: int = 0
    #: Access outcome classification for row-buffer statistics.
    row_hits: int = 0
    row_misses: int = 0
    row_conflicts: int = 0
    #: Per-row activation counts (only populated when tracking is enabled,
    #: used by the RowHammer-style activation-concentration experiment).
    row_activation_counts: dict = field(default_factory=dict)
    track_row_activations: bool = False

    def record_command(self, command: Command, fast: bool = False) -> None:
        """Record a single command issue."""
        if command is Command.ACTIVATE:
            self.activates += 1
            if fast:
                self.fast_activates += 1
        elif command is Command.PRECHARGE:
            self.precharges += 1
        elif command is Command.READ:
            self.reads += 1
            if fast:
                self.fast_reads += 1
        elif command is Command.WRITE:
            self.writes += 1
            if fast:
                self.fast_writes += 1
        elif command is Command.REFRESH:
            self.refreshes += 1
        elif command is Command.RELOC:
            self.relocs += 1
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown command {command!r}")

    def record_row_activation(self, bank_key: tuple, row: int) -> None:
        """Record which row was activated (for activation-locality studies)."""
        if not self.track_row_activations:
            return
        key = (bank_key, row)
        self.row_activation_counts[key] = \
            self.row_activation_counts.get(key, 0) + 1

    def record_outcome(self, outcome: str) -> None:
        """Record a row-buffer outcome: ``hit``, ``miss``, or ``conflict``."""
        if outcome == "hit":
            self.row_hits += 1
        elif outcome == "miss":
            self.row_misses += 1
        elif outcome == "conflict":
            self.row_conflicts += 1
        else:
            raise ValueError(f"unknown access outcome {outcome!r}")

    @property
    def column_accesses(self) -> int:
        """Total READ plus WRITE commands."""
        return self.reads + self.writes

    @property
    def row_buffer_hit_rate(self) -> float:
        """Fraction of accesses that hit an already-open row."""
        total = self.row_hits + self.row_misses + self.row_conflicts
        if total == 0:
            return 0.0
        return self.row_hits / total

    def to_dict(self) -> dict:
        """JSON-serialisable form (used by the persistent result cache).

        ``row_activation_counts`` keys are ``(bank_key, row)`` tuples, which
        JSON cannot represent directly; they are flattened to
        ``[[*bank_key], row, count]`` triples and rebuilt by
        :meth:`from_dict`.
        """
        return {
            "activates": self.activates,
            "precharges": self.precharges,
            "reads": self.reads,
            "writes": self.writes,
            "refreshes": self.refreshes,
            "relocs": self.relocs,
            "fast_activates": self.fast_activates,
            "fast_reads": self.fast_reads,
            "fast_writes": self.fast_writes,
            "row_hits": self.row_hits,
            "row_misses": self.row_misses,
            "row_conflicts": self.row_conflicts,
            "track_row_activations": self.track_row_activations,
            "row_activation_counts": [
                [list(bank_key), row, count]
                for (bank_key, row), count
                in sorted(self.row_activation_counts.items())],
        }

    def telemetry_counters(self) -> dict[str, int]:
        """Cumulative scalar counters for the telemetry epoch sampler.

        Part of the uniform stats-producer protocol (see
        :mod:`repro.sim.telemetry`): every producer exposes its cumulative
        integers under stable names so samplers and probes can diff them
        across epochs without knowing the producer's class.
        """
        return {
            "activates": self.activates,
            "precharges": self.precharges,
            "reads": self.reads,
            "writes": self.writes,
            "refreshes": self.refreshes,
            "relocs": self.relocs,
            "row_hits": self.row_hits,
            "row_misses": self.row_misses,
            "row_conflicts": self.row_conflicts,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CommandCounters":
        """Rebuild counters from :meth:`to_dict` output.

        Counter fields newer than the payload fall back to zero, so cached
        JSON written by an older code version still loads.
        """
        counts = {(tuple(bank_key), row): count
                  for bank_key, row, count
                  in data.get("row_activation_counts", [])}
        return cls(
            activates=data.get("activates", 0),
            precharges=data.get("precharges", 0),
            reads=data.get("reads", 0),
            writes=data.get("writes", 0),
            refreshes=data.get("refreshes", 0),
            relocs=data.get("relocs", 0),
            fast_activates=data.get("fast_activates", 0),
            fast_reads=data.get("fast_reads", 0),
            fast_writes=data.get("fast_writes", 0),
            row_hits=data.get("row_hits", 0),
            row_misses=data.get("row_misses", 0),
            row_conflicts=data.get("row_conflicts", 0),
            track_row_activations=data.get("track_row_activations", False),
            row_activation_counts=counts,
        )

    def merge(self, other: "CommandCounters") -> None:
        """Accumulate another counter set into this one."""
        self.activates += other.activates
        self.precharges += other.precharges
        self.reads += other.reads
        self.writes += other.writes
        self.refreshes += other.refreshes
        self.relocs += other.relocs
        self.fast_activates += other.fast_activates
        self.fast_reads += other.fast_reads
        self.fast_writes += other.fast_writes
        self.row_hits += other.row_hits
        self.row_misses += other.row_misses
        self.row_conflicts += other.row_conflicts
        for key, count in other.row_activation_counts.items():
            self.row_activation_counts[key] = \
                self.row_activation_counts.get(key, 0) + count
