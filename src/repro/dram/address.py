"""Physical address mapping.

The paper (Table 1) interleaves addresses as ``{row, rank, bankgroup, bank,
channel, column}`` with the column in the least-significant position.  This
module implements that mapping in both directions: decoding a byte address
into DRAM coordinates and re-encoding coordinates into a byte address.

Addresses are decoded at cache-block granularity: the low ``log2(block
size)`` bits are the byte offset within a block and are ignored by the
memory system.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.config import DRAMConfig


def _log2_exact(value: int, name: str) -> int:
    """Return log2 of ``value``, requiring it to be a power of two."""
    if value <= 0 or value & (value - 1):
        raise ValueError(f"{name} must be a positive power of two, got {value}")
    return value.bit_length() - 1


@dataclass(frozen=True, slots=True)
class DecodedAddress:
    """A physical address decoded into DRAM coordinates.

    The flat bank index within a channel depends on the configuration, so it
    is computed by :meth:`AddressMapper.flat_bank` rather than stored here.
    Instances are immutable; the memory controller interns one per distinct
    address, shared by every request that touches the block.
    """

    channel: int
    rank: int
    bankgroup: int
    bank: int
    row: int
    column_block: int


class AddressMapper:
    """Maps byte addresses to DRAM coordinates and back.

    Bit layout (least-significant first)::

        | block offset | column (block) | channel | bank | bankgroup | rank | row |
    """

    def __init__(self, config: DRAMConfig):
        config.validate()
        self._config = config
        self._offset_bits = _log2_exact(config.block_size_bytes,
                                        "block_size_bytes")
        self._column_bits = _log2_exact(config.blocks_per_row,
                                        "blocks_per_row")
        self._channel_bits = _log2_exact(config.channels, "channels") \
            if config.channels > 1 else 0
        self._bank_bits = _log2_exact(config.banks_per_bankgroup,
                                      "banks_per_bankgroup")
        self._bankgroup_bits = _log2_exact(config.bankgroups_per_rank,
                                           "bankgroups_per_rank")
        self._rank_bits = _log2_exact(config.ranks_per_channel,
                                      "ranks_per_channel") \
            if config.ranks_per_channel > 1 else 0
        self._rows = config.regular_rows_per_bank
        self._banks_per_rank = config.banks_per_rank
        self._banks_per_bankgroup = config.banks_per_bankgroup

    @property
    def config(self) -> DRAMConfig:
        """The DRAM configuration this mapper was built for."""
        return self._config

    def decode(self, address: int) -> DecodedAddress:
        """Decode a byte address into DRAM coordinates.

        The memory controller memoizes decode results per address (see
        ``MemoryController._route_cache``), so each distinct address is
        decoded once per simulation on the hot path.
        """
        if address < 0:
            raise ValueError(f"address must be non-negative, got {address}")
        bits = address >> self._offset_bits
        column = bits & ((1 << self._column_bits) - 1)
        bits >>= self._column_bits
        channel = bits & ((1 << self._channel_bits) - 1) \
            if self._channel_bits else 0
        bits >>= self._channel_bits
        bank = bits & ((1 << self._bank_bits) - 1)
        bits >>= self._bank_bits
        bankgroup = bits & ((1 << self._bankgroup_bits) - 1)
        bits >>= self._bankgroup_bits
        rank = bits & ((1 << self._rank_bits) - 1) if self._rank_bits else 0
        bits >>= self._rank_bits
        row = bits % self._rows
        return DecodedAddress(channel=channel, rank=rank, bankgroup=bankgroup,
                              bank=bank, row=row, column_block=column)

    def encode(self, decoded: DecodedAddress) -> int:
        """Re-encode DRAM coordinates into a byte address (block aligned)."""
        self._check(decoded)
        bits = decoded.row
        bits = (bits << self._rank_bits) | decoded.rank
        bits = (bits << self._bankgroup_bits) | decoded.bankgroup
        bits = (bits << self._bank_bits) | decoded.bank
        bits = (bits << self._channel_bits) | decoded.channel
        bits = (bits << self._column_bits) | decoded.column_block
        return bits << self._offset_bits

    def flat_bank(self, decoded: DecodedAddress) -> int:
        """Return the bank index within a channel, folding in the bank group."""
        return (decoded.rank * self._banks_per_rank
                + decoded.bankgroup * self._banks_per_bankgroup
                + decoded.bank)

    def segment_of(self, decoded: DecodedAddress, blocks_per_segment: int) -> int:
        """Return the row-segment index of a decoded address within its row."""
        if blocks_per_segment <= 0:
            raise ValueError("blocks_per_segment must be positive")
        return decoded.column_block // blocks_per_segment

    def _check(self, decoded: DecodedAddress) -> None:
        config = self._config
        if not 0 <= decoded.channel < config.channels:
            raise ValueError(f"channel {decoded.channel} out of range")
        if not 0 <= decoded.rank < config.ranks_per_channel:
            raise ValueError(f"rank {decoded.rank} out of range")
        if not 0 <= decoded.bankgroup < config.bankgroups_per_rank:
            raise ValueError(f"bankgroup {decoded.bankgroup} out of range")
        if not 0 <= decoded.bank < config.banks_per_bankgroup:
            raise ValueError(f"bank {decoded.bank} out of range")
        if not 0 <= decoded.row < config.regular_rows_per_bank:
            raise ValueError(f"row {decoded.row} out of range")
        if not 0 <= decoded.column_block < config.blocks_per_row:
            raise ValueError(f"column {decoded.column_block} out of range")
