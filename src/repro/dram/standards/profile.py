"""Device profiles: one frozen description per DRAM standard.

A :class:`DeviceProfile` bundles everything that distinguishes one
commodity DRAM standard from another in this model: the per-rank
organization (bank groups, banks, subarrays, rows, row size), the full
nanosecond timing table, the refresh mode (all-bank vs. per-bank), the
per-standard energy parameters, and the fast-subarray timing derivation
factors.  Profiles are registered by name in
:mod:`repro.dram.standards.catalog` and turned into simulation-ready
:class:`~repro.dram.config.DRAMConfig` objects with
:meth:`DeviceProfile.dram_config` /
:meth:`~repro.dram.config.DRAMConfig.from_profile`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dram.config import DRAMConfig, REFRESH_MODES
from repro.dram.timings import (FAST_TRAS_REDUCTION, FAST_TRCD_REDUCTION,
                                FAST_TRP_REDUCTION, DRAMTimings)
from repro.energy.dram_power import DRAMEnergyParams


def _require_power_of_two(value: int, name: str, profile: str) -> None:
    if value <= 0 or value & (value - 1):
        raise ValueError(f"profile {profile!r}: {name} must be a positive "
                         f"power of two (the address mapper interleaves by "
                         f"bit slicing), got {value}")


@dataclass(frozen=True)
class DeviceProfile:
    """One named, frozen DRAM device description."""

    #: Registry name, e.g. ``"DDR4-3200"``.
    name: str
    #: Standard family: ``DDR4``, ``LPDDR4``, ``HBM2``, or ``DDR5``.
    family: str
    #: Data rate in mega-transfers per second (documentation/reporting).
    data_rate_mts: int
    #: Bank groups per rank (1 for standards without bank groups).
    bankgroups_per_rank: int
    #: Banks per bank group.
    banks_per_bankgroup: int
    #: Regular (slow) subarrays per bank.
    subarrays_per_bank: int
    #: Rows per regular subarray.
    rows_per_subarray: int
    #: Row (page) size in bytes across the rank.
    row_size_bytes: int
    #: Full nanosecond timing table.
    timings: DRAMTimings
    #: Per-standard DRAM energy parameters.
    energy: DRAMEnergyParams = field(default_factory=DRAMEnergyParams)
    #: Ranks per channel.
    ranks_per_channel: int = 1
    #: ``"all-bank"`` or ``"per-bank"``.
    refresh_mode: str = "all-bank"
    #: Fast-subarray timing reductions (fraction removed from tRCD/tRP/tRAS).
    fast_trcd_reduction: float = FAST_TRCD_REDUCTION
    fast_trp_reduction: float = FAST_TRP_REDUCTION
    fast_tras_reduction: float = FAST_TRAS_REDUCTION
    #: One-line human description shown by ``python -m repro list``.
    description: str = ""

    def __post_init__(self) -> None:
        self.validate()

    @property
    def banks_per_rank(self) -> int:
        """Total banks per rank."""
        return self.bankgroups_per_rank * self.banks_per_bankgroup

    # ------------------------------------------------------------------
    # Validation.
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise ``ValueError`` for internally inconsistent profiles.

        Profile-level rules (power-of-two organization, bank-group
        legality, tFAW/tRAS/tREFI consistency) are checked here; the
        config-level rules (divisibility, refresh-mode/tRFCpb pairing,
        non-negative timings, reduction-factor ranges) are delegated to
        the :class:`~repro.dram.config.DRAMConfig` built at the end, so
        there is exactly one implementation of each check.
        """
        if not self.name:
            raise ValueError("profile name must be non-empty")
        name = self.name
        _require_power_of_two(self.bankgroups_per_rank,
                              "bankgroups_per_rank", name)
        _require_power_of_two(self.banks_per_bankgroup,
                              "banks_per_bankgroup", name)
        _require_power_of_two(self.ranks_per_channel,
                              "ranks_per_channel", name)
        if self.data_rate_mts <= 0:
            raise ValueError(f"profile {name!r}: data_rate_mts must be "
                             f"positive, got {self.data_rate_mts}")
        blocks_per_row = self.row_size_bytes // 64 if self.row_size_bytes > 0 \
            else 0
        if self.row_size_bytes % 64 or blocks_per_row <= 0 \
                or blocks_per_row & (blocks_per_row - 1):
            raise ValueError(f"profile {name!r}: row size must be a "
                             f"power-of-two multiple of the 64 B cache "
                             f"block, got {self.row_size_bytes}")
        if self.refresh_mode not in REFRESH_MODES:
            raise ValueError(f"profile {name!r}: unknown refresh mode "
                             f"{self.refresh_mode!r}; choose one of "
                             f"{REFRESH_MODES}")
        self._validate_timings()
        self.energy.validate()
        # Delegate the remaining organization/timing checks to the config
        # this profile builds (DRAMConfig.__post_init__ validates).
        self.dram_config()

    def _validate_timings(self) -> None:
        name = self.name
        t = self.timings
        # Bank-group legality: the short/long splits only make sense when
        # the standard actually has more than one bank group, and the
        # "short" variant must not exceed the "long" one.
        if t.tccd_s_ns is not None:
            if self.bankgroups_per_rank == 1:
                raise ValueError(
                    f"profile {name!r}: tCCD_S is set but the organization "
                    f"has a single bank group; drop tccd_s_ns or add bank "
                    f"groups")
            if t.tccd_s_ns > t.tccd_ns:
                raise ValueError(
                    f"profile {name!r}: tCCD_S ({t.tccd_s_ns} ns) must not "
                    f"exceed tCCD_L ({t.tccd_ns} ns)")
        if t.trrd_l_ns is not None:
            if self.bankgroups_per_rank == 1:
                raise ValueError(
                    f"profile {name!r}: tRRD_L is set but the organization "
                    f"has a single bank group; drop trrd_l_ns or add bank "
                    f"groups")
            if t.trrd_l_ns < t.trrd_ns:
                raise ValueError(
                    f"profile {name!r}: tRRD_L ({t.trrd_l_ns} ns) must not "
                    f"be below tRRD_S ({t.trrd_ns} ns)")
        # tFAW/tRRD consistency: four ACTIVATEs spaced tRRD apart must be
        # able to satisfy the four-activate window, i.e. tFAW must not be
        # trivially below the pacing tRRD already enforces.
        if t.tfaw_ns < t.trrd_ns:
            raise ValueError(
                f"profile {name!r}: tFAW ({t.tfaw_ns} ns) below tRRD "
                f"({t.trrd_ns} ns) is inconsistent: the four-activate "
                f"window would never bind")
        if t.tras_ns < t.trcd_ns:
            raise ValueError(
                f"profile {name!r}: tRAS ({t.tras_ns} ns) below tRCD "
                f"({t.trcd_ns} ns) would close rows before the first "
                f"column command")
        if t.trefi_ns <= t.trfc_ns:
            raise ValueError(
                f"profile {name!r}: tREFI ({t.trefi_ns} ns) must exceed "
                f"tRFC ({t.trfc_ns} ns) or the device only refreshes")
        if t.trfc_pb_ns is not None and t.trfc_pb_ns > t.trfc_ns:
            raise ValueError(
                f"profile {name!r}: tRFCpb ({t.trfc_pb_ns} ns) must "
                f"not exceed the all-bank tRFC ({t.trfc_ns} ns)")

    # ------------------------------------------------------------------
    # Conversion.
    # ------------------------------------------------------------------
    def dram_config(self, channels: int = 1, **overrides) -> DRAMConfig:
        """Build a :class:`~repro.dram.config.DRAMConfig` for this profile."""
        return DRAMConfig.from_profile(self, channels=channels, **overrides)

    def summary_row(self) -> list:
        """Row for the CLI profile listing."""
        return [self.name, self.family, self.data_rate_mts,
                f"{self.bankgroups_per_rank}x{self.banks_per_bankgroup}",
                self.row_size_bytes, self.refresh_mode, self.description]
