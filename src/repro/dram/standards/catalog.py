"""The built-in device catalog: named profiles for each supported standard.

Timing values are representative JEDEC-grade numbers (a common speed bin
per standard), not any single vendor's datasheet; see ``docs/standards.md``
for the derivation and the caveats.  The DDR4-1600 entry reproduces the
paper's Table 1 device exactly — it is the catalog's reference point, and
building a system from it is bit-identical to the historical defaults.

All profiles share the paper's FIGARO assumptions: 1 ns RELOC latency and
the Table 1 fast-subarray reductions (tRCD -45.5 %, tRP -38.2 %,
tRAS -62.9 %), since the underlying short-bitline circuit technique is
DRAM-type-agnostic (the paper's Section 3 argument this catalog exists to
test).
"""

from __future__ import annotations

from repro.dram.standards.profile import DeviceProfile
from repro.dram.timings import DRAMTimings
from repro.energy.standard_power import energy_params_for

#: The built-in registry, keyed by profile name, in presentation order.
PROFILES: dict[str, DeviceProfile] = {}


def register_profile(profile: DeviceProfile,
                     replace: bool = False) -> DeviceProfile:
    """Add a profile to the registry (validated on construction)."""
    if profile.name in PROFILES and not replace:
        raise ValueError(f"profile {profile.name!r} is already registered; "
                         f"pass replace=True to override it")
    PROFILES[profile.name] = profile
    return profile


def get_profile(name: str) -> DeviceProfile:
    """Look up a registered profile by name."""
    try:
        return PROFILES[name]
    except KeyError:
        raise ValueError(f"unknown DRAM standard {name!r}; available: "
                         f"{', '.join(PROFILES)}") from None


def list_profiles() -> list[DeviceProfile]:
    """All registered profiles, in registration (presentation) order."""
    return list(PROFILES.values())


# ----------------------------------------------------------------------
# DDR4 speed grades: same 1.2 V array, faster bus; the analog row timings
# stay nearly constant in nanoseconds while burst/column spacing shrinks
# and the tCCD_S/tCCD_L + tRRD_S/tRRD_L bank-group splits appear.
# ----------------------------------------------------------------------
DDR4_1600 = register_profile(DeviceProfile(
    name="DDR4-1600", family="DDR4", data_rate_mts=1600,
    bankgroups_per_rank=4, banks_per_bankgroup=4,
    subarrays_per_bank=64, rows_per_subarray=512, row_size_bytes=8192,
    timings=DRAMTimings(),
    energy=energy_params_for("DDR4-1600"),
    description="paper Table 1 baseline (11-11-11, 8 kB rows)"))

DDR4_2400 = register_profile(DeviceProfile(
    name="DDR4-2400", family="DDR4", data_rate_mts=2400,
    bankgroups_per_rank=4, banks_per_bankgroup=4,
    subarrays_per_bank=64, rows_per_subarray=512, row_size_bytes=8192,
    timings=DRAMTimings(
        trcd_ns=14.16, trp_ns=14.16, tras_ns=32.0, tcl_ns=14.16,
        tcwl_ns=12.5, tbl_ns=3.33, tccd_ns=5.0, tccd_s_ns=3.33,
        twr_ns=15.0, twtr_ns=7.5, trtp_ns=7.5,
        trrd_ns=3.33, trrd_l_ns=4.9, tfaw_ns=21.0,
        trfc_ns=350.0, trefi_ns=7800.0),
    energy=energy_params_for("DDR4-2400"),
    description="mid DDR4 bin (17-17-17, 1200 MHz bus)"))

DDR4_3200 = register_profile(DeviceProfile(
    name="DDR4-3200", family="DDR4", data_rate_mts=3200,
    bankgroups_per_rank=4, banks_per_bankgroup=4,
    subarrays_per_bank=64, rows_per_subarray=512, row_size_bytes=8192,
    timings=DRAMTimings(
        trcd_ns=13.75, trp_ns=13.75, tras_ns=32.0, tcl_ns=13.75,
        tcwl_ns=10.0, tbl_ns=2.5, tccd_ns=5.0, tccd_s_ns=2.5,
        twr_ns=15.0, twtr_ns=7.5, trtp_ns=7.5,
        trrd_ns=2.5, trrd_l_ns=4.9, tfaw_ns=21.0,
        trfc_ns=350.0, trefi_ns=7800.0),
    energy=energy_params_for("DDR4-3200"),
    description="top DDR4 bin (22-22-22, 1600 MHz bus)"))

# ----------------------------------------------------------------------
# LPDDR4: 8 flat banks (no bank groups), 2 kB rows, slower analog core,
# BL16 bursts, and per-bank refresh (REFpb).
# ----------------------------------------------------------------------
LPDDR4_3200 = register_profile(DeviceProfile(
    name="LPDDR4-3200", family="LPDDR4", data_rate_mts=3200,
    bankgroups_per_rank=1, banks_per_bankgroup=8,
    subarrays_per_bank=32, rows_per_subarray=512, row_size_bytes=2048,
    timings=DRAMTimings(
        trcd_ns=18.0, trp_ns=18.0, tras_ns=42.0, tcl_ns=17.5,
        tcwl_ns=8.75, tbl_ns=5.0, tccd_ns=5.0,
        twr_ns=18.0, twtr_ns=10.0, trtp_ns=7.5,
        trrd_ns=10.0, tfaw_ns=40.0,
        trfc_ns=280.0, trfc_pb_ns=140.0, trefi_ns=3904.0),
    energy=energy_params_for("LPDDR4-3200"),
    refresh_mode="per-bank",
    description="mobile part, 2 kB rows, BL16, per-bank refresh"))

# ----------------------------------------------------------------------
# HBM2: in-package stacked DRAM — short 2 kB rows, small bank groups,
# narrow tCCD_S, aggressive tFAW, and single-bank refresh (REFSB).
# ----------------------------------------------------------------------
HBM2 = register_profile(DeviceProfile(
    name="HBM2", family="HBM2", data_rate_mts=2000,
    bankgroups_per_rank=4, banks_per_bankgroup=4,
    subarrays_per_bank=32, rows_per_subarray=512, row_size_bytes=2048,
    timings=DRAMTimings(
        trcd_ns=14.0, trp_ns=14.0, tras_ns=33.0, tcl_ns=14.0,
        tcwl_ns=7.0, tbl_ns=2.0, tccd_ns=4.0, tccd_s_ns=2.0,
        twr_ns=16.0, twtr_ns=7.5, trtp_ns=7.5,
        trrd_ns=4.0, trrd_l_ns=6.0, tfaw_ns=16.0,
        trfc_ns=260.0, trfc_pb_ns=160.0, trefi_ns=3900.0),
    energy=energy_params_for("HBM2"),
    refresh_mode="per-bank",
    description="stacked in-package channel, 2 kB rows, REFSB refresh"))

# ----------------------------------------------------------------------
# DDR5: twice the bank groups, shorter per-chip pages, BL16, and much
# tighter activate pacing; all-bank refresh at a halved tREFI.
# ----------------------------------------------------------------------
DDR5_4800 = register_profile(DeviceProfile(
    name="DDR5-4800", family="DDR5", data_rate_mts=4800,
    bankgroups_per_rank=8, banks_per_bankgroup=4,
    subarrays_per_bank=64, rows_per_subarray=512, row_size_bytes=8192,
    timings=DRAMTimings(
        trcd_ns=16.0, trp_ns=16.0, tras_ns=32.0, tcl_ns=16.67,
        tcwl_ns=15.0, tbl_ns=3.33, tccd_ns=5.0, tccd_s_ns=3.33,
        twr_ns=30.0, twtr_ns=10.0, trtp_ns=7.5,
        trrd_ns=3.33, trrd_l_ns=5.0, tfaw_ns=13.33,
        trfc_ns=295.0, trefi_ns=3900.0),
    energy=energy_params_for("DDR5-4800"),
    description="entry DDR5 bin (40-39-39, 32 banks in 8 groups)"))
