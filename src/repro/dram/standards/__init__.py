"""Multi-standard DRAM device catalog.

The paper argues FIGCache is DRAM-type-agnostic (its Section 3 claim);
this package makes that testable by describing each commodity standard as
a named, frozen, validated :class:`DeviceProfile` — organization + full
timing table + refresh mode + energy parameters — and threading the
profiles through :class:`~repro.dram.config.DRAMConfig`,
:func:`~repro.sim.config.make_system_config` (``standard=...``), and the
``dram-types`` experiment.

Built-in profiles: DDR4-1600 (the Table 1 baseline, bit-identical to the
historical defaults), DDR4-2400, DDR4-3200, LPDDR4-3200, HBM2, and
DDR5-4800.  ``register_profile`` adds project-specific standards at
runtime; ``docs/standards.md`` documents the numbers and how to extend the
catalog.
"""

from repro.dram.standards.catalog import (PROFILES, get_profile,
                                          list_profiles, register_profile)
from repro.dram.standards.profile import DeviceProfile

#: The built-in standard names, in presentation order (a snapshot taken
#: at import; consumers that must see runtime-registered standards too
#: should iterate the live ``PROFILES`` registry instead).
STANDARD_NAMES = tuple(PROFILES)

__all__ = [
    "DeviceProfile",
    "PROFILES",
    "STANDARD_NAMES",
    "get_profile",
    "list_profiles",
    "register_profile",
]
