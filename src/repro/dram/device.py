"""Top-level DRAM device: all channels plus the address mapper."""

from __future__ import annotations

from repro.dram.address import AddressMapper, DecodedAddress
from repro.dram.channel import Channel
from repro.dram.config import DRAMConfig


class DRAMDevice:
    """The whole simulated DRAM system (every channel)."""

    def __init__(self, config: DRAMConfig, refresh_enabled: bool = True,
                 track_row_activations: bool = False):
        config.validate()
        self._config = config
        self.mapper = AddressMapper(config)
        self.channels = [
            Channel(config, channel_id, refresh_enabled=refresh_enabled,
                    track_row_activations=track_row_activations)
            for channel_id in range(config.channels)
        ]

    @property
    def config(self) -> DRAMConfig:
        """The DRAM configuration used to build this device."""
        return self._config

    def channel(self, channel_id: int) -> Channel:
        """Return one channel by index."""
        return self.channels[channel_id]

    def decode(self, address: int) -> DecodedAddress:
        """Decode a byte address into DRAM coordinates."""
        return self.mapper.decode(address)

    def flat_bank(self, decoded: DecodedAddress) -> int:
        """Flat bank index of a decoded address within its channel."""
        return self.mapper.flat_bank(decoded)

    def total_counters(self):
        """Merge command counters across channels into a fresh instance."""
        from repro.dram.counters import CommandCounters

        total = CommandCounters()
        for channel in self.channels:
            total.merge(channel.counters)
        return total
