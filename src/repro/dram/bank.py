"""Bank state machine and timing model.

A :class:`Bank` tracks the DRAM-side state that determines how long a memory
request takes to service: which row (if any) is open in the bank's local row
buffers, when the last ACTIVATE happened (tRAS), when the last column access
happened (tCCD / tWR / tRTP / tWTR), and when the next ACTIVATE or PRECHARGE
may be issued (tRP, tRC).

The model is event-driven: :meth:`Bank.access` is called by the memory
controller with the cycle at which it wants to start the access, and returns
when the data transfer completes and which row-buffer outcome occurred.  The
FIGARO relocation path is modelled by :meth:`Bank.relocate`, which occupies
the bank for the ACT / RELOC xN / ACT / PRE sequence described in the paper's
Section 4.2.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.commands import Command
from repro.dram.config import DRAMConfig
from repro.dram.counters import CommandCounters
from repro.dram.rank import Rank
from repro.dram.timings import TimingSet


@dataclass(slots=True)
class AccessResult:
    """Outcome of one column access serviced by a bank.

    Plain slotted records (not frozen): one is created per serviced
    request, and frozen-dataclass construction costs an ``object.__setattr__``
    per field on the hottest allocation site in the model.  Treat as
    read-only.
    """

    #: Cycle at which the first command of the access was issued.
    issue_cycle: int
    #: Cycle at which the data burst completes on the channel bus.
    completion_cycle: int
    #: Cycle at which the bank can accept the next request.
    bank_ready_cycle: int
    #: ``hit``, ``miss``, or ``conflict``.
    outcome: str
    #: True when the access was served from a fast (short-bitline) region.
    served_fast: bool


@dataclass(slots=True)
class RelocationResult:
    """Outcome of relocating one row segment with FIGARO RELOC commands."""

    #: Cycle at which the relocation sequence started.
    start_cycle: int
    #: Cycle at which the bank becomes available again.
    completion_cycle: int
    #: Number of RELOC commands issued (one per cache block).
    reloc_commands: int
    #: Number of ACTIVATE commands issued by the sequence.
    activates: int
    #: Number of PRECHARGE commands issued by the sequence.
    precharges: int


class Bank:
    """Timing state for one DRAM bank (shared across the chips of a rank)."""

    __slots__ = ('_config', '_rank', '_key', '_counters', '_slow', '_fast',
                 '_all_fast', '_regular_rows', '_trrd', '_tfaw',
                 '_bg_index', '_col_pacing', '_tccd_s_rank', '_tccd_l_rank',
                 '_act_bg_pacing', '_trrd_l',
                 '_read_hot', '_write_hot', 'open_row',
                 '_last_act', '_next_act_allowed', '_next_col_allowed',
                 '_next_pre_allowed', '_busy_until')

    def __init__(self, config: DRAMConfig, rank: Rank, bank_key: tuple,
                 counters: CommandCounters):
        self._config = config
        self._rank = rank
        self._key = bank_key
        self._counters = counters
        self._slow = config.slow_timing_set()
        self._fast = config.fast_timing_set()
        #: Fast-region predicate hoisted out of the per-access path: a row
        #: is fast when every subarray is fast or when it lies at or above
        #: the regular-row boundary (fast subarrays are appended after all
        #: regular rows).
        self._all_fast = config.all_subarrays_fast
        self._regular_rows = config.regular_rows_per_bank
        #: Rank activation-pacing constants, hoisted for the inline tRRD /
        #: tFAW check in :meth:`_activate` (rank timings are the slow set).
        self._trrd = rank.timing.trrd
        self._tfaw = rank.timing.tfaw
        #: Bank-group pacing (bank-grouped standards only).  Column
        #: commands across the rank must be tCCD_L apart within a bank
        #: group and tCCD_S apart across groups; same-group ACTIVATEs are
        #: paced at tRRD_L.  Both checks are gated on flags computed once
        #: here, so standards without the splits (the DDR4-1600 Table 1
        #: device, LPDDR4's flat 8-bank rank) skip them entirely and keep
        #: the historical hot path — bus occupancy alone paces their
        #: bursts, which preserves the pinned golden results.
        self._bg_index = bank_key[2]
        self._tccd_l_rank = rank.timing.tccd
        self._tccd_s_rank = rank.timing.tccd_s
        self._col_pacing = rank.timing.tccd_s < rank.timing.tccd
        self._trrd_l = rank.timing.trrd_l
        self._act_bg_pacing = rank.timing.trrd_l > rank.timing.trrd
        #: Column-access timing constants per (timing set, direction), as
        #: tuples so :meth:`access` does one load plus an unpack instead of
        #: five attribute loads through the TimingSet.
        self._read_hot = tuple(
            (t.tcl, t.tbl, t.tccd, t.trtp) for t in (self._slow, self._fast))
        self._write_hot = tuple(
            (t.tcwl, t.tbl, t.tccd, t.twtr, t.twr)
            for t in (self._slow, self._fast))
        #: Row currently latched in a local row buffer, or None if precharged.
        self.open_row: int | None = None
        #: Cycle of the most recent ACTIVATE (governs tRAS).
        self._last_act = -(10 ** 9)
        #: Earliest cycle at which the next ACTIVATE may be issued (tRP/tRC).
        self._next_act_allowed = 0
        #: Earliest cycle at which the next column command may be issued.
        self._next_col_allowed = 0
        #: Earliest cycle at which a PRECHARGE may be issued (tRAS/tWR/tRTP).
        self._next_pre_allowed = 0
        #: Cycle until which the bank is occupied by a multi-command sequence
        #: such as a FIGARO relocation.
        self._busy_until = 0

    # ------------------------------------------------------------------
    # Introspection helpers.
    # ------------------------------------------------------------------
    @property
    def key(self) -> tuple:
        """Identifier tuple (rank, bankgroup, bank) used in statistics."""
        return self._key

    @property
    def busy_until(self) -> int:
        """Cycle until which the bank is blocked by an ongoing sequence."""
        return self._busy_until

    @property
    def ready_for_next(self) -> int:
        """Earliest cycle at which another column command could be issued.

        Used by the memory controller to decide when to wake up and schedule
        the next request for this bank.  Row hits to the open row can be
        pipelined (tCCD apart), so this is typically earlier than the
        completion of the previous data burst.
        """
        return max(self._busy_until, self._next_col_allowed)

    def timing_for_row(self, row: int) -> TimingSet:
        """Return the timing set that applies to ``row``."""
        if self._all_fast or row >= self._regular_rows:
            return self._fast
        return self._slow

    def is_row_hit(self, row: int) -> bool:
        """Would an access to ``row`` hit the open row right now?"""
        return self.open_row == row

    def is_open(self) -> bool:
        """Return True when any row is currently open in this bank."""
        return self.open_row is not None

    def earliest_start(self, now: int, row: int) -> int:
        """Earliest cycle an access to ``row`` could begin (for scheduling)."""
        start = max(now, self._busy_until)
        if self.open_row == row:
            return max(start, self._next_col_allowed)
        if self.open_row is None:
            return max(start, self._next_act_allowed)
        return max(start, self._next_pre_allowed)

    # ------------------------------------------------------------------
    # Demand accesses.
    # ------------------------------------------------------------------
    def access(self, now: int, row: int, is_write: bool,
               bus_free_at: int) -> AccessResult:
        """Service one column access to ``row`` starting no earlier than ``now``.

        ``bus_free_at`` is the earliest cycle the channel data bus is free;
        the returned :class:`AccessResult` reflects both bank and bus
        constraints.  The caller (channel controller) is responsible for
        advancing its own bus-free pointer to ``completion_cycle``.
        """
        served_fast = self._all_fast or row >= self._regular_rows
        timing = self._fast if served_fast else self._slow
        counters = self._counters
        busy_until = self._busy_until
        start = now if now > busy_until else busy_until
        open_row = self.open_row

        if open_row == row:
            outcome = "hit"
            counters.row_hits += 1
            next_col = self._next_col_allowed
            col_cycle = start if start > next_col else next_col
        elif open_row is None:
            outcome = "miss"
            counters.row_misses += 1
            col_cycle = self._activate(start, row, timing)
        else:
            outcome = "conflict"
            counters.row_conflicts += 1
            next_pre = self._next_pre_allowed
            pre_cycle = start if start > next_pre else next_pre
            act_cycle = pre_cycle + self.timing_for_row(open_row).trp
            counters.precharges += 1
            col_cycle = self._activate(act_cycle, row, timing,
                                       already_constrained=True)

        if self._col_pacing:
            # Rank-wide column pacing for bank-grouped standards: tCCD_L
            # after the most recent column command to the *same* bank
            # group (tracked per group — an intervening other-group
            # command must not reset the window), tCCD_S after any column
            # command rank-wide (subsumed by tCCD_L within the group).
            rank = self._rank
            earliest_col = rank._bg_last_col[self._bg_index] \
                + self._tccd_l_rank
            cross = rank._last_col_cycle + self._tccd_s_rank
            if cross > earliest_col:
                earliest_col = cross
            if earliest_col > col_cycle:
                col_cycle = earliest_col

        # Inline the burst timing, _update_after_column, and the command
        # counters, reading the timing constants from the precomputed
        # per-direction tuples.
        if is_write:
            data_latency, tbl, tccd, twtr, twr = self._write_hot[served_fast]
            burst_start = col_cycle + data_latency
            if burst_start < bus_free_at:
                # The data burst must also wait for the shared channel bus.
                burst_start = bus_free_at
                col_cycle = burst_start - data_latency
            completion = burst_start + tbl
            counters.writes += 1
            if served_fast:
                counters.fast_writes += 1
            # Write recovery: the written data must reach the cells before
            # a PRECHARGE; reads after writes pay the turnaround.
            next_col = col_cycle + tccd
            turnaround = completion + twtr
            if turnaround > next_col:
                next_col = turnaround
            next_pre = completion + twr
        else:
            data_latency, tbl, tccd, trtp = self._read_hot[served_fast]
            burst_start = col_cycle + data_latency
            if burst_start < bus_free_at:
                burst_start = bus_free_at
                col_cycle = burst_start - data_latency
            completion = burst_start + tbl
            counters.reads += 1
            if served_fast:
                counters.fast_reads += 1
            next_col = col_cycle + tccd
            next_pre = col_cycle + trtp
        if next_col > self._next_col_allowed:
            self._next_col_allowed = next_col
        if next_pre > self._next_pre_allowed:
            self._next_pre_allowed = next_pre
        if col_cycle > self._busy_until:
            self._busy_until = col_cycle
        if self._col_pacing:
            # Record the final column-command slot (after any bus wait
            # shifted it) for the next bank's pacing check.
            rank = self._rank
            rank._last_col_cycle = col_cycle
            rank._bg_last_col[self._bg_index] = col_cycle

        return AccessResult(start, completion, self._next_col_allowed,
                            outcome, served_fast)

    def precharge(self, now: int) -> int:
        """Explicitly close the open row; returns the cycle the bank is idle."""
        if self.open_row is None:
            return now
        timing = self.timing_for_row(self.open_row)
        pre_cycle = max(now, self._next_pre_allowed, self._busy_until)
        self._counters.record_command(Command.PRECHARGE)
        self.open_row = None
        self._next_act_allowed = max(self._next_act_allowed,
                                     pre_cycle + timing.trp)
        return pre_cycle + timing.trp

    # ------------------------------------------------------------------
    # FIGARO relocation.
    # ------------------------------------------------------------------
    def relocate(self, now: int, source_row: int, destination_row: int,
                 num_blocks: int,
                 keep_source_open: bool = False) -> RelocationResult:
        """Relocate ``num_blocks`` columns from ``source_row`` to
        ``destination_row`` using FIGARO RELOC commands.

        Command sequence (paper Section 4.2): ACTIVATE source (skipped when
        the source row is already open, which is the common case on a
        FIGCache miss because the demand access just opened it), one RELOC
        per cache block, ACTIVATE destination (overwrites only the columns
        driven by the GRB), and a PRECHARGE.

        ``keep_source_open`` models the subarray-level parallelism FIGARO
        relies on: the destination row lives in a *different* subarray, so
        activating and precharging it does not disturb the source subarray's
        local row buffer.  When the source row was already open on entry and
        ``keep_source_open`` is set, it remains open afterwards, so queued
        row hits to the source row are not turned into row misses by the
        relocation.  Otherwise the bank ends the sequence precharged.
        """
        if num_blocks <= 0:
            raise ValueError("relocation needs at least one block")
        if source_row == destination_row:
            raise ValueError("source and destination rows must differ")
        # Inline timing_for_row: this runs once per FIGCache insertion.
        all_fast = self._all_fast
        regular_rows = self._regular_rows
        src_timing = self._fast if all_fast or source_row >= regular_rows \
            else self._slow
        dst_timing = self._fast \
            if all_fast or destination_row >= regular_rows else self._slow

        counters = self._counters
        start = max(now, self._busy_until)
        source_was_open = self.open_row == source_row
        activates = 0
        cycle = start
        if self.open_row != source_row:
            # Close whatever is open, then activate the source row.
            if self.open_row is not None:
                pre_cycle = max(cycle, self._next_pre_allowed)
                cycle = pre_cycle + self.timing_for_row(self.open_row).trp
                counters.precharges += 1
            cycle = max(cycle, self._next_act_allowed)
            counters.activates += 1
            if all_fast or source_row >= regular_rows:
                counters.fast_activates += 1
            if counters.track_row_activations:
                counters.record_row_activation(self._key, source_row)
            activates += 1
            # The source row must be fully restored (tRAS) before its local
            # row buffer can drive the global row buffer for RELOC.
            cycle = cycle + src_timing.tras
        else:
            # The source row is already open; RELOC may begin as soon as the
            # restore completed and any outstanding column traffic drained.
            cycle = max(cycle, self._last_act + src_timing.tras,
                        self._next_col_allowed)

        # One RELOC per cache block in the segment.
        cycle += num_blocks * src_timing.treloc
        counters.relocs += num_blocks

        # ACTIVATE the destination row to latch the relocated columns into
        # the destination cells, then PRECHARGE the bank.  The destination
        # bitlines are already driven to stable values by the GRB, so the
        # paper accounts tRCD (not a full tRAS) for this activation, giving
        # the 63.5 ns end-to-end figure of Section 4.2.
        counters.activates += 1
        if all_fast or destination_row >= regular_rows:
            counters.fast_activates += 1
        if counters.track_row_activations:
            counters.record_row_activation(self._key, destination_row)
        activates += 1
        cycle += dst_timing.trcd
        counters.precharges += 1
        cycle += dst_timing.trp

        if keep_source_open and source_was_open:
            # Only the destination subarray was activated and precharged; the
            # source row stays latched in its own local row buffer.
            self.open_row = source_row
            self._busy_until = cycle
            self._next_act_allowed = max(self._next_act_allowed, cycle)
            self._next_col_allowed = max(self._next_col_allowed, cycle)
            self._next_pre_allowed = max(self._next_pre_allowed, cycle)
        else:
            # The bank ends the sequence precharged.
            self.open_row = None
            self._busy_until = cycle
            self._next_act_allowed = cycle
            self._next_col_allowed = cycle
            self._next_pre_allowed = cycle

        return RelocationResult(start_cycle=start, completion_cycle=cycle,
                                reloc_commands=num_blocks,
                                activates=activates, precharges=1)

    def bulk_row_relocate(self, now: int, source_row: int,
                          destination_row: int, transfer_cycles: int,
                          keep_source_open: bool = False) -> RelocationResult:
        """Relocate an entire row with a bulk (non-FIGARO) mechanism.

        Used to model LISA-VILLA style row-granularity relocation, whose
        transfer time is distance dependent and is supplied by the caller as
        ``transfer_cycles``.  The surrounding command sequence matches
        :meth:`relocate`: open the source row (if needed), transfer, restore
        into the destination row, and precharge.  ``keep_source_open``
        behaves as in :meth:`relocate`.
        """
        if transfer_cycles < 0:
            raise ValueError("transfer_cycles must be non-negative")
        if source_row == destination_row:
            raise ValueError("source and destination rows must differ")
        src_timing = self.timing_for_row(source_row)
        dst_timing = self.timing_for_row(destination_row)

        start = max(now, self._busy_until)
        source_was_open = self.open_row == source_row
        activates = 0
        precharges = 0
        cycle = start
        if self.open_row != source_row:
            if self.open_row is not None:
                pre_cycle = max(cycle, self._next_pre_allowed)
                cycle = pre_cycle + self.timing_for_row(self.open_row).trp
                self._counters.record_command(Command.PRECHARGE)
                precharges += 1
            cycle = max(cycle, self._next_act_allowed)
            self._counters.record_command(
                Command.ACTIVATE, fast=self._config.is_fast_row(source_row))
            self._counters.record_row_activation(self._key, source_row)
            activates += 1
            cycle = cycle + src_timing.tras
        else:
            cycle = max(cycle, self._last_act + src_timing.tras,
                        self._next_col_allowed)

        cycle += transfer_cycles

        # Same destination-activation accounting as :meth:`relocate`, so that
        # LISA-style bulk relocation and FIGARO differ only in the transfer
        # term (FIGARO: one RELOC per block; LISA: per-hop row-buffer moves).
        self._counters.record_command(
            Command.ACTIVATE, fast=self._config.is_fast_row(destination_row))
        self._counters.record_row_activation(self._key, destination_row)
        activates += 1
        cycle += dst_timing.trcd
        self._counters.record_command(Command.PRECHARGE)
        precharges += 1
        cycle += dst_timing.trp

        if keep_source_open and source_was_open:
            self.open_row = source_row
            self._busy_until = cycle
            self._next_act_allowed = max(self._next_act_allowed, cycle)
            self._next_col_allowed = max(self._next_col_allowed, cycle)
            self._next_pre_allowed = max(self._next_pre_allowed, cycle)
        else:
            self.open_row = None
            self._busy_until = cycle
            self._next_act_allowed = cycle
            self._next_col_allowed = cycle
            self._next_pre_allowed = cycle

        return RelocationResult(start_cycle=start, completion_cycle=cycle,
                                reloc_commands=0, activates=activates,
                                precharges=precharges)

    # ------------------------------------------------------------------
    # Refresh support.
    # ------------------------------------------------------------------
    def force_precharge_for_refresh(self, cycle: int) -> None:
        """Close the bank and block it until ``cycle`` (used by refresh)."""
        self.open_row = None
        self._busy_until = max(self._busy_until, cycle)
        self._next_act_allowed = max(self._next_act_allowed, cycle)
        self._next_col_allowed = max(self._next_col_allowed, cycle)
        self._next_pre_allowed = max(self._next_pre_allowed, cycle)

    # ------------------------------------------------------------------
    # Internal helpers.
    # ------------------------------------------------------------------
    def _activate(self, earliest: int, row: int, timing: TimingSet,
                  already_constrained: bool = False) -> int:
        """Issue an ACTIVATE for ``row``; returns the earliest column cycle."""
        if not already_constrained and earliest < self._next_act_allowed:
            earliest = self._next_act_allowed
        # Inline rank activation pacing (Rank.constrain_activate +
        # note_activate): tRRD from the previous ACTIVATE, tFAW over the
        # last four.
        rank = self._rank
        act_cycle = earliest
        rrd_earliest = rank._last_activate + self._trrd
        if rrd_earliest > act_cycle:
            act_cycle = rrd_earliest
        recent = rank._recent_activates
        if len(recent) == 4:
            faw_earliest = recent[0] + self._tfaw
            if faw_earliest > act_cycle:
                act_cycle = faw_earliest
        if self._act_bg_pacing:
            # Same-bank-group ACTIVATE pacing (tRRD_L) for bank-grouped
            # standards; the rank-wide check above already applied tRRD_S.
            bg_last = rank._bg_last_act
            bg_earliest = bg_last[self._bg_index] + self._trrd_l
            if bg_earliest > act_cycle:
                act_cycle = bg_earliest
            bg_last[self._bg_index] = act_cycle
        rank._last_activate = act_cycle
        recent.append(act_cycle)
        counters = self._counters
        counters.activates += 1
        if self._all_fast or row >= self._regular_rows:
            counters.fast_activates += 1
        if counters.track_row_activations:
            counters.record_row_activation(self._key, row)
        self.open_row = row
        self._last_act = act_cycle
        # tRAS governs the earliest PRECHARGE after this ACTIVATE.
        self._next_pre_allowed = act_cycle + timing.tras
        return act_cycle + timing.trcd

