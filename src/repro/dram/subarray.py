"""Subarray descriptor.

A subarray is a two-dimensional tile of DRAM cells with its own local row
buffer (LRB).  The timing behaviour that matters to the architecture model is
whether the subarray is *fast* (short bitlines, used as in-DRAM cache space)
or *slow* (regular bitline length), and which rows it holds.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Subarray:
    """Static description of one subarray within a bank."""

    #: Index of the subarray within its bank.
    index: int
    #: First bank-level row id held by this subarray.
    first_row: int
    #: Number of rows in this subarray.
    num_rows: int
    #: True for short-bitline (fast) subarrays used as in-DRAM cache space.
    is_fast: bool = False

    @property
    def last_row(self) -> int:
        """Last bank-level row id held by this subarray (inclusive)."""
        return self.first_row + self.num_rows - 1

    def contains_row(self, row: int) -> bool:
        """Return True when ``row`` falls inside this subarray."""
        return self.first_row <= row <= self.last_row

    def row_offset(self, row: int) -> int:
        """Return the row's offset within this subarray."""
        if not self.contains_row(row):
            raise ValueError(
                f"row {row} not in subarray {self.index} "
                f"[{self.first_row}, {self.last_row}]")
        return row - self.first_row


def build_subarrays(num_slow: int, rows_per_slow: int,
                    num_fast: int, rows_per_fast: int) -> list[Subarray]:
    """Build the subarray list for one bank.

    Regular (slow) subarrays come first and hold the addressable rows; fast
    subarrays are appended after them and hold the in-DRAM cache rows used by
    FIGCache-Fast and LISA-VILLA.
    """
    subarrays = []
    row = 0
    for index in range(num_slow):
        subarrays.append(Subarray(index=index, first_row=row,
                                  num_rows=rows_per_slow, is_fast=False))
        row += rows_per_slow
    for offset in range(num_fast):
        subarrays.append(Subarray(index=num_slow + offset, first_row=row,
                                  num_rows=rows_per_fast, is_fast=True))
        row += rows_per_fast
    return subarrays
