"""DRAM timing parameters and conversion to simulator clock cycles.

All architectural timing parameters are expressed in nanoseconds (the way
DRAM datasheets and the paper express them) in :class:`DRAMTimings`, and are
converted once into integer CPU-clock cycles in :class:`TimingSet`, which is
what the bank and controller models consume.

The same parameter set describes every supported standard (DDR4 speed
grades, LPDDR4, HBM2, DDR5 — see :mod:`repro.dram.standards`): standards
that distinguish same- vs. cross-bank-group column timing set
``tccd_s_ns`` below ``tccd_ns`` (which then acts as tCCD_L), standards with
same-bank-group ACTIVATE pacing set ``trrd_l_ns`` above ``trrd_ns``, and
standards with per-bank refresh supply ``trfc_pb_ns``.  All three are
optional; when unset they collapse onto the flat DDR4-1600 behaviour the
paper's Table 1 models.

The fast-subarray timings used by FIGCache-Fast, LISA-VILLA, and LL-DRAM are
derived by :func:`derive_fast_timings` using the reductions reported by the
paper (Table 1): tRCD -45.5 %, tRP -38.2 %, tRAS -62.9 %.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

# Reductions for fast (short-bitline) subarrays, from the paper's Table 1,
# which in turn takes them from the LISA-VILLA SPICE model.
FAST_TRCD_REDUCTION = 0.455
FAST_TRP_REDUCTION = 0.382
FAST_TRAS_REDUCTION = 0.629


@dataclass(frozen=True)
class DRAMTimings:
    """DDR4 timing parameters in nanoseconds.

    The defaults correspond to a DDR4-1600 device (800 MHz bus clock), the
    configuration used in the paper's Table 1.
    """

    #: ACTIVATE to column command (row access strobe to CAS) delay.
    trcd_ns: float = 13.75
    #: PRECHARGE to ACTIVATE delay (row precharge time).
    trp_ns: float = 13.75
    #: ACTIVATE to PRECHARGE delay (row active/restore time).
    tras_ns: float = 35.0
    #: Column command to first data (CAS latency) for reads.
    tcl_ns: float = 13.75
    #: Column command to first data for writes (CAS write latency).
    tcwl_ns: float = 12.5
    #: Data burst duration (8-beat burst on a DDR bus).
    tbl_ns: float = 5.0
    #: Column command to column command (same bank group) delay.
    tccd_ns: float = 5.0
    #: Write recovery time (last write data to PRECHARGE).
    twr_ns: float = 15.0
    #: Write-to-read turnaround delay.
    twtr_ns: float = 7.5
    #: Read to PRECHARGE delay.
    trtp_ns: float = 7.5
    #: ACTIVATE to ACTIVATE delay across banks of the same rank.
    trrd_ns: float = 6.25
    #: Four-activate window.
    tfaw_ns: float = 30.0
    #: Refresh cycle time (all-bank refresh duration).
    trfc_ns: float = 350.0
    #: Average refresh interval.
    trefi_ns: float = 7800.0
    #: Latency of one FIGARO RELOC command (paper Section 4.2: 0.57 ns from
    #: SPICE plus a 43 % guardband, rounded up to 1 ns).
    treloc_ns: float = 1.0
    #: Cross-bank-group column-to-column delay (tCCD_S).  ``None`` means the
    #: standard does not distinguish bank groups for column timing and
    #: ``tccd_ns`` applies uniformly (the DDR4-1600 Table 1 behaviour); when
    #: set, ``tccd_ns`` is interpreted as tCCD_L (same bank group).
    tccd_s_ns: float | None = None
    #: Same-bank-group ACTIVATE-to-ACTIVATE delay (tRRD_L).  ``None`` means
    #: ``trrd_ns`` applies to every bank pair of the rank.
    trrd_l_ns: float | None = None
    #: Per-bank refresh cycle time (tRFCpb), for standards whose refresh
    #: mode is ``"per-bank"`` (LPDDR4, HBM2).  ``None`` for all-bank-only
    #: standards.
    trfc_pb_ns: float | None = None

    def scaled(self, trcd_factor: float, trp_factor: float,
               tras_factor: float) -> "DRAMTimings":
        """Return a copy with row timings scaled by the given factors."""
        return replace(
            self,
            trcd_ns=self.trcd_ns * trcd_factor,
            trp_ns=self.trp_ns * trp_factor,
            tras_ns=self.tras_ns * tras_factor,
        )


def derive_fast_timings(slow: DRAMTimings) -> DRAMTimings:
    """Derive fast-subarray timings from regular (slow) subarray timings."""
    return slow.scaled(
        trcd_factor=1.0 - FAST_TRCD_REDUCTION,
        trp_factor=1.0 - FAST_TRP_REDUCTION,
        tras_factor=1.0 - FAST_TRAS_REDUCTION,
    )


def _to_cycles(ns: float, clock_ghz: float) -> int:
    """Convert a duration in nanoseconds to integer clock cycles (ceiling).

    Rounding up mirrors how a real memory controller must respect timing
    parameters that do not fall on a clock edge.
    """
    cycles = ns * clock_ghz
    whole = int(cycles)
    if cycles - whole > 1e-9:
        whole += 1
    return max(whole, 0)


@dataclass(frozen=True)
class TimingSet:
    """DRAM timing parameters converted to integer simulator clock cycles.

    The simulator runs on the CPU clock (3.2 GHz in the paper's Table 1), so
    one cycle is 0.3125 ns by default.
    """

    clock_ghz: float
    trcd: int
    trp: int
    tras: int
    tcl: int
    tcwl: int
    tbl: int
    tccd: int
    twr: int
    twtr: int
    trtp: int
    trrd: int
    tfaw: int
    trfc: int
    trefi: int
    treloc: int
    #: Cross-bank-group column spacing; equals ``tccd`` for standards
    #: without a tCCD_S/tCCD_L split (the ``from_timings`` fallback).
    tccd_s: int
    #: Same-bank-group ACTIVATE spacing; equals ``trrd`` for standards
    #: without a tRRD_S/tRRD_L split.
    trrd_l: int
    #: Per-bank refresh cycle time; equals ``trfc`` when the standard only
    #: supports all-bank refresh.
    trfc_pb: int

    @classmethod
    def from_timings(cls, timings: DRAMTimings,
                     clock_ghz: float = 3.2) -> "TimingSet":
        """Build a cycle-domain timing set from nanosecond parameters.

        The optional multi-standard parameters fall back onto their flat
        counterparts: ``tccd_s`` to ``tccd``, ``trrd_l`` to ``trrd``, and
        ``trfc_pb`` to ``trfc``.
        """
        tccd = _to_cycles(timings.tccd_ns, clock_ghz)
        trrd = _to_cycles(timings.trrd_ns, clock_ghz)
        trfc = _to_cycles(timings.trfc_ns, clock_ghz)
        return cls(
            clock_ghz=clock_ghz,
            trcd=_to_cycles(timings.trcd_ns, clock_ghz),
            trp=_to_cycles(timings.trp_ns, clock_ghz),
            tras=_to_cycles(timings.tras_ns, clock_ghz),
            tcl=_to_cycles(timings.tcl_ns, clock_ghz),
            tcwl=_to_cycles(timings.tcwl_ns, clock_ghz),
            tbl=_to_cycles(timings.tbl_ns, clock_ghz),
            tccd=tccd,
            twr=_to_cycles(timings.twr_ns, clock_ghz),
            twtr=_to_cycles(timings.twtr_ns, clock_ghz),
            trtp=_to_cycles(timings.trtp_ns, clock_ghz),
            trrd=trrd,
            tfaw=_to_cycles(timings.tfaw_ns, clock_ghz),
            trfc=trfc,
            trefi=_to_cycles(timings.trefi_ns, clock_ghz),
            treloc=_to_cycles(timings.treloc_ns, clock_ghz),
            tccd_s=tccd if timings.tccd_s_ns is None
            else _to_cycles(timings.tccd_s_ns, clock_ghz),
            trrd_l=trrd if timings.trrd_l_ns is None
            else _to_cycles(timings.trrd_l_ns, clock_ghz),
            trfc_pb=trfc if timings.trfc_pb_ns is None
            else _to_cycles(timings.trfc_pb_ns, clock_ghz),
        )

    def cycles(self, ns: float) -> int:
        """Convert an arbitrary nanosecond duration to cycles."""
        return _to_cycles(ns, self.clock_ghz)

    def ns(self, cycles: int) -> float:
        """Convert cycles back to nanoseconds."""
        return cycles / self.clock_ghz

    @property
    def row_miss_latency(self) -> int:
        """Latency of a column read to a closed row (ACT + CAS + burst)."""
        return self.trcd + self.tcl + self.tbl

    @property
    def row_hit_latency(self) -> int:
        """Latency of a column read to an already-open row."""
        return self.tcl + self.tbl

    @property
    def row_conflict_latency(self) -> int:
        """Latency of a column read that must first close another row."""
        return self.trp + self.trcd + self.tcl + self.tbl
