"""Interface between the memory controller and in-DRAM caching mechanisms.

Every evaluated configuration (Base, LISA-VILLA, FIGCache-Slow/-Fast/-Ideal,
LL-DRAM) is expressed as a :class:`CachingMechanism`: the memory controller
asks the mechanism to service each scheduled request, and the mechanism
decides where the request is actually served (original row or an in-DRAM
cache row), performs any relocations into or out of the cache, and records
its own hit/miss statistics.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.dram.address import DecodedAddress
from repro.dram.channel import Channel


@dataclass(slots=True)
class ServiceResult:
    """Outcome of servicing one request through a caching mechanism.

    A plain slotted record (not frozen): one is created per serviced
    request, on the scheduling hot path.  Treat as read-only.
    """

    #: Cycle at which the requested data transfer finished.
    completion_cycle: int
    #: Cycle at which the bank can take further work (includes relocations
    #: triggered by this request, which occupy the bank after the demand
    #: access completes).
    bank_busy_until: int
    #: Row-buffer outcome of the demand access: ``hit``, ``miss``, ``conflict``.
    row_buffer_outcome: str
    #: Whether the demand access hit in the in-DRAM cache (None when the
    #: mechanism has no cache).
    in_dram_cache_hit: bool | None
    #: True when the demand access was served from a fast region.
    served_fast: bool
    #: Cycles spent on relocation work triggered by this request.
    relocation_cycles: int = 0


@dataclass
class MechanismStats:
    """Aggregate statistics kept by every caching mechanism."""

    #: Demand accesses that were looked up in the in-DRAM cache.
    cache_lookups: int = 0
    #: Demand accesses served from the in-DRAM cache.
    cache_hits: int = 0
    #: Row-segment (or row) insertions into the cache.
    insertions: int = 0
    #: Evictions from the cache.
    evictions: int = 0
    #: Evictions that required a dirty write-back relocation.
    dirty_writebacks: int = 0
    #: Total cycles spent relocating data into or out of the cache.
    relocation_cycles: int = 0
    #: Total RELOC (or bulk-transfer) operations performed.
    relocation_operations: int = 0
    #: Extra bookkeeping counters specific to a mechanism.
    extra: dict = field(default_factory=dict)

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of lookups that hit in the in-DRAM cache."""
        if self.cache_lookups == 0:
            return 0.0
        return self.cache_hits / self.cache_lookups

    def telemetry_counters(self) -> dict[str, int]:
        """Cumulative counters for the telemetry epoch sampler.

        Uniform stats-producer protocol (see :mod:`repro.sim.telemetry`).
        """
        return {
            "cache_lookups": self.cache_lookups,
            "cache_hits": self.cache_hits,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "dirty_writebacks": self.dirty_writebacks,
            "relocation_cycles": self.relocation_cycles,
            "relocation_operations": self.relocation_operations,
        }


class CachingMechanism(abc.ABC):
    """Base class for in-DRAM caching mechanisms (and the no-cache Base)."""

    name = "abstract"

    #: Whether :meth:`effective_row` can ever differ from the address row.
    #: Mechanisms that never remap (the no-cache Base/LL-DRAM) set this to
    #: False, letting the FR-FCFS scheduler read ``request.decoded.row``
    #: directly instead of calling the hook once per queued candidate on
    #: every scheduling attempt.  Mechanisms with an in-DRAM cache keep the
    #: default: their per-bank view (the FIGCache tag store, LISA-VILLA's
    #: row cache) decides where each request is actually served.
    remaps_rows = True

    #: Whether :meth:`service` is exactly one column access to the address
    #: row with no cache bookkeeping and no relocations.  Mechanisms that
    #: set this to True (Base/LL-DRAM) let the channel controller serve
    #: requests straight through ``Channel.access``, skipping the
    #: :meth:`service` call and the :class:`ServiceResult` wrapper on the
    #: per-request hot path.  Must only be True when :meth:`service` has no
    #: observable effect beyond the access itself.
    direct_access = False

    def __init__(self) -> None:
        self.stats = MechanismStats()
        #: Optional event tracer (see :mod:`repro.sim.tracing`).  ``None``
        #: when tracing is off; mechanisms check it only on their cold
        #: insert/evict paths, never per demand access.
        self.tracer = None

    @abc.abstractmethod
    def effective_row(self, channel: Channel, decoded: DecodedAddress,
                      flat_bank: int) -> int:
        """Row the request would actually be served from right now.

        Used by the FR-FCFS scheduler to recognise requests that would hit an
        open in-DRAM cache row.  Must not mutate any state.
        """

    @abc.abstractmethod
    def service(self, channel: Channel, now: int, decoded: DecodedAddress,
                flat_bank: int, is_write: bool) -> ServiceResult:
        """Service one scheduled request at cycle ``now``.

        Implementations perform the demand access on ``channel`` (redirected
        to a cache row on a cache hit) and any relocation work the request
        triggers, and update their statistics.
        """

    def reset_stats(self) -> None:
        """Clear accumulated statistics (cache contents are kept)."""
        self.stats = MechanismStats()
