"""In-DRAM cache replacement policies.

The paper's FIGCache uses a *RowBenefit* policy (Section 5.1): insertion
happens at row-segment granularity but eviction is decided at cache-row
granularity.  When space is needed and no eviction is in progress, the cache
row with the lowest cumulative benefit is marked for eviction (a bit-vector
tracks which of its segments are still pending), and marked segments are then
evicted one by one — lowest individual benefit first — as new segments are
inserted.  Evicting whole rows packs temporally-correlated segments together
and is what raises the in-DRAM cache's row-buffer hit rate.

For the Figure 14 sensitivity study the paper compares RowBenefit against
three conventional segment-granularity policies, also implemented here:
SegmentBenefit (evict the globally lowest-benefit segment), LRU, and Random.
"""

from __future__ import annotations

import abc
import random

from repro.core.tag_store import FigTagStore


class ReplacementPolicy(abc.ABC):
    """Chooses which valid cache slot to evict when the cache is full."""

    name = "abstract"

    def __init__(self, tag_store: FigTagStore):
        self._tags = tag_store

    @abc.abstractmethod
    def choose_victim(self) -> int:
        """Return the slot index to evict.  The cache is known to be full."""

    def notify_eviction(self, slot: int) -> None:
        """Hook invoked after ``slot`` has been evicted."""

    def notify_insertion(self, slot: int) -> None:
        """Hook invoked after a new segment was inserted into ``slot``."""


class RowBenefitReplacement(ReplacementPolicy):
    """The paper's row-granularity, benefit-driven replacement policy."""

    name = "RowBenefit"

    def __init__(self, tag_store: FigTagStore):
        super().__init__(tag_store)
        #: Cache row currently being drained, or None.
        self._eviction_row: int | None = None
        #: Slots of the eviction row still marked for eviction (the paper's
        #: 8-bit bit-vector, one bit per segment of the row).
        self._marked_slots: set[int] = set()

    @property
    def eviction_row(self) -> int | None:
        """Cache row currently marked for draining (None when idle)."""
        return self._eviction_row

    @property
    def marked_slots(self) -> frozenset[int]:
        """Slots of the eviction row still pending eviction."""
        return frozenset(self._marked_slots)

    def choose_victim(self) -> int:
        if not self._marked_slots:
            self._select_new_eviction_row()
        # Among the marked (still-valid) segments, evict the one with the
        # lowest individual benefit score.
        candidates = [self._tags.entry(slot) for slot in self._marked_slots
                      if self._tags.entry(slot).valid]
        if not candidates:
            # Every marked slot was already invalid (e.g. freed elsewhere);
            # restart the selection with a fresh row.
            self._marked_slots.clear()
            self._select_new_eviction_row()
            candidates = [self._tags.entry(slot) for slot in self._marked_slots
                          if self._tags.entry(slot).valid]
        victim = min(candidates, key=lambda entry: (entry.benefit, entry.slot))
        return victim.slot

    def notify_eviction(self, slot: int) -> None:
        self._marked_slots.discard(slot)
        if not self._marked_slots:
            self._eviction_row = None

    def _select_new_eviction_row(self) -> None:
        """Mark the cache row with the lowest cumulative benefit for eviction.

        One pass over the tag store accumulates each cache row's cumulative
        benefit; the row with the lowest total (ties: lowest row index,
        matching ``min`` over ``(benefit, row)`` pairs) wins.
        """
        entries = self._tags.entries()
        segments_per_row = self._tags.segments_per_row
        num_rows = self._tags.num_cache_rows
        totals = [0] * num_rows
        has_valid = [False] * num_rows
        for index, entry in enumerate(entries):
            if entry.valid:
                cache_row = index // segments_per_row
                totals[cache_row] += entry.benefit
                has_valid[cache_row] = True
        chosen = None
        for cache_row in range(num_rows):
            if has_valid[cache_row] and (chosen is None
                                         or totals[cache_row]
                                         < totals[chosen]):
                chosen = cache_row
        if chosen is None:
            raise ValueError("no valid entries to evict")
        self._eviction_row = chosen
        first = chosen * segments_per_row
        self._marked_slots = {
            entry.slot
            for entry in entries[first:first + segments_per_row]
            if entry.valid}


class SegmentBenefitReplacement(ReplacementPolicy):
    """Evict the valid segment with the lowest benefit, cache-wide."""

    name = "SegmentBenefit"

    def choose_victim(self) -> int:
        entries = self._tags.valid_entries()
        if not entries:
            raise ValueError("no valid entries to evict")
        victim = min(entries, key=lambda entry: (entry.benefit, entry.slot))
        return victim.slot


class LRUReplacement(ReplacementPolicy):
    """Evict the least-recently-used valid segment."""

    name = "LRU"

    def choose_victim(self) -> int:
        entries = self._tags.valid_entries()
        if not entries:
            raise ValueError("no valid entries to evict")
        victim = min(entries, key=lambda entry: (entry.last_touch, entry.slot))
        return victim.slot


class RandomReplacement(ReplacementPolicy):
    """Evict a valid segment chosen uniformly at random (deterministic seed)."""

    name = "Random"

    def __init__(self, tag_store: FigTagStore, seed: int = 0):
        super().__init__(tag_store)
        self._rng = random.Random(seed)

    def choose_victim(self) -> int:
        entries = self._tags.valid_entries()
        if not entries:
            raise ValueError("no valid entries to evict")
        return self._rng.choice(entries).slot


_POLICIES = {
    "RowBenefit": RowBenefitReplacement,
    "SegmentBenefit": SegmentBenefitReplacement,
    "LRU": LRUReplacement,
    "Random": RandomReplacement,
}


def make_replacement_policy(name: str, tag_store: FigTagStore,
                            seed: int = 0) -> ReplacementPolicy:
    """Instantiate a replacement policy by name (see Figure 14)."""
    if name not in _POLICIES:
        raise ValueError(
            f"unknown replacement policy {name!r}; "
            f"choose one of {sorted(_POLICIES)}")
    if name == "Random":
        return RandomReplacement(tag_store, seed=seed)
    return _POLICIES[name](tag_store)


def available_replacement_policies() -> list[str]:
    """Names of all implemented replacement policies."""
    return sorted(_POLICIES)
