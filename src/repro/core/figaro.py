"""FIGARO relocation engine.

FIGARO (Fine-Grained In-DRAM Data Relocation) adds one command, ``RELOC``,
that copies a single column of data (one cache block across a rank) from the
local row buffer of a source subarray to the local row buffer of a
destination subarray of the same bank, through the shared global row buffer.
The key properties modelled here, following the paper's Section 4:

* Column (cache-block) granularity: a row segment of *n* blocks needs *n*
  RELOC commands.
* Distance independence: the RELOC latency does not depend on how far apart
  the source and destination subarrays are (all transfers go through the
  global row buffer and global bitlines).
* Unaligned relocation: the source column index and the destination column
  index may differ, which is what lets FIGCache pack segments from many rows
  into one cache row.
* The full sequence for one segment is ACTIVATE(source) — skipped when the
  source row is already open — followed by one RELOC per block, an ACTIVATE
  of the destination row, and a PRECHARGE (Section 4.2).
* Relocation cannot cross banks, and cannot usefully operate when the source
  and destination rows are in the same subarray.

The engine validates these constraints and delegates the timing/occupancy
bookkeeping to :meth:`repro.dram.bank.Bank.relocate` via the channel.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.dram.channel import Channel
from repro.dram.config import DRAMConfig


class RelocationRequest(NamedTuple):
    """One segment relocation to be performed by FIGARO.

    A ``NamedTuple`` rather than a frozen dataclass: FIGCache builds one
    (sometimes two — insertion plus dirty-victim writeback) per in-DRAM
    cache miss, and tuple construction skips the per-field
    ``object.__setattr__`` a frozen dataclass pays.
    """

    #: Flat bank index within the channel.
    flat_bank: int
    #: Source row (bank-level row id).
    source_row: int
    #: First source column (block index within the source row).
    source_column: int
    #: Destination row (bank-level row id, typically a cache row).
    destination_row: int
    #: First destination column (block index within the destination row).
    destination_column: int
    #: Number of cache blocks to relocate (one RELOC command per block).
    num_blocks: int


class RelocationOutcome(NamedTuple):
    """Timing outcome of one segment relocation."""

    start_cycle: int
    completion_cycle: int
    reloc_commands: int

    @property
    def cycles(self) -> int:
        """Bank-occupancy cycles consumed by the relocation."""
        return self.completion_cycle - self.start_cycle


class FigaroEngine:
    """Validates and executes FIGARO relocations on a DRAM channel."""

    def __init__(self, config: DRAMConfig):
        self._config = config

    @property
    def config(self) -> DRAMConfig:
        """DRAM organization the engine operates on."""
        return self._config

    def validate(self, request: RelocationRequest) -> None:
        """Raise ``ValueError`` if the relocation violates FIGARO constraints."""
        config = self._config
        if request.num_blocks <= 0:
            raise ValueError("a relocation must move at least one block")
        if request.num_blocks > config.blocks_per_row:
            raise ValueError(
                f"cannot relocate {request.num_blocks} blocks: a row only "
                f"holds {config.blocks_per_row}")
        for name, column in (("source", request.source_column),
                             ("destination", request.destination_column)):
            if column < 0 or column + request.num_blocks > config.blocks_per_row:
                raise ValueError(
                    f"{name} columns [{column}, "
                    f"{column + request.num_blocks}) fall outside the row")
        source_subarray = config.subarray_of_row(request.source_row)
        destination_subarray = config.subarray_of_row(request.destination_row)
        if source_subarray == destination_subarray:
            raise ValueError(
                "FIGARO cannot relocate data within a single subarray "
                f"(both rows are in subarray {source_subarray})")

    def relocate(self, channel: Channel, now: int, request: RelocationRequest,
                 keep_source_open: bool = False,
                 validate: bool = True) -> RelocationOutcome:
        """Execute one validated relocation; returns its timing outcome.

        ``keep_source_open`` is forwarded to the bank model: because the
        source and destination rows are in different subarrays, the
        destination-side ACTIVATE/PRECHARGE need not close the source row.

        ``validate=False`` skips the constraint checks for callers whose
        requests are valid by construction — FIGCache derives every
        relocation from its own placement bookkeeping, so re-validating
        each one on the miss path only burns scheduler time.  External
        callers should leave validation on.
        """
        if validate:
            self.validate(request)
        result = channel.relocate(now, request.flat_bank, request.source_row,
                                  request.destination_row, request.num_blocks,
                                  keep_source_open=keep_source_open)
        return RelocationOutcome(start_cycle=result.start_cycle,
                                 completion_cycle=result.completion_cycle,
                                 reloc_commands=result.reloc_commands)

    def relocation_latency_ns(self, num_blocks: int,
                              source_already_open: bool = False,
                              destination_fast: bool = True) -> float:
        """Analytical end-to-end latency of relocating ``num_blocks`` blocks.

        Mirrors the paper's Section 4.2 accounting: ACTIVATE(source, tRAS) +
        ``num_blocks`` x RELOC + ACTIVATE(destination, tRCD — the bitlines are
        already driven by the GRB) + PRECHARGE.  With one block, slow source
        and destination subarrays, and no already-open source row this
        evaluates to 35 + 1 + 13.75 + 13.75 = 63.5 ns, the figure quoted in
        the paper.
        """
        if num_blocks <= 0:
            raise ValueError("num_blocks must be positive")
        timings = self._config.timings
        # Use the configuration's own fast-timing derivation so the
        # analytical figure matches what the bank model simulates on
        # standards with non-default reduction factors.
        destination = self._config.fast_timings() if destination_fast \
            else timings
        latency = 0.0
        if not source_already_open:
            latency += timings.tras_ns
        latency += num_blocks * timings.treloc_ns
        latency += destination.trcd_ns
        latency += destination.trp_ns
        return latency
