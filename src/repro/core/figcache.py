"""FIGCache: the fine-grained in-DRAM cache built on FIGARO.

FIGCache (paper Section 5) caches *row segments* — contiguous groups of
cache blocks, 1/8 of a row by default — in a small number of cache rows per
bank.  The cache rows can live in dedicated fast subarrays (FIGCache-Fast),
in reserved rows of an ordinary slow subarray (FIGCache-Slow), or be served
with zero relocation cost (FIGCache-Ideal, an idealised upper bound).

The memory-controller-side state is the FIGCache Tag Store
(:class:`repro.core.tag_store.FigTagStore`), one per bank.  On every demand
request the controller looks up the FTS:

* **Hit** — the request is redirected to the cache row slot holding the
  segment; the entry's benefit counter is bumped; writes set the dirty bit.
* **Miss** — the request is served from its original row.  The insertion
  policy then decides whether to relocate the missed segment into the cache
  (insert-any-miss by default).  If the cache is full, the replacement
  policy picks a victim (RowBenefit by default); dirty victims are written
  back to their source rows with FIGARO relocations before the new segment
  is relocated in.  Because the demand access has just opened the source
  row, the insertion relocation skips the initial ACTIVATE (Section 8.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.figaro import FigaroEngine
from repro.core.insertion import InsertionPolicy, make_insertion_policy
from repro.core.mechanism import CachingMechanism, ServiceResult
from repro.core.replacement import ReplacementPolicy, make_replacement_policy
from repro.core.tag_store import FigTagStore
from repro.dram.address import DecodedAddress
from repro.dram.channel import Channel
from repro.dram.config import DRAMConfig


@dataclass(frozen=True)
class FIGCacheConfig:
    """Configuration of the FIGCache mechanism (paper Table 1 defaults)."""

    #: Number of cache blocks per row segment (16 blocks = 1 kB = 1/8 row).
    segment_blocks: int = 16
    #: In-DRAM cache rows per bank (64 rows in the paper).
    cache_rows_per_bank: int = 64
    #: Where cache rows live: ``fast`` (dedicated fast subarrays), ``slow``
    #: (reserved rows in a regular subarray), or ``ideal`` (fast subarrays
    #: with zero-cost relocation — the FIGCache-Ideal configuration).
    placement: str = "fast"
    #: Replacement policy name (RowBenefit, SegmentBenefit, LRU, Random).
    replacement_policy: str = "RowBenefit"
    #: Miss-count threshold for insertion (1 = insert-any-miss).
    insertion_threshold: int = 1
    #: Benefit counter width in bits.
    benefit_bits: int = 5
    #: Seed for the Random replacement policy.
    seed: int = 0

    def validate(self, dram: DRAMConfig) -> None:
        """Check that this cache configuration fits the DRAM organization."""
        if self.placement not in ("fast", "slow", "ideal"):
            raise ValueError(
                f"placement must be 'fast', 'slow', or 'ideal', "
                f"got {self.placement!r}")
        if self.segment_blocks <= 0 \
                or dram.blocks_per_row % self.segment_blocks != 0:
            raise ValueError(
                f"segment_blocks ({self.segment_blocks}) must divide the "
                f"blocks per row ({dram.blocks_per_row})")
        if self.cache_rows_per_bank <= 0:
            raise ValueError("cache_rows_per_bank must be positive")
        if self.placement in ("fast", "ideal"):
            if dram.fast_rows_per_bank < self.cache_rows_per_bank:
                raise ValueError(
                    f"placement {self.placement!r} needs at least "
                    f"{self.cache_rows_per_bank} fast rows per bank, but the "
                    f"DRAM configuration provides {dram.fast_rows_per_bank}")
        else:
            if dram.rows_per_subarray < self.cache_rows_per_bank:
                raise ValueError(
                    "slow placement reserves cache rows inside one subarray; "
                    f"{self.cache_rows_per_bank} rows do not fit in a "
                    f"{dram.rows_per_subarray}-row subarray")


@dataclass
class _BankCache:
    """Per-bank cache state: tag store, policies, and row id mapping."""

    tags: FigTagStore
    replacement: ReplacementPolicy
    insertion: InsertionPolicy
    #: Bank-level row ids of the cache rows, indexed by cache-row number.
    cache_row_ids: list[int]
    #: Subarray that must not be cached from (slow placement only; -1 if n/a).
    excluded_subarray: int = -1
    #: Pending-eviction bookkeeping is held by the replacement policy.
    extra: dict = field(default_factory=dict)


class FIGCache(CachingMechanism):
    """The FIGCache caching mechanism (controller-side manager)."""

    def __init__(self, dram_config: DRAMConfig,
                 cache_config: FIGCacheConfig | None = None):
        super().__init__()
        self._dram = dram_config
        self._cfg = cache_config or FIGCacheConfig()
        self._cfg.validate(dram_config)
        self._figaro = FigaroEngine(dram_config)
        self._segment_blocks = self._cfg.segment_blocks
        self._ideal_placement = self._cfg.placement == "ideal"
        self._segments_per_source_row = (dram_config.blocks_per_row
                                         // self._cfg.segment_blocks)
        #: Per-bank caches, eagerly built for every bank of the channel so
        #: the tag stores and policies are constructed at system-assembly
        #: time rather than lazily on the first access of each bank.
        #: (:meth:`_bank_cache` still handles out-of-range flat banks for
        #: callers that probe unusual topologies.)
        self._banks: dict[int, _BankCache] = {
            flat_bank: self._build_bank_cache()
            for flat_bank in range(dram_config.banks_per_channel)}
        self.name = {
            "fast": "FIGCache-Fast",
            "slow": "FIGCache-Slow",
            "ideal": "FIGCache-Ideal",
        }[self._cfg.placement]

    # ------------------------------------------------------------------
    # Public configuration accessors.
    # ------------------------------------------------------------------
    @property
    def config(self) -> FIGCacheConfig:
        """The FIGCache configuration."""
        return self._cfg

    @property
    def dram_config(self) -> DRAMConfig:
        """The DRAM organization this cache is configured for."""
        return self._dram

    @property
    def segments_per_cache_row(self) -> int:
        """Row segments that fit in one cache row."""
        return self._segments_per_source_row

    @property
    def segments_per_source_row(self) -> int:
        """Row segments per source (regular) DRAM row."""
        return self._segments_per_source_row

    def tag_store(self, flat_bank: int) -> FigTagStore:
        """Return (creating if needed) the FTS of one bank."""
        return self._bank_cache(flat_bank).tags

    # ------------------------------------------------------------------
    # CachingMechanism interface.
    # ------------------------------------------------------------------
    def effective_row(self, channel: Channel, decoded: DecodedAddress,
                      flat_bank: int) -> int:
        # Called once per queued candidate on every scheduling attempt, so
        # the miss path (no tag entry) must stay a couple of dict lookups.
        bank_cache = self._banks.get(flat_bank)
        if bank_cache is None:
            bank_cache = self._bank_cache(flat_bank)
        row = decoded.row
        tags = bank_cache.tags
        slot = tags._lookup.get(
            (row, decoded.column_block // self._segment_blocks))
        if slot is None:
            return row
        # Inline _prefer_source_row: clean cached copy + source row open.
        if not tags._entries[slot].dirty \
                and channel.bank(flat_bank).open_row == row:
            return row
        return bank_cache.cache_row_ids[slot // tags._segments_per_row]

    def _prefer_source_row(self, channel: Channel, decoded: DecodedAddress,
                           flat_bank: int, entry) -> bool:
        """Serve a cached segment from its source row when that row is open.

        The FTS lookup happens when the request is scheduled, at which point
        the memory controller knows which row the bank has open.  If the
        original (source) row is still open and the cached copy is clean,
        the two copies are identical and serving the request as a row hit
        from the source row is both correct and faster than re-opening the
        cache row.  This mainly avoids penalising the accesses that follow a
        segment's insertion, whose source row the demand miss just opened.
        """
        if entry.dirty:
            return False
        bank = channel.bank(flat_bank)
        return bank.open_row == decoded.row

    def service(self, channel: Channel, now: int, decoded: DecodedAddress,
                flat_bank: int, is_write: bool) -> ServiceResult:
        """Serve one request: hit and miss paths fused for the hot loop."""
        bank_cache = self._banks.get(flat_bank)
        if bank_cache is None:
            bank_cache = self._bank_cache(flat_bank)
        tags = bank_cache.tags
        row = decoded.row
        segment = decoded.column_block // self._segment_blocks
        stats = self.stats
        stats.cache_lookups += 1

        # Inline FigTagStore.lookup.
        slot = tags._lookup.get((row, segment))
        if slot is not None:
            # --- Hit path -------------------------------------------------
            entry = tags._entries[slot]
            stats.cache_hits += 1
            # Inline FigTagStore.touch (the entry came from a lookup, so it
            # is valid): bump benefit, recency, and dirtiness.
            if entry.benefit < tags._benefit_max:
                entry.benefit += 1
            tags._touch_counter += 1
            entry.last_touch = tags._touch_counter
            if is_write:
                entry.dirty = True
            # Inline _prefer_source_row: the source row is still open and
            # the cached copy is clean, so serve the request as a row hit
            # from the source row.
            if not is_write and not entry.dirty \
                    and channel.bank(flat_bank).open_row == row:
                target_row = row
            else:
                target_row = bank_cache.cache_row_ids[
                    slot // tags._segments_per_row]

            access = channel.access(now, flat_bank, target_row, is_write)
            # No relocation on a hit: the access result already carries the
            # bank's post-access readiness.
            return ServiceResult(access.completion_cycle,
                                 access.bank_ready_cycle, access.outcome,
                                 True, access.served_fast, 0)

        # --- Miss path ----------------------------------------------------
        access = channel.access(now, flat_bank, row, is_write)
        relocation_cycles = 0

        insertion = bank_cache.insertion
        if (bank_cache.excluded_subarray < 0
                or self._may_cache(bank_cache, row)) \
                and (insertion.always_inserts
                     or insertion.should_insert(row, segment)):
            relocation_cycles = self._insert_segment(
                channel, access.completion_cycle, flat_bank, bank_cache,
                row, segment, dirty=is_write)
            # Relocation work may have pushed the bank's busy window past
            # the access, so re-read its readiness.
            bank_busy_until = channel.bank(flat_bank).ready_for_next
        else:
            bank_busy_until = access.bank_ready_cycle
        return ServiceResult(access.completion_cycle, bank_busy_until,
                             access.outcome, False, access.served_fast,
                             relocation_cycles)

    def _insert_segment(self, channel: Channel, now: int, flat_bank: int,
                        bank_cache: _BankCache, source_row: int,
                        segment: int, dirty: bool) -> int:
        """Relocate the missed segment into the cache; returns cycles spent."""
        tags = bank_cache.tags
        stats = self.stats
        relocation_cycles = 0
        current = now

        slot = tags.first_free_slot()
        if slot is None:
            slot, writeback_cycles, current = self._evict_for_space(
                channel, current, flat_bank, bank_cache)
            relocation_cycles += writeback_cycles

        if not self._ideal_placement:
            cache_row = bank_cache.cache_row_ids[
                slot // tags._segments_per_row]
            # Inline FigaroEngine.relocate with validate=False: the request
            # is valid by construction, and the channel's timing model only
            # needs the rows and block count, so the RelocationRequest /
            # RelocationOutcome wrappers would be built just to be unpacked
            # again on this per-miss path.
            result = channel.relocate(current, flat_bank, source_row,
                                      cache_row, self._segment_blocks,
                                      keep_source_open=True)
            relocation_cycles += result.completion_cycle - result.start_cycle
            stats.relocation_operations += result.reloc_commands
            current = result.completion_cycle

        tags.insert(slot, source_row, segment, dirty=dirty)
        bank_cache.replacement.notify_insertion(slot)
        bank_cache.insertion.notify_inserted(source_row, segment)
        stats.insertions += 1
        stats.relocation_cycles += relocation_cycles
        if self.tracer is not None:
            self.tracer.mechanism_event(
                current, channel.channel_id, flat_bank, "fig-insert",
                {"source_row": source_row, "segment": segment,
                 "slot": slot, "dirty": dirty,
                 "relocation_cycles": relocation_cycles})
        return relocation_cycles

    def _evict_for_space(self, channel: Channel, now: int, flat_bank: int,
                         bank_cache: _BankCache) -> tuple[int, int, int]:
        """Evict one victim segment; returns (slot, writeback cycles, time)."""
        tags = bank_cache.tags
        victim_slot = bank_cache.replacement.choose_victim()
        victim = tags.evict(victim_slot)
        bank_cache.replacement.notify_eviction(victim_slot)
        bank_cache.insertion.notify_evicted(victim.source_row,
                                            victim.source_segment)
        self.stats.evictions += 1

        writeback_cycles = 0
        current = now
        if victim.dirty and not self._ideal_placement:
            cache_row = bank_cache.cache_row_ids[
                victim_slot // tags._segments_per_row]
            # Inline FigaroEngine.relocate, as on the insert path above.
            result = channel.relocate(current, flat_bank, cache_row,
                                      victim.source_row,
                                      self._segment_blocks)
            writeback_cycles = result.completion_cycle - result.start_cycle
            current = result.completion_cycle
            self.stats.relocation_operations += result.reloc_commands
            self.stats.dirty_writebacks += 1
        elif victim.dirty:
            self.stats.dirty_writebacks += 1
        if self.tracer is not None:
            self.tracer.mechanism_event(
                current, channel.channel_id, flat_bank, "fig-evict",
                {"source_row": victim.source_row,
                 "segment": victim.source_segment, "slot": victim_slot,
                 "dirty": victim.dirty,
                 "writeback_cycles": writeback_cycles})
        return victim_slot, writeback_cycles, current

    # ------------------------------------------------------------------
    # Bank-cache construction and placement rules.
    # ------------------------------------------------------------------
    def _may_cache(self, bank_cache: _BankCache, source_row: int) -> bool:
        """Segments from the excluded subarray (slow placement) stay uncached."""
        if bank_cache.excluded_subarray < 0:
            return True
        return (self._dram.subarray_of_row(source_row)
                != bank_cache.excluded_subarray)

    def _bank_cache(self, flat_bank: int) -> _BankCache:
        bank_cache = self._banks.get(flat_bank)
        if bank_cache is None:
            bank_cache = self._build_bank_cache()
            self._banks[flat_bank] = bank_cache
        return bank_cache

    def _build_bank_cache(self) -> _BankCache:
        tags = FigTagStore(self._cfg.cache_rows_per_bank,
                           self._segments_per_source_row,
                           benefit_bits=self._cfg.benefit_bits)
        replacement = make_replacement_policy(self._cfg.replacement_policy,
                                              tags, seed=self._cfg.seed)
        insertion = make_insertion_policy(self._cfg.insertion_threshold)
        cache_row_ids, excluded = self._cache_row_layout()
        return _BankCache(tags=tags, replacement=replacement,
                          insertion=insertion, cache_row_ids=cache_row_ids,
                          excluded_subarray=excluded)

    def _cache_row_layout(self) -> tuple[list[int], int]:
        """Bank-level row ids used as cache rows, and the excluded subarray."""
        if self._cfg.placement in ("fast", "ideal"):
            rows = [self._dram.fast_region_row(index)
                    for index in range(self._cfg.cache_rows_per_bank)]
            return rows, -1
        # Slow placement: reserve the last rows of the last regular subarray.
        last_subarray = self._dram.subarrays_per_bank - 1
        first_reserved = (self._dram.regular_rows_per_bank
                          - self._cfg.cache_rows_per_bank)
        rows = [first_reserved + index
                for index in range(self._cfg.cache_rows_per_bank)]
        return rows, last_subarray
