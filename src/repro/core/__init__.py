"""The paper's primary contribution: FIGARO and FIGCache.

* :mod:`repro.core.figaro` — the FIGARO relocation engine: column-granularity
  (cache-block) data relocation across subarrays of a bank through the global
  row buffer, with distance-independent latency.
* :mod:`repro.core.tag_store` — the FIGCache Tag Store (FTS) kept in the
  memory controller.
* :mod:`repro.core.replacement` — cache replacement policies (RowBenefit,
  SegmentBenefit, LRU, Random).
* :mod:`repro.core.insertion` — row-segment insertion policies
  (insert-any-miss, miss-count threshold).
* :mod:`repro.core.figcache` — the FIGCache caching mechanism that ties the
  pieces together and plugs into the memory controller.
* :mod:`repro.core.mechanism` — the mechanism interface shared with the
  baselines.
"""

from repro.core.figaro import FigaroEngine, RelocationRequest
from repro.core.figcache import FIGCache, FIGCacheConfig
from repro.core.insertion import (InsertAnyMissPolicy, InsertionPolicy,
                                  MissCountThresholdPolicy)
from repro.core.mechanism import (CachingMechanism, MechanismStats,
                                  ServiceResult)
from repro.core.replacement import (LRUReplacement, RandomReplacement,
                                    ReplacementPolicy, RowBenefitReplacement,
                                    SegmentBenefitReplacement,
                                    make_replacement_policy)
from repro.core.tag_store import FigTagStore, TagEntry

__all__ = [
    "CachingMechanism",
    "FIGCache",
    "FIGCacheConfig",
    "FigTagStore",
    "FigaroEngine",
    "InsertAnyMissPolicy",
    "InsertionPolicy",
    "LRUReplacement",
    "MechanismStats",
    "MissCountThresholdPolicy",
    "RandomReplacement",
    "RelocationRequest",
    "ReplacementPolicy",
    "RowBenefitReplacement",
    "SegmentBenefitReplacement",
    "ServiceResult",
    "TagEntry",
    "make_replacement_policy",
]
