"""Row-segment insertion policies.

FIGCache uses a deliberately simple *insert-any-miss* policy (paper Section
5.1): every in-DRAM cache miss triggers the relocation of the missed row
segment into the cache.  The Figure 15 sensitivity study compares this
against miss-count thresholds (insert only after N consecutive misses to the
same segment), which need extra tracking state and, per the paper, do not
help — a threshold of 1 performs best for memory-intensive workloads.
"""

from __future__ import annotations

import abc


class InsertionPolicy(abc.ABC):
    """Decides whether a missed row segment should be inserted into the cache."""

    name = "abstract"

    #: True when :meth:`should_insert` unconditionally returns True, letting
    #: the per-miss hot path skip the call entirely.
    always_inserts = False

    @abc.abstractmethod
    def should_insert(self, source_row: int, source_segment: int) -> bool:
        """Return True when the missed segment should be cached now."""

    def notify_inserted(self, source_row: int, source_segment: int) -> None:
        """Hook invoked after the segment was actually inserted."""

    def notify_evicted(self, source_row: int, source_segment: int) -> None:
        """Hook invoked after the segment was evicted from the cache."""


class InsertAnyMissPolicy(InsertionPolicy):
    """Insert every segment that misses (the paper's default, threshold 1)."""

    name = "insert-any-miss"
    always_inserts = True

    def should_insert(self, source_row: int, source_segment: int) -> bool:
        return True


class MissCountThresholdPolicy(InsertionPolicy):
    """Insert a segment only after it has missed ``threshold`` times.

    The miss counters persist until the segment is inserted (then they are
    cleared), mirroring the idealised assumption in the paper's Figure 15
    that the additional tracking state adds no latency.  ``max_tracked``
    bounds the tracking table so that pathological workloads cannot grow it
    without limit; when full, the oldest tracked segment is dropped.
    """

    name = "miss-count-threshold"

    def __init__(self, threshold: int, max_tracked: int = 65536):
        if threshold < 1:
            raise ValueError("threshold must be at least 1")
        self.threshold = threshold
        self._max_tracked = max_tracked
        self._miss_counts: dict[tuple[int, int], int] = {}

    def should_insert(self, source_row: int, source_segment: int) -> bool:
        if self.threshold == 1:
            return True
        key = (source_row, source_segment)
        count = self._miss_counts.get(key, 0) + 1
        if count >= self.threshold:
            self._miss_counts.pop(key, None)
            return True
        if key not in self._miss_counts and \
                len(self._miss_counts) >= self._max_tracked:
            oldest = next(iter(self._miss_counts))
            del self._miss_counts[oldest]
        self._miss_counts[key] = count
        return False

    def notify_inserted(self, source_row: int, source_segment: int) -> None:
        self._miss_counts.pop((source_row, source_segment), None)

    @property
    def tracked_segments(self) -> int:
        """Number of segments currently tracked by the miss counters."""
        return len(self._miss_counts)


def make_insertion_policy(threshold: int = 1) -> InsertionPolicy:
    """Create the insertion policy for a given miss-count threshold."""
    if threshold == 1:
        return InsertAnyMissPolicy()
    return MissCountThresholdPolicy(threshold)
