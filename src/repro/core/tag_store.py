"""FIGCache Tag Store (FTS).

The FTS lives in the memory controller and tracks which row segments are
currently held in the in-DRAM cache of each bank (paper Section 5.1).  One
:class:`FigTagStore` instance covers one bank and is fully associative: any
segment of any row of the bank may occupy any cache slot.

Each entry holds the paper's four fields: the tag (original row and segment
index), a valid bit, a dirty bit, and a saturating benefit counter used by
the benefit-based replacement policies.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappop, heappush


@dataclass(slots=True)
class TagEntry:
    """One FTS entry: metadata for one in-DRAM cache slot."""

    #: Index of the cache slot this entry describes (0 .. num_slots - 1).
    slot: int
    #: Original row of the cached segment (valid entries only).
    source_row: int = -1
    #: Segment index within the original row (valid entries only).
    source_segment: int = -1
    #: Valid bit.
    valid: bool = False
    #: Dirty bit: the cached copy differs from the source row.
    dirty: bool = False
    #: Saturating benefit counter (5 bits in the paper).
    benefit: int = 0
    #: Insertion sequence number (used by the LRU policy and for statistics).
    last_touch: int = 0

    @property
    def tag(self) -> tuple[int, int]:
        """(source row, source segment) pair identifying the cached data."""
        return (self.source_row, self.source_segment)


class FigTagStore:
    """Fully-associative tag store for the in-DRAM cache of one bank."""

    __slots__ = ('_num_cache_rows', '_segments_per_row', '_benefit_max', '_entries', '_lookup', '_touch_counter', '_free_heap')

    def __init__(self, num_cache_rows: int, segments_per_row: int,
                 benefit_bits: int = 5):
        if num_cache_rows <= 0 or segments_per_row <= 0:
            raise ValueError("cache must have at least one row and one slot")
        self._num_cache_rows = num_cache_rows
        self._segments_per_row = segments_per_row
        self._benefit_max = (1 << benefit_bits) - 1
        self._entries = [TagEntry(slot=slot)
                         for slot in range(num_cache_rows * segments_per_row)]
        #: Map from (source_row, source_segment) to slot for O(1) lookup.
        self._lookup: dict[tuple[int, int], int] = {}
        #: Monotonic counter for recency bookkeeping.
        self._touch_counter = 0
        #: Min-heap of candidate free slots: seeded with every slot (a
        #: sorted range is a valid heap) and re-fed by :meth:`evict`.
        #: Entries that have since been filled are pruned lazily, so
        #: :meth:`first_free_slot` is O(log slots) amortised instead of the
        #: full-store scan :meth:`free_slots` performs.
        self._free_heap: list[int] = list(range(len(self._entries)))

    # ------------------------------------------------------------------
    # Geometry.
    # ------------------------------------------------------------------
    @property
    def num_slots(self) -> int:
        """Total number of segment slots in this bank's cache."""
        return len(self._entries)

    @property
    def num_cache_rows(self) -> int:
        """Number of in-DRAM cache rows in this bank."""
        return self._num_cache_rows

    @property
    def segments_per_row(self) -> int:
        """Number of segment slots per cache row."""
        return self._segments_per_row

    @property
    def benefit_max(self) -> int:
        """Saturation value of the benefit counter."""
        return self._benefit_max

    def cache_row_of_slot(self, slot: int) -> int:
        """Cache-row index (0-based within the cache) that holds ``slot``."""
        return slot // self._segments_per_row

    def slot_offset_in_row(self, slot: int) -> int:
        """Segment offset of ``slot`` within its cache row."""
        return slot % self._segments_per_row

    def slots_of_cache_row(self, cache_row: int) -> list[int]:
        """All slot indices belonging to one cache row."""
        first = cache_row * self._segments_per_row
        return list(range(first, first + self._segments_per_row))

    # ------------------------------------------------------------------
    # Lookup and updates.
    # ------------------------------------------------------------------
    def entry(self, slot: int) -> TagEntry:
        """Return the entry for ``slot``."""
        return self._entries[slot]

    def entries(self) -> list[TagEntry]:
        """All entries (valid and invalid)."""
        return list(self._entries)

    def valid_entries(self) -> list[TagEntry]:
        """All valid entries."""
        return [entry for entry in self._entries if entry.valid]

    def lookup(self, source_row: int, source_segment: int) -> TagEntry | None:
        """Return the entry caching the given segment, or None on a miss."""
        slot = self._lookup.get((source_row, source_segment))
        if slot is None:
            return None
        return self._entries[slot]

    def touch(self, entry: TagEntry, is_write: bool) -> None:
        """Record a cache hit on ``entry``: bump benefit, recency, dirtiness."""
        if not entry.valid:
            raise ValueError("cannot touch an invalid entry")
        if entry.benefit < self._benefit_max:
            entry.benefit += 1
        self._touch_counter += 1
        entry.last_touch = self._touch_counter
        if is_write:
            entry.dirty = True

    def free_slots(self) -> list[int]:
        """Slots not currently holding a valid segment."""
        return [entry.slot for entry in self._entries if not entry.valid]

    def first_free_slot(self) -> int | None:
        """Lowest-index slot not holding a valid segment, or None when full.

        Equivalent to ``free_slots()[0]`` (every invalid slot is always a
        heap candidate: all slots are seeded at construction and
        :meth:`evict` re-adds the slot it frees) but served from the lazy
        free-slot heap instead of scanning every entry.
        """
        heap = self._free_heap
        entries = self._entries
        while heap:
            slot = heap[0]
            if entries[slot].valid:
                heappop(heap)
                continue
            return slot
        return None

    def insert(self, slot: int, source_row: int, source_segment: int,
               dirty: bool = False) -> TagEntry:
        """Fill ``slot`` with a newly cached segment."""
        entry = self._entries[slot]
        if entry.valid:
            raise ValueError(f"slot {slot} is still valid; evict it first")
        if (source_row, source_segment) in self._lookup:
            raise ValueError(
                f"segment ({source_row}, {source_segment}) is already cached")
        entry.source_row = source_row
        entry.source_segment = source_segment
        entry.valid = True
        entry.dirty = dirty
        entry.benefit = 1
        self._touch_counter += 1
        entry.last_touch = self._touch_counter
        self._lookup[(source_row, source_segment)] = slot
        return entry

    def evict(self, slot: int) -> TagEntry:
        """Invalidate ``slot`` and return a snapshot of the evicted entry."""
        entry = self._entries[slot]
        if not entry.valid:
            raise ValueError(f"slot {slot} is not valid")
        snapshot = TagEntry(slot=entry.slot, source_row=entry.source_row,
                            source_segment=entry.source_segment, valid=True,
                            dirty=entry.dirty, benefit=entry.benefit,
                            last_touch=entry.last_touch)
        del self._lookup[(entry.source_row, entry.source_segment)]
        entry.valid = False
        entry.dirty = False
        entry.benefit = 0
        entry.source_row = -1
        entry.source_segment = -1
        heappush(self._free_heap, slot)
        return snapshot

    def occupancy(self) -> float:
        """Fraction of slots holding valid segments."""
        return len(self._lookup) / self.num_slots

    def row_benefit(self, cache_row: int) -> int:
        """Cumulative benefit of all valid segments in one cache row."""
        return sum(self._entries[slot].benefit
                   for slot in self.slots_of_cache_row(cache_row)
                   if self._entries[slot].valid)

    def storage_bits_per_entry(self, rows_per_bank: int,
                               segments_per_source_row: int) -> int:
        """Storage cost of one FTS entry in bits (paper Section 8.3).

        The tag must identify one of ``rows_per_bank x
        segments_per_source_row`` segments; add the valid bit, dirty bit, and
        the benefit counter width.
        """
        segment_count = rows_per_bank * segments_per_source_row
        tag_bits = max(1, (segment_count - 1).bit_length())
        benefit_bits = self._benefit_max.bit_length()
        return tag_bits + benefit_bits + 2
