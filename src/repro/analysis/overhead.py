"""Analytical hardware-overhead model (paper Section 8.3).

The paper's overhead numbers come from RTL synthesis of the added
multiplexers/latches, area estimates of fast subarrays from prior work, and
CACTI/McPAT for the FIGCache Tag Store.  This module reproduces the
accounting with the per-component figures the paper reports as model inputs
and recomputes every aggregate (chip-level percentages, FTS storage, FTS
area/power relative to the LLC) from the simulated system configuration, so
the experiments can check them against the paper's totals.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.config import DRAMConfig


@dataclass(frozen=True)
class OverheadParams:
    """Per-component cost inputs (22 nm, from the paper's Section 8.3)."""

    #: Area of the added per-subarray column-address multiplexer (um^2).
    column_mux_area_um2: float = 4.7
    #: Power of the column multiplexer (uW).
    column_mux_power_uw: float = 2.1
    #: Area of the added per-subarray row-address multiplexer (um^2).
    row_mux_area_um2: float = 18.8
    #: Power of the row multiplexer (uW).
    row_mux_power_uw: float = 8.4
    #: Area of the per-subarray 40-bit partially-predecoded row-address
    #: latch (um^2).
    row_latch_area_um2: float = 35.2
    #: Power of the row-address latch (uW).
    row_latch_power_uw: float = 19.1
    #: Area of one slow subarray including its local row buffer (um^2).
    #: Chosen so a 64-subarray x 16-bank chip lands at a realistic ~60 mm^2
    #: cell-array area for an 8 Gb-class DDR4 die.
    slow_subarray_area_um2: float = 58000.0
    #: Fast subarray area relative to a slow subarray (paper: 22.6 %).
    fast_subarray_area_fraction: float = 0.226
    #: Fraction of the DRAM chip area occupied by the cell array.  The
    #: paper's Section 8.3 expresses every overhead relative to the cell
    #: array (e.g. two fast subarrays at 22.6 % of a slow subarray over 64
    #: slow subarrays = 0.7 %), so the default is 1.0.
    cell_array_area_fraction: float = 1.0
    #: FTS area per kilobyte of storage (mm^2/kB at 22 nm, CACTI-class;
    #: calibrated so 104 kB of FTS across four channels is ~0.5 mm^2).
    fts_area_mm2_per_kb: float = 0.00477
    #: FTS dynamic+leakage power per kilobyte (mW/kB; calibrated so the same
    #: 104 kB consumes ~0.19 mW on average).
    fts_power_mw_per_kb: float = 0.0018
    #: Last-level cache area (mm^2) for the 16 MB LLC of the 8-core system.
    llc_area_mm2: float = 34.4
    #: Average last-level cache power (mW).
    llc_power_mw: float = 267.0
    #: DRAM activation power (mW), for putting the added logic in context.
    activation_power_mw: float = 51.2


@dataclass(frozen=True)
class DRAMAreaOverhead:
    """DRAM-side area overhead of one mechanism."""

    mechanism: str
    #: Added peripheral logic area per bank (um^2).
    peripheral_area_um2_per_bank: float
    #: Added subarray (cache row) area per bank (um^2).
    cache_area_um2_per_bank: float
    #: Total added area as a fraction of the DRAM chip.
    chip_area_fraction: float
    #: Added peripheral power per bank (uW).
    peripheral_power_uw_per_bank: float


@dataclass(frozen=True)
class FTSOverhead:
    """Memory-controller-side tag store overhead."""

    #: Entries per bank.
    entries_per_bank: int
    #: Bits per entry (tag + valid + dirty + benefit).
    bits_per_entry: int
    #: Total storage per channel (kB).
    storage_kb_per_channel: float
    #: Total FTS area across all channels (mm^2).
    area_mm2: float
    #: FTS area as a fraction of the LLC area.
    area_fraction_of_llc: float
    #: Average FTS power (mW).
    power_mw: float
    #: FTS power as a fraction of LLC power.
    power_fraction_of_llc: float


class OverheadModel:
    """Computes Section 8.3's hardware overheads from a configuration."""

    def __init__(self, params: OverheadParams | None = None):
        self._params = params or OverheadParams()

    @property
    def params(self) -> OverheadParams:
        """Cost inputs in use."""
        return self._params

    # ------------------------------------------------------------------
    # DRAM-side overheads.
    # ------------------------------------------------------------------
    def _chip_area_um2(self, config: DRAMConfig) -> float:
        """Approximate DRAM chip area from the subarray count."""
        params = self._params
        cell_area = (config.banks_per_channel * config.subarrays_per_bank
                     * params.slow_subarray_area_um2)
        return cell_area / params.cell_array_area_fraction

    def figaro_overhead(self, config: DRAMConfig) -> DRAMAreaOverhead:
        """Overhead of the FIGARO substrate alone (MUXes and latches)."""
        params = self._params
        per_subarray = (params.column_mux_area_um2 + params.row_mux_area_um2
                        + params.row_latch_area_um2)
        per_subarray_power = (params.column_mux_power_uw
                              + params.row_mux_power_uw
                              + params.row_latch_power_uw)
        subarrays = config.subarrays_per_bank + config.fast_subarrays_per_bank
        peripheral = per_subarray * subarrays
        power = per_subarray_power * subarrays
        chip_fraction = (peripheral * config.banks_per_channel
                         / self._chip_area_um2(config))
        return DRAMAreaOverhead(mechanism="FIGARO",
                                peripheral_area_um2_per_bank=peripheral,
                                cache_area_um2_per_bank=0.0,
                                chip_area_fraction=chip_fraction,
                                peripheral_power_uw_per_bank=power)

    def cache_row_overhead(self, config: DRAMConfig, mechanism: str,
                           fast_subarrays: int,
                           reserved_rows: int = 0) -> DRAMAreaOverhead:
        """Overhead of the in-DRAM cache space itself.

        ``fast_subarrays`` is the number of added fast subarrays per bank
        (FIGCache-Fast: 2, LISA-VILLA: 16); ``reserved_rows`` accounts for
        FIGCache-Slow, which reuses existing rows and therefore only costs
        the capacity it reserves.
        """
        params = self._params
        fast_area = (fast_subarrays * params.slow_subarray_area_um2
                     * params.fast_subarray_area_fraction)
        reserved_area = (reserved_rows / config.rows_per_subarray
                         * params.slow_subarray_area_um2)
        cache_area = fast_area + reserved_area
        chip_fraction = (cache_area * config.banks_per_channel
                         / self._chip_area_um2(config))
        return DRAMAreaOverhead(mechanism=mechanism,
                                peripheral_area_um2_per_bank=0.0,
                                cache_area_um2_per_bank=cache_area,
                                chip_area_fraction=chip_fraction,
                                peripheral_power_uw_per_bank=0.0)

    def mechanism_overheads(self, config: DRAMConfig) -> dict[str, float]:
        """Chip-area fractions of every mechanism, keyed by name."""
        figaro = self.figaro_overhead(config)
        figcache_fast = self.cache_row_overhead(config, "FIGCache-Fast",
                                                fast_subarrays=2)
        figcache_slow = self.cache_row_overhead(config, "FIGCache-Slow",
                                                fast_subarrays=0,
                                                reserved_rows=64)
        lisa_villa = self.cache_row_overhead(config, "LISA-VILLA",
                                             fast_subarrays=16)
        return {
            "FIGARO": figaro.chip_area_fraction,
            "FIGCache-Fast": figcache_fast.chip_area_fraction,
            "FIGCache-Slow": figcache_slow.chip_area_fraction,
            "LISA-VILLA": lisa_villa.chip_area_fraction,
        }

    # ------------------------------------------------------------------
    # Controller-side (FTS) overhead.
    # ------------------------------------------------------------------
    def fts_overhead(self, config: DRAMConfig, cache_rows_per_bank: int = 64,
                     segments_per_row: int = 8, benefit_bits: int = 5,
                     num_channels: int = 4) -> FTSOverhead:
        """FTS storage, area, and power for the given cache configuration."""
        params = self._params
        entries_per_bank = cache_rows_per_bank * segments_per_row
        segment_count = config.regular_rows_per_bank * segments_per_row
        # The paper sizes the tag for 256K segments per bank at 19 bits
        # (bit_length of the count rather than of count - 1).
        tag_bits = max(1, segment_count.bit_length())
        bits_per_entry = tag_bits + benefit_bits + 2
        storage_bits = (entries_per_bank * bits_per_entry
                        * config.banks_per_channel)
        storage_kb = storage_bits / 8.0 / 1024.0
        total_kb = storage_kb * num_channels
        area = total_kb * params.fts_area_mm2_per_kb
        power = total_kb * params.fts_power_mw_per_kb
        return FTSOverhead(
            entries_per_bank=entries_per_bank,
            bits_per_entry=bits_per_entry,
            storage_kb_per_channel=storage_kb,
            area_mm2=area,
            area_fraction_of_llc=area / params.llc_area_mm2,
            power_mw=power,
            power_fraction_of_llc=power / params.llc_power_mw,
        )
