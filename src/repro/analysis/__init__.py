"""Hardware overhead analysis (paper Section 8.3).

Analytical accounting of the DRAM-side and controller-side costs of FIGARO,
FIGCache, and LISA-VILLA: per-subarray multiplexers and latches, fast
subarray area, FIGCache Tag Store (FTS) storage/area/power, and how they
compare to the structures LISA-VILLA needs.
"""

from repro.analysis.overhead import (DRAMAreaOverhead, FTSOverhead,
                                     OverheadModel, OverheadParams)

__all__ = [
    "DRAMAreaOverhead",
    "FTSOverhead",
    "OverheadModel",
    "OverheadParams",
]
