"""Benchmark catalog (the paper's Table 2 equivalents).

The paper evaluates twenty single-thread applications drawn from SPEC
CPU2006, TPC, MediaBench, BioBench, and the Memory Scheduling Championship
suites, split into memory-intensive (>10 LLC misses per kilo-instruction)
and memory-non-intensive (<10 MPKI) groups, plus three multithreaded
applications from PARSEC and SPLASH-2.

This module defines one synthetic workload profile per named application.
The profiles do not claim to reproduce each application's exact behaviour;
they are tuned so that the *category-level* properties that drive the
paper's results hold: intensive profiles generate far more memory traffic
per instruction than non-intensive ones, pointer-chase-style profiles (mcf,
mum, canneal) have irregular segment visit orders, streaming profiles
(libquantum, lbm, bwaves, leslie3d) walk several concurrent arrays, and
transaction-processing profiles (tpcc64, tpch2) have moderate, skewed
reuse.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.workloads.synthetic import (SyntheticTraceConfig,
                                       SyntheticTraceGenerator)
from repro.workloads.trace import TraceRecord

MB = 1024 * 1024


@dataclass(frozen=True)
class WorkloadSpec:
    """A named workload: its intensity class and generator configuration."""

    #: Benchmark name as used in the paper's Table 2.
    name: str
    #: Source suite (informational).
    suite: str
    #: True for the memory-intensive category (>10 MPKI in the paper).
    memory_intensive: bool
    #: Synthetic generator parameters.
    trace_config: SyntheticTraceConfig

    def make_trace(self, num_records: int, seed_offset: int = 0,
                   base_address: int | None = None) -> list[TraceRecord]:
        """Generate this workload's trace.

        ``seed_offset`` lets multiprogrammed mixes run several copies of the
        same benchmark with decorrelated address streams; ``base_address``
        relocates the workload's footprint (one allocation per core).
        """
        config = self.trace_config
        if seed_offset or base_address is not None:
            config = replace(
                config,
                seed=config.seed + seed_offset,
                base_address=(config.base_address if base_address is None
                              else base_address))
        generator = SyntheticTraceGenerator(config)
        return generator.generate(num_records)


def _intensive(name: str, suite: str, seed: int,
               **overrides) -> WorkloadSpec:
    """Template for memory-intensive profiles (sparse compute, big data).

    The active hot window (768 kB by default) is several times larger than
    the scaled LLC (256 kB), so most of the reuse reaches DRAM, but it fits
    comfortably inside the per-channel in-DRAM cache capacity.
    """
    config = SyntheticTraceConfig(
        mean_bubbles=25.0,
        hot_segments=8192,
        hot_rows=8192,
        hot_window_segments=512,
        hot_window_drift=0.01,
        hot_jump_probability=0.10,
        hot_burst_blocks=6,
        hot_fraction=0.70,
        stream_fraction=0.20,
        concurrent_streams=4,
        random_fraction=0.10,
        working_set_bytes=256 * MB,
        write_fraction=0.25,
        seed=seed,
    )
    config = replace(config, **overrides)
    return WorkloadSpec(name=name, suite=suite, memory_intensive=True,
                        trace_config=config)


def _non_intensive(name: str, suite: str, seed: int,
                   **overrides) -> WorkloadSpec:
    """Template for memory-non-intensive profiles (compute bound).

    Long bubble bursts between memory instructions and a smaller hot window
    keep the LLC miss rate per kilo-instruction below the paper's 10-MPKI
    intensity boundary.
    """
    config = SyntheticTraceConfig(
        mean_bubbles=350.0,
        hot_segments=2048,
        hot_rows=2048,
        hot_window_segments=384,
        hot_window_drift=0.01,
        hot_jump_probability=0.15,
        hot_burst_blocks=6,
        hot_fraction=0.80,
        stream_fraction=0.15,
        concurrent_streams=2,
        random_fraction=0.05,
        working_set_bytes=64 * MB,
        write_fraction=0.20,
        seed=seed,
    )
    config = replace(config, **overrides)
    return WorkloadSpec(name=name, suite=suite, memory_intensive=False,
                        trace_config=config)


#: The twenty single-thread benchmarks of the paper's Table 2.
BENCHMARKS: dict[str, WorkloadSpec] = {
    spec.name: spec for spec in [
        # ----------------------- memory intensive -----------------------
        _intensive("zeusmp", "SPEC CPU2006", seed=101,
                   stream_fraction=0.35, hot_fraction=0.55,
                   concurrent_streams=6),
        _intensive("leslie3d", "SPEC CPU2006", seed=102,
                   stream_fraction=0.40, hot_fraction=0.50,
                   concurrent_streams=8, hot_burst_blocks=8),
        _intensive("mcf", "SPEC CPU2006", seed=103,
                   random_fraction=0.15, hot_fraction=0.70,
                   stream_fraction=0.15, hot_burst_blocks=3,
                   hot_jump_probability=0.45, mean_bubbles=18.0),
        _intensive("GemsFDTD", "SPEC CPU2006", seed=104,
                   stream_fraction=0.35, hot_fraction=0.55,
                   concurrent_streams=6, working_set_bytes=384 * MB),
        _intensive("libquantum", "SPEC CPU2006", seed=105,
                   stream_fraction=0.55, hot_fraction=0.40,
                   random_fraction=0.05, concurrent_streams=2,
                   hot_burst_blocks=10),
        _intensive("bwaves", "SPEC CPU2006", seed=106,
                   stream_fraction=0.45, hot_fraction=0.45,
                   random_fraction=0.10, concurrent_streams=6,
                   write_fraction=0.30),
        _intensive("lbm", "SPEC CPU2006", seed=107,
                   stream_fraction=0.50, hot_fraction=0.40,
                   random_fraction=0.10, concurrent_streams=8,
                   write_fraction=0.40, mean_bubbles=20.0),
        _intensive("com", "MSC", seed=108,
                   hot_segments=8192, hot_rows=8192,
                   hot_window_segments=1024, mean_bubbles=22.0),
        _intensive("tigr", "BioBench", seed=109,
                   random_fraction=0.12, hot_fraction=0.70,
                   stream_fraction=0.18, hot_burst_blocks=4,
                   hot_jump_probability=0.25),
        _intensive("mum", "BioBench", seed=110,
                   random_fraction=0.15, hot_fraction=0.70,
                   stream_fraction=0.15, hot_burst_blocks=3,
                   hot_jump_probability=0.40, mean_bubbles=20.0),
        # --------------------- memory non-intensive ---------------------
        _non_intensive("h264ref", "SPEC CPU2006", seed=201,
                       stream_fraction=0.25, hot_fraction=0.70),
        _non_intensive("bzip2", "SPEC CPU2006", seed=202,
                       mean_bubbles=300.0, hot_burst_blocks=8),
        _non_intensive("gromacs", "SPEC CPU2006", seed=203,
                       mean_bubbles=420.0),
        _non_intensive("gcc", "SPEC CPU2006", seed=204,
                       random_fraction=0.10, hot_fraction=0.75,
                       mean_bubbles=280.0, hot_jump_probability=0.3),
        _non_intensive("bfs", "MSC", seed=205,
                       random_fraction=0.20, hot_fraction=0.70,
                       stream_fraction=0.10, mean_bubbles=200.0,
                       hot_jump_probability=0.4),
        _non_intensive("sandygrep", "MSC", seed=206,
                       stream_fraction=0.40, hot_fraction=0.55,
                       random_fraction=0.05, mean_bubbles=250.0),
        _non_intensive("wc-8443", "MSC", seed=207,
                       stream_fraction=0.45, hot_fraction=0.50,
                       random_fraction=0.05, mean_bubbles=320.0),
        _non_intensive("sjeng", "SPEC CPU2006", seed=208,
                       random_fraction=0.15, hot_fraction=0.75,
                       stream_fraction=0.10, mean_bubbles=380.0,
                       hot_jump_probability=0.35),
        _non_intensive("tpcc64", "TPC", seed=209,
                       hot_segments=3072, hot_rows=3072,
                       hot_window_segments=640, mean_bubbles=180.0,
                       write_fraction=0.35, hot_jump_probability=0.3),
        _non_intensive("tpch2", "TPC", seed=210,
                       stream_fraction=0.35, hot_fraction=0.60,
                       random_fraction=0.05, mean_bubbles=220.0,
                       concurrent_streams=4),
    ]
}

#: Multithreaded applications evaluated by the paper (PARSEC / SPLASH-2).
MULTITHREADED_BENCHMARKS: dict[str, WorkloadSpec] = {
    spec.name: spec for spec in [
        _intensive("canneal", "PARSEC", seed=301,
                   random_fraction=0.18, hot_fraction=0.67,
                   stream_fraction=0.15, hot_jump_probability=0.4),
        _intensive("fluidanimate", "PARSEC", seed=302,
                   stream_fraction=0.30, hot_fraction=0.60,
                   random_fraction=0.10, concurrent_streams=6,
                   mean_bubbles=60.0),
        _intensive("radix", "SPLASH-2", seed=303,
                   stream_fraction=0.50, hot_fraction=0.40,
                   random_fraction=0.10, concurrent_streams=8,
                   write_fraction=0.45, mean_bubbles=40.0),
    ]
}


def benchmark_names(intensive_only: bool | None = None) -> list[str]:
    """Names of the single-thread benchmarks, optionally filtered by class."""
    names = []
    for name, spec in BENCHMARKS.items():
        if intensive_only is None or spec.memory_intensive == intensive_only:
            names.append(name)
    return names


def intensive_benchmarks() -> list[WorkloadSpec]:
    """All memory-intensive single-thread workload specs."""
    return [spec for spec in BENCHMARKS.values() if spec.memory_intensive]


def non_intensive_benchmarks() -> list[WorkloadSpec]:
    """All memory-non-intensive single-thread workload specs."""
    return [spec for spec in BENCHMARKS.values() if not spec.memory_intensive]


def get_benchmark(name: str) -> WorkloadSpec:
    """Look up a benchmark by name (single-thread or multithreaded)."""
    if name in BENCHMARKS:
        return BENCHMARKS[name]
    if name in MULTITHREADED_BENCHMARKS:
        return MULTITHREADED_BENCHMARKS[name]
    raise KeyError(f"unknown benchmark {name!r}; known: "
                   f"{sorted(BENCHMARKS) + sorted(MULTITHREADED_BENCHMARKS)}")
