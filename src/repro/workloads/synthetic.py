"""Synthetic memory-trace generation.

The generator produces address streams with the locality structure the
paper's analysis is built on: applications touch only small *row segments*
(about 1 kB) of each DRAM row they visit, those segments are scattered over
many rows and banks, and the working set of actively reused segments is
larger than the on-chip caches but far smaller than an in-DRAM cache.  Under
those conditions row-granularity in-DRAM caches waste most of their space,
while segment-granularity caching (FIGCache) both saves fast-region space
and turns scattered accesses into row-buffer hits by packing segments that
are accessed close together in time into the same cache row.

Three pattern components can be mixed:

* ``hot`` — repeated, slightly irregular iteration over a *window* of hot
  segments (the current phase of the application).  Each visit to a segment
  issues a short sequential burst of blocks.  Because the window exceeds the
  last-level cache, the reuse reaches DRAM; because the segments are
  scattered across many rows, consecutive same-bank accesses conflict in a
  conventional system.  The iteration order repeats from pass to pass (with
  a configurable probability of jumping to a random position), which is what
  gives temporally-adjacent segments their repeatable adjacency.
* ``stream`` — several concurrent sequential streams (e.g. the multiple
  arrays of a stencil code), interleaved access by access.  Streams have
  high spatial locality but no reuse.
* ``random`` — pointer-chase style uniform accesses over the full working
  set (no locality).

The mix fractions, window size, memory intensity (bubbles between memory
instructions), and write fraction are the knobs the workload catalog
(Table 2 equivalents) uses to define named benchmarks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.workloads.trace import TraceRecord


@dataclass(frozen=True)
class SyntheticTraceConfig:
    """Parameters controlling a synthetic address stream."""

    #: Mean non-memory instructions between memory instructions.  Together
    #: with the cache hit rate this sets the LLC MPKI (memory intensity).
    mean_bubbles: float = 30.0
    #: Total number of hot row segments in the workload (the pool the active
    #: window drifts over).
    hot_segments: int = 8192
    #: Size of one hot segment in bytes (1 kB = one FIGCache row segment).
    hot_segment_bytes: int = 1024
    #: Number of distinct DRAM rows the hot segments are scattered across.
    #: When smaller than ``hot_segments``, several segments share a row;
    #: when equal, every hot segment lives in its own row (worst case for
    #: row-granularity caching).
    hot_rows: int = 8192
    #: Number of segments in the actively reused window (the current phase).
    #: Its byte size (``hot_window_segments * hot_segment_bytes``) should
    #: exceed the LLC so the reuse reaches DRAM.
    hot_window_segments: int = 768
    #: Probability, per hot segment visit, that the window slides forward by
    #: one segment (slow phase drift).
    hot_window_drift: float = 0.01
    #: Probability that the next segment visit jumps to a random window
    #: position instead of following the iteration order.  0 gives a fully
    #: repeatable scan (stencil/array codes); larger values approximate
    #: pointer chasing.
    hot_jump_probability: float = 0.1
    #: Blocks accessed per segment visit (the sequential burst length).
    hot_burst_blocks: int = 6
    #: Fraction of accesses going to hot segments.
    hot_fraction: float = 0.70
    #: Fraction of accesses belonging to the concurrent sequential streams.
    stream_fraction: float = 0.20
    #: Number of concurrent streams (arrays walked in lockstep).
    concurrent_streams: int = 4
    #: Length of one stream run in blocks before it restarts elsewhere.
    stream_length_blocks: int = 512
    #: Fraction of accesses that are uniformly random over the working set.
    random_fraction: float = 0.10
    #: Total working-set span in bytes for streaming/random components.
    working_set_bytes: int = 256 * 1024 * 1024
    #: Fraction of memory instructions that are stores.
    write_fraction: float = 0.25
    #: Cache block size (addresses are generated at block granularity).
    block_size_bytes: int = 64
    #: DRAM row size (used to scatter hot segments across rows).
    row_size_bytes: int = 8192
    #: Base byte address of the workload's allocation.
    base_address: int = 0
    #: Random seed (the generator is fully deterministic given the seed).
    seed: int = 1

    def validate(self) -> None:
        """Raise ``ValueError`` for inconsistent parameters."""
        total = self.hot_fraction + self.stream_fraction + self.random_fraction
        if abs(total - 1.0) > 1e-6:
            raise ValueError(
                f"pattern fractions must sum to 1.0, got {total}")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ValueError("write_fraction must be in [0, 1]")
        if self.hot_segments <= 0 or self.hot_rows <= 0:
            raise ValueError("hot_segments and hot_rows must be positive")
        if self.hot_window_segments <= 0 \
                or self.hot_window_segments > self.hot_segments:
            raise ValueError(
                "hot_window_segments must be positive and no larger than "
                "hot_segments")
        if not 0.0 <= self.hot_window_drift <= 1.0:
            raise ValueError("hot_window_drift must be in [0, 1]")
        if not 0.0 <= self.hot_jump_probability <= 1.0:
            raise ValueError("hot_jump_probability must be in [0, 1]")
        if self.hot_segment_bytes < self.block_size_bytes:
            raise ValueError("a hot segment must hold at least one block")
        if self.hot_burst_blocks <= 0:
            raise ValueError("hot_burst_blocks must be positive")
        if self.concurrent_streams <= 0 or self.stream_length_blocks <= 0:
            raise ValueError(
                "concurrent_streams and stream_length_blocks must be positive")
        if self.mean_bubbles < 0:
            raise ValueError("mean_bubbles must be non-negative")

    @property
    def hot_window_bytes(self) -> int:
        """Byte size of the actively reused window."""
        return self.hot_window_segments * self.hot_segment_bytes


class SyntheticTraceGenerator:
    """Deterministic generator of synthetic memory traces."""

    def __init__(self, config: SyntheticTraceConfig):
        config.validate()
        self._config = config
        self._rng = random.Random(config.seed)
        self._hot_segment_bases = self._build_hot_segment_bases()
        #: Position of the window within the segment pool.
        self._window_start = 0
        #: Position of the iteration cursor within the window.
        self._scan_position = 0
        #: Remaining blocks of the current segment visit, and its state.
        self._burst_remaining = 0
        self._burst_segment = 0
        self._burst_block = 0
        #: Concurrent stream state: (base block index, blocks consumed).
        self._streams = [self._new_stream() for _ in
                         range(config.concurrent_streams)]
        self._next_stream = 0

    @property
    def config(self) -> SyntheticTraceConfig:
        """The generator configuration."""
        return self._config

    # ------------------------------------------------------------------
    # Construction helpers.
    # ------------------------------------------------------------------
    def _build_hot_segment_bases(self) -> list[int]:
        """Place each hot segment at a (row, in-row offset) location.

        Segments are distributed round-robin over ``hot_rows`` rows spread
        across the working set, and each lands at a random segment-aligned
        offset within its row.  Spreading the rows widely makes the segments
        map to many different banks and rows, which is what creates the
        row-buffer interference FIGCache relieves.
        """
        config = self._config
        rows_span = max(1, config.working_set_bytes // config.row_size_bytes)
        row_stride = max(1, rows_span // config.hot_rows)
        segments_per_row = max(1, config.row_size_bytes
                               // config.hot_segment_bytes)
        bases = []
        for index in range(config.hot_segments):
            row_index = (index % config.hot_rows) * row_stride
            offset_slot = self._rng.randrange(segments_per_row)
            base = (config.base_address
                    + row_index * config.row_size_bytes
                    + offset_slot * config.hot_segment_bytes)
            bases.append(base)
        return bases

    def _new_stream(self) -> list[int]:
        """Start a stream at a random block-aligned location."""
        config = self._config
        blocks = config.working_set_bytes // config.block_size_bytes
        return [self._rng.randrange(blocks), 0]

    # ------------------------------------------------------------------
    # Hot (reused, scattered) component.
    # ------------------------------------------------------------------
    def _begin_segment_visit(self) -> None:
        """Advance the scan to the next segment and start its burst."""
        config = self._config
        if self._rng.random() < config.hot_jump_probability:
            self._scan_position = self._rng.randrange(
                config.hot_window_segments)
        else:
            self._scan_position = (self._scan_position + 1) \
                % config.hot_window_segments
        if self._rng.random() < config.hot_window_drift:
            self._window_start = (self._window_start + 1) % config.hot_segments

        segment = (self._window_start + self._scan_position) \
            % config.hot_segments
        blocks_per_segment = config.hot_segment_bytes // config.block_size_bytes
        burst = min(config.hot_burst_blocks, blocks_per_segment)
        self._burst_segment = segment
        self._burst_block = self._rng.randrange(
            max(1, blocks_per_segment - burst + 1))
        self._burst_remaining = burst

    def _next_hot_address(self) -> int:
        config = self._config
        if self._burst_remaining <= 0:
            self._begin_segment_visit()
        address = (self._hot_segment_bases[self._burst_segment]
                   + self._burst_block * config.block_size_bytes)
        self._burst_block += 1
        self._burst_remaining -= 1
        return address

    # ------------------------------------------------------------------
    # Streaming component.
    # ------------------------------------------------------------------
    def _next_stream_address(self) -> int:
        config = self._config
        stream = self._streams[self._next_stream]
        self._next_stream = (self._next_stream + 1) % len(self._streams)
        if stream[1] >= config.stream_length_blocks:
            stream[0] = self._new_stream()[0]
            stream[1] = 0
        blocks = config.working_set_bytes // config.block_size_bytes
        block = (stream[0] + stream[1]) % blocks
        stream[1] += 1
        return config.base_address + block * config.block_size_bytes

    # ------------------------------------------------------------------
    # Random component.
    # ------------------------------------------------------------------
    def _next_random_address(self) -> int:
        config = self._config
        blocks = config.working_set_bytes // config.block_size_bytes
        return config.base_address \
            + self._rng.randrange(blocks) * config.block_size_bytes

    # ------------------------------------------------------------------
    # Trace generation.
    # ------------------------------------------------------------------
    def _next_address(self) -> int:
        draw = self._rng.random()
        config = self._config
        if draw < config.hot_fraction:
            return self._next_hot_address()
        if draw < config.hot_fraction + config.stream_fraction:
            return self._next_stream_address()
        return self._next_random_address()

    def _next_bubbles(self) -> int:
        mean = self._config.mean_bubbles
        if mean <= 0:
            return 0
        # An exponential draw keeps the bubble counts integral and
        # non-negative while matching the requested mean; the cap avoids
        # pathological multi-million-instruction gaps.
        return min(int(self._rng.expovariate(1.0 / mean)), int(mean * 10))

    def generate(self, num_records: int) -> list[TraceRecord]:
        """Generate ``num_records`` trace records."""
        if num_records < 0:
            raise ValueError("num_records must be non-negative")
        records = []
        for _ in range(num_records):
            records.append(TraceRecord(
                bubbles=self._next_bubbles(),
                address=self._next_address(),
                is_write=self._rng.random() < self._config.write_fraction))
        return records
