"""Multiprogrammed (8-core) workload construction.

The paper evaluates twenty eight-core multiprogrammed workloads, grouped by
the fraction of memory-intensive applications in the mix: 25 %, 50 %, 75 %,
and 100 % (five workloads per group).  This module builds the equivalent
mixes deterministically from the benchmark catalog: each core runs one named
benchmark with its own address-space slice and a decorrelated seed.

It also builds multithreaded-style workloads, where every core runs the same
profile over a *shared* allocation (overlapping footprints), mimicking the
PARSEC/SPLASH-2 applications the paper reports separately.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.workloads.catalog import (MULTITHREADED_BENCHMARKS, WorkloadSpec,
                                     intensive_benchmarks,
                                     non_intensive_benchmarks)
from repro.workloads.trace import TraceRecord

#: Address-space slice given to each core of a multiprogrammed mix.  The
#: slices keep per-core footprints disjoint, like separate OS processes.
CORE_ADDRESS_STRIDE = 1 << 32


@dataclass(frozen=True)
class MultiprogrammedWorkload:
    """One multi-core workload: a named mix of per-core benchmarks."""

    #: Workload name, e.g. ``mix-75pct-2``.
    name: str
    #: Fraction of cores running memory-intensive benchmarks (0.25 .. 1.0).
    intensive_fraction: float
    #: The benchmark assigned to each core, in core order.
    benchmarks: tuple[WorkloadSpec, ...]
    #: Whether all cores share one allocation (multithreaded style).
    shared_address_space: bool = False

    @property
    def num_cores(self) -> int:
        """Number of cores in the mix."""
        return len(self.benchmarks)

    def make_traces(self, records_per_core: int) -> list[list[TraceRecord]]:
        """Generate one trace per core."""
        traces = []
        for core_id, spec in enumerate(self.benchmarks):
            base = 0 if self.shared_address_space \
                else core_id * CORE_ADDRESS_STRIDE
            # Shared-address-space workloads intentionally keep the same base
            # but still decorrelate the request interleaving across threads.
            traces.append(spec.make_trace(records_per_core,
                                          seed_offset=17 * core_id,
                                          base_address=base))
        return traces


def make_multiprogrammed_workload(intensive_fraction: float, index: int,
                                  num_cores: int = 8,
                                  seed: int = 42) -> MultiprogrammedWorkload:
    """Build one eight-core mix with the requested intensive fraction.

    ``index`` selects one of the deterministic mixes within a category (the
    paper uses five per category).
    """
    if not 0.0 <= intensive_fraction <= 1.0:
        raise ValueError("intensive_fraction must be within [0, 1]")
    num_intensive = round(intensive_fraction * num_cores)
    rng = random.Random(seed * 1000 + index * 17
                        + int(intensive_fraction * 100))
    intensive_pool = intensive_benchmarks()
    non_intensive_pool = non_intensive_benchmarks()
    chosen = [rng.choice(intensive_pool) for _ in range(num_intensive)]
    chosen += [rng.choice(non_intensive_pool)
               for _ in range(num_cores - num_intensive)]
    rng.shuffle(chosen)
    name = f"mix-{int(intensive_fraction * 100)}pct-{index}"
    return MultiprogrammedWorkload(name=name,
                                   intensive_fraction=intensive_fraction,
                                   benchmarks=tuple(chosen))


def make_workload_suite(num_cores: int = 8, mixes_per_category: int = 5,
                        seed: int = 42) -> list[MultiprogrammedWorkload]:
    """Build the paper's twenty-workload multiprogrammed suite.

    Four categories (25 %, 50 %, 75 %, 100 % memory intensive) with
    ``mixes_per_category`` workloads each.
    """
    suite = []
    for fraction in (0.25, 0.50, 0.75, 1.00):
        for index in range(mixes_per_category):
            suite.append(make_multiprogrammed_workload(
                fraction, index, num_cores=num_cores, seed=seed))
    return suite


def make_multithreaded_workload(name: str,
                                num_cores: int = 8) -> MultiprogrammedWorkload:
    """Build a shared-address-space workload from a multithreaded profile."""
    if name not in MULTITHREADED_BENCHMARKS:
        raise KeyError(f"unknown multithreaded benchmark {name!r}; known: "
                       f"{sorted(MULTITHREADED_BENCHMARKS)}")
    spec = MULTITHREADED_BENCHMARKS[name]
    return MultiprogrammedWorkload(name=f"mt-{name}",
                                   intensive_fraction=1.0,
                                   benchmarks=tuple([spec] * num_cores),
                                   shared_address_space=True)
