"""Trace record format and helpers.

A trace is a list of :class:`TraceRecord` entries.  Each record represents a
burst of ``bubbles`` non-memory instructions followed by exactly one memory
instruction (a load or a store to ``address``).  This is the usual compact
format for memory-system studies: the non-memory instructions only matter
for their issue bandwidth, so they do not need individual records.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One memory instruction preceded by a burst of non-memory work."""

    #: Number of non-memory instructions issued before the memory access.
    bubbles: int
    #: Byte address touched by the memory instruction.
    address: int
    #: True for stores, False for loads.
    is_write: bool

    def __post_init__(self) -> None:
        if self.bubbles < 0:
            raise ValueError("bubbles must be non-negative")
        if self.address < 0:
            raise ValueError("address must be non-negative")

    @property
    def instructions(self) -> int:
        """Instructions represented by this record (bubbles + the access)."""
        return self.bubbles + 1


def trace_statistics(trace: list[TraceRecord],
                     block_size_bytes: int = 64,
                     row_size_bytes: int = 8192) -> dict:
    """Summarise a trace: instruction counts, footprint, and write share.

    The returned dictionary is used by tests and by the workload catalog to
    check that generated traces land in the intended memory-intensity
    category.
    """
    if block_size_bytes <= 0 or row_size_bytes <= 0:
        raise ValueError("block and row sizes must be positive")
    instructions = sum(record.instructions for record in trace)
    memory_accesses = len(trace)
    writes = sum(1 for record in trace if record.is_write)
    blocks = {record.address // block_size_bytes for record in trace}
    rows = {record.address // row_size_bytes for record in trace}
    return {
        "instructions": instructions,
        "memory_accesses": memory_accesses,
        "writes": writes,
        "write_fraction": writes / memory_accesses if memory_accesses else 0.0,
        "accesses_per_kilo_instruction": (
            1000.0 * memory_accesses / instructions if instructions else 0.0),
        "unique_blocks": len(blocks),
        "unique_rows": len(rows),
        "footprint_bytes": len(blocks) * block_size_bytes,
    }
