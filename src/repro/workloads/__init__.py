"""Workload and trace generation.

The paper drives its simulator with Pin-collected traces of SPEC CPU2006,
TPC, MediaBench, BioBench, and Memory Scheduling Championship applications
(Table 2).  Those traces are not redistributable, so this package provides
deterministic synthetic generators whose profiles are tuned to reproduce the
properties the paper's analysis depends on:

* memory intensity (LLC misses per kilo-instruction) above or below the
  10-MPKI intensive/non-intensive boundary;
* hot *row segments* spread over many DRAM rows, so that only a fraction of
  each row is live while it is open (the behaviour FIGCache exploits);
* a mix of streaming, strided, pointer-chasing, and zipfian access patterns;
* read/write mixes typical of the named applications.

See DESIGN.md for the substitution rationale.
"""

from repro.workloads.catalog import (BENCHMARKS, WorkloadSpec,
                                     benchmark_names, get_benchmark,
                                     intensive_benchmarks,
                                     non_intensive_benchmarks)
from repro.workloads.multiprogram import (MultiprogrammedWorkload,
                                          make_workload_suite,
                                          make_multiprogrammed_workload)
from repro.workloads.synthetic import SyntheticTraceGenerator
from repro.workloads.trace import TraceRecord, trace_statistics

__all__ = [
    "BENCHMARKS",
    "MultiprogrammedWorkload",
    "SyntheticTraceGenerator",
    "TraceRecord",
    "WorkloadSpec",
    "benchmark_names",
    "get_benchmark",
    "intensive_benchmarks",
    "make_multiprogrammed_workload",
    "make_workload_suite",
    "non_intensive_benchmarks",
    "trace_statistics",
]
