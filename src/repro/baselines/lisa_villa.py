"""LISA-VILLA: the state-of-the-art in-DRAM cache baseline.

LISA-VILLA (Chang et al., HPCA 2016) caches *entire DRAM rows* in fast
subarrays, relocating rows between subarrays over wide inter-subarray links.
The relocation latency is distance dependent: a row must be moved hop by hop
through the local row buffers of the subarrays between the source and the
destination.  To bound that distance, LISA-VILLA interleaves many fast
subarrays (16 per bank in the paper's comparison) among the slow subarrays.

This reproduction models LISA-VILLA with the following behaviour, matching
how the paper characterises it (Sections 3 and 8):

* caching granularity is a full DRAM row;
* the in-DRAM cache has 512 rows per bank (16 fast subarrays x 32 rows);
* a cached row is served with fast-subarray timings, but its row-buffer
  locality is unchanged (the cached row holds exactly the original row);
* relocation cost grows with the hop distance between the source subarray
  and its nearest fast subarray;
* replacement is benefit based at row granularity, insertion is on-miss.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.mechanism import CachingMechanism, ServiceResult
from repro.dram.address import DecodedAddress
from repro.dram.channel import Channel
from repro.dram.config import DRAMConfig


@dataclass(frozen=True)
class LISAVillaConfig:
    """Configuration of the LISA-VILLA baseline."""

    #: In-DRAM cache rows per bank (16 fast subarrays x 32 rows each).
    cache_rows_per_bank: int = 512
    #: Number of fast subarrays interleaved in each bank.
    fast_subarrays_per_bank: int = 16
    #: Latency of moving a row buffer one subarray hop over the LISA links.
    hop_latency_ns: float = 8.0
    #: Benefit counter width (same 5-bit counters as FIGCache).
    benefit_bits: int = 5

    def validate(self, dram: DRAMConfig) -> None:
        """Check that the DRAM device provides the required fast rows."""
        if dram.fast_rows_per_bank < self.cache_rows_per_bank:
            raise ValueError(
                f"LISA-VILLA needs {self.cache_rows_per_bank} fast rows per "
                f"bank but the DRAM configuration provides "
                f"{dram.fast_rows_per_bank}")


@dataclass(slots=True)
class _RowEntry:
    """Tag-store entry for one cached row."""

    cache_slot: int
    source_row: int
    dirty: bool = False
    benefit: int = 0


@dataclass(slots=True)
class _BankState:
    """Per-bank cache state for LISA-VILLA."""

    #: Map from source row to its tag entry.
    entries: dict[int, _RowEntry]
    #: Cache slots (0 .. cache_rows_per_bank - 1) not currently used.
    free_slots: list[int]
    #: Reverse map from cache slot to source row.
    slot_to_row: dict[int, int]


class LISAVillaMechanism(CachingMechanism):
    """Row-granularity in-DRAM cache with distance-dependent relocation."""

    name = "LISA-VILLA"

    def __init__(self, dram_config: DRAMConfig,
                 config: LISAVillaConfig | None = None):
        super().__init__()
        self._dram = dram_config
        self._cfg = config or LISAVillaConfig()
        self._cfg.validate(dram_config)
        self._benefit_max = (1 << self._cfg.benefit_bits) - 1
        self._hop_cycles = dram_config.slow_timing_set().cycles(
            self._cfg.hop_latency_ns)
        # Hot-path constants: the first fast-region row id (cache slot ``s``
        # lives at row ``base + s``), the rows per regular subarray, and the
        # hop distance per regular subarray (see :meth:`hop_distance`),
        # precomputed so insertions do no per-call layout arithmetic.
        self._fast_row_base = dram_config.regular_rows_per_bank
        self._rows_per_subarray = dram_config.rows_per_subarray
        period = max(1, dram_config.subarrays_per_bank
                     // self._cfg.fast_subarrays_per_bank)
        self._hops_by_subarray = [
            min(period - (subarray % period), (subarray % period) + 1)
            for subarray in range(dram_config.subarrays_per_bank)]
        #: Per-bank states, eagerly built at system-assembly time.
        self._banks: dict[int, _BankState] = {
            flat_bank: _BankState(
                entries={},
                free_slots=list(range(self._cfg.cache_rows_per_bank)),
                slot_to_row={})
            for flat_bank in range(dram_config.banks_per_channel)}

    # ------------------------------------------------------------------
    # Configuration accessors.
    # ------------------------------------------------------------------
    @property
    def config(self) -> LISAVillaConfig:
        """The LISA-VILLA configuration."""
        return self._cfg

    def hop_distance(self, source_row: int) -> int:
        """Hops between the source row's subarray and its nearest fast subarray.

        The paper's LISA-VILLA interleaves ``fast_subarrays_per_bank`` fast
        subarrays evenly among the regular subarrays, so the worst-case
        distance is half the interleaving period and the average is a
        quarter of it.  The modelled physical layout places one fast subarray
        after every ``subarrays_per_bank / fast_subarrays_per_bank`` regular
        subarrays.
        """
        period = max(1, self._dram.subarrays_per_bank
                     // self._cfg.fast_subarrays_per_bank)
        subarray = self._dram.subarray_of_row(source_row)
        position = subarray % period
        # Distance to the fast subarray at the end of this group, or the one
        # at the end of the previous group, whichever is closer.
        to_next = period - position
        to_previous = position + 1
        return min(to_next, to_previous)

    def relocation_transfer_cycles(self, source_row: int) -> int:
        """Transfer cycles for relocating a full row from ``source_row``."""
        if source_row < self._fast_row_base:
            hops = self._hops_by_subarray[source_row
                                          // self._rows_per_subarray]
            return hops * self._hop_cycles
        return self.hop_distance(source_row) * self._hop_cycles

    # ------------------------------------------------------------------
    # CachingMechanism interface.
    # ------------------------------------------------------------------
    def effective_row(self, channel: Channel, decoded: DecodedAddress,
                      flat_bank: int) -> int:
        state = self._banks.get(flat_bank)
        if state is None:
            state = self._bank_state(flat_bank)
        row = decoded.row
        entry = state.entries.get(row)
        if entry is None:
            return row
        if not entry.dirty and channel.bank(flat_bank).open_row == row:
            # The original row is still open and the cached copy is clean;
            # serving from the open row is a row hit (same optimization as
            # FIGCache's row-buffer-aware redirection, applied for fairness).
            return row
        return self._fast_row_base + entry.cache_slot

    def service(self, channel: Channel, now: int, decoded: DecodedAddress,
                flat_bank: int, is_write: bool) -> ServiceResult:
        state = self._banks.get(flat_bank)
        if state is None:
            state = self._bank_state(flat_bank)
        self.stats.cache_lookups += 1
        row = decoded.row
        entry = state.entries.get(row)

        if entry is not None:
            self.stats.cache_hits += 1
            if entry.benefit < self._benefit_max:
                entry.benefit += 1
            serve_from_source = (not is_write and not entry.dirty
                                 and channel.bank(flat_bank).open_row == row)
            if is_write:
                entry.dirty = True
            cache_row = row if serve_from_source \
                else self._fast_row_base + entry.cache_slot
            access = channel.access(now, flat_bank, cache_row, is_write)
            # No relocation on a hit, so the access result already carries
            # the bank's post-access readiness.
            return ServiceResult(access.completion_cycle,
                                 access.bank_ready_cycle, access.outcome,
                                 True, access.served_fast, 0)

        access = channel.access(now, flat_bank, row, is_write)
        relocation_cycles = self._insert_row(channel, access.completion_cycle,
                                             flat_bank, state, row,
                                             dirty=is_write)
        # The insertion relocation occupies the bank after the access.
        return ServiceResult(access.completion_cycle,
                             channel.bank(flat_bank).ready_for_next,
                             access.outcome, False, access.served_fast,
                             relocation_cycles)

    # ------------------------------------------------------------------
    # Cache management.
    # ------------------------------------------------------------------
    def _insert_row(self, channel: Channel, now: int, flat_bank: int,
                    state: _BankState, source_row: int, dirty: bool) -> int:
        """Relocate a full row into the cache; returns relocation cycles."""
        relocation_cycles = 0
        current = now

        if state.free_slots:
            slot = state.free_slots.pop()
        else:
            slot, writeback_cycles, current = self._evict_row(
                channel, current, flat_bank, state)
            relocation_cycles += writeback_cycles

        transfer = self.relocation_transfer_cycles(source_row)
        outcome = channel.bulk_relocate(current, flat_bank, source_row,
                                        self._dram.fast_region_row(slot),
                                        transfer, keep_source_open=True)
        relocation_cycles += outcome.completion_cycle - outcome.start_cycle
        self.stats.relocation_operations += 1
        self.stats.relocation_cycles += relocation_cycles
        self.stats.insertions += 1

        state.entries[source_row] = _RowEntry(cache_slot=slot,
                                              source_row=source_row,
                                              dirty=dirty, benefit=1)
        state.slot_to_row[slot] = source_row
        if self.tracer is not None:
            self.tracer.mechanism_event(
                outcome.completion_cycle, channel.channel_id, flat_bank,
                "villa-insert",
                {"source_row": source_row, "slot": slot, "dirty": dirty,
                 "hops": transfer // self._hop_cycles
                         if self._hop_cycles else 0,
                 "relocation_cycles": relocation_cycles})
        return relocation_cycles

    def _evict_row(self, channel: Channel, now: int, flat_bank: int,
                   state: _BankState) -> tuple[int, int, int]:
        """Evict the lowest-benefit cached row; returns (slot, cycles, time)."""
        # Manual argmin over (benefit, cache_slot): this scan runs once per
        # eviction over every cached row, and a key-lambda ``min`` costs a
        # call plus a tuple per entry.
        victim_row = None
        best_benefit = best_slot = 0
        for entry in state.entries.values():
            benefit = entry.benefit
            if victim_row is None or benefit < best_benefit \
                    or (benefit == best_benefit
                        and entry.cache_slot < best_slot):
                victim_row = entry
                best_benefit = benefit
                best_slot = entry.cache_slot
        slot = victim_row.cache_slot
        del state.entries[victim_row.source_row]
        del state.slot_to_row[slot]
        self.stats.evictions += 1

        writeback_cycles = 0
        current = now
        if victim_row.dirty:
            transfer = self.relocation_transfer_cycles(victim_row.source_row)
            outcome = channel.bulk_relocate(
                current, flat_bank, self._dram.fast_region_row(slot),
                victim_row.source_row, transfer)
            writeback_cycles = outcome.completion_cycle - outcome.start_cycle
            current = outcome.completion_cycle
            self.stats.relocation_operations += 1
            self.stats.dirty_writebacks += 1
        if self.tracer is not None:
            self.tracer.mechanism_event(
                current, channel.channel_id, flat_bank, "villa-evict",
                {"source_row": victim_row.source_row, "slot": slot,
                 "dirty": victim_row.dirty,
                 "writeback_cycles": writeback_cycles})
        return slot, writeback_cycles, current

    def _bank_state(self, flat_bank: int) -> _BankState:
        state = self._banks.get(flat_bank)
        if state is None:
            state = _BankState(entries={},
                               free_slots=list(
                                   range(self._cfg.cache_rows_per_bank)),
                               slot_to_row={})
            self._banks[flat_bank] = state
        return state
