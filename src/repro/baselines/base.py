"""Base configuration: conventional DDR4 with no in-DRAM cache."""

from __future__ import annotations

from repro.core.mechanism import CachingMechanism, ServiceResult
from repro.dram.address import DecodedAddress
from repro.dram.channel import Channel


class BaseMechanism(CachingMechanism):
    """Serve every request from its original row; no caching, no relocation.

    This is both the paper's *Base* configuration (on a DRAM device with no
    fast subarrays) and its *LL-DRAM* configuration (on a DRAM device with
    ``all_subarrays_fast=True``, where every access enjoys fast timings).
    """

    name = "Base"

    def effective_row(self, channel: Channel, decoded: DecodedAddress,
                      flat_bank: int) -> int:
        return decoded.row

    def service(self, channel: Channel, now: int, decoded: DecodedAddress,
                flat_bank: int, is_write: bool) -> ServiceResult:
        access = channel.access(now, flat_bank, decoded.row, is_write)
        bank = channel.bank(flat_bank)
        return ServiceResult(completion_cycle=access.completion_cycle,
                             bank_busy_until=bank.ready_for_next,
                             row_buffer_outcome=access.outcome,
                             in_dram_cache_hit=None,
                             served_fast=access.served_fast,
                             relocation_cycles=0)
