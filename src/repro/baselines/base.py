"""Base configuration: conventional DDR4 with no in-DRAM cache."""

from __future__ import annotations

from repro.core.mechanism import CachingMechanism, ServiceResult
from repro.dram.address import DecodedAddress
from repro.dram.channel import Channel


class BaseMechanism(CachingMechanism):
    """Serve every request from its original row; no caching, no relocation.

    This is both the paper's *Base* configuration (on a DRAM device with no
    fast subarrays) and its *LL-DRAM* configuration (on a DRAM device with
    ``all_subarrays_fast=True``, where every access enjoys fast timings).
    """

    name = "Base"

    #: No in-DRAM cache: requests are always served from their address row,
    #: so the scheduler can skip the effective-row hook entirely and the
    #: channel controller can serve requests without the service wrapper.
    remaps_rows = False
    direct_access = True

    def effective_row(self, channel: Channel, decoded: DecodedAddress,
                      flat_bank: int) -> int:
        return decoded.row

    def service(self, channel: Channel, now: int, decoded: DecodedAddress,
                flat_bank: int, is_write: bool) -> ServiceResult:
        access = channel.access(now, flat_bank, decoded.row, is_write)
        # ``bank_ready_cycle`` equals the bank's post-access
        # ``ready_for_next`` (a column access always pushes the column
        # timer past the busy window), so the bank need not be re-read.
        return ServiceResult(access.completion_cycle,
                             access.bank_ready_cycle, access.outcome, None,
                             access.served_fast, 0)
