"""Baseline memory-system configurations the paper compares against.

* :class:`BaseMechanism` — a conventional DDR4 system with no in-DRAM cache.
* :class:`LISAVillaMechanism` — the state-of-the-art in-DRAM cache baseline:
  row-granularity caching in 16 fast subarrays per bank, with
  distance-dependent bulk relocation between subarrays.
* LL-DRAM — a system where every subarray is fast.  It needs no mechanism of
  its own: it is :class:`BaseMechanism` on a DRAM configuration with
  ``all_subarrays_fast=True`` (see :func:`repro.sim.config.make_system`).
"""

from repro.baselines.base import BaseMechanism
from repro.baselines.lisa_villa import LISAVillaConfig, LISAVillaMechanism

__all__ = [
    "BaseMechanism",
    "LISAVillaConfig",
    "LISAVillaMechanism",
]
