"""Experiment runners: one per table/figure of the paper's evaluation.

Every runner returns a plain dictionary (rows/series) that the benchmark
harness prints, so the same code regenerates the paper's tables and figures
at any scale.  ``ExperimentScale`` controls how much work each runner does;
the defaults keep the full suite runnable on a laptop in minutes, and the
benchmarks use an even smaller scale so CI stays fast.
"""

from repro.experiments.runner import (ExperimentScale, format_table,
                                      run_configuration, run_single_core,
                                      run_multicore)
from repro.experiments.figures import (figure7_single_core,
                                       figure8_multicore,
                                       figure9_cache_hit_rate,
                                       figure10_row_buffer_hit_rate,
                                       figure11_energy,
                                       figure12_cache_capacity,
                                       figure13_segment_size,
                                       figure14_replacement_policy,
                                       figure15_insertion_threshold)
from repro.experiments.static import (rowhammer_activation_study,
                                      section42_reloc_timing,
                                      section83_overhead,
                                      table1_configuration,
                                      table2_workloads)

__all__ = [
    "ExperimentScale",
    "figure10_row_buffer_hit_rate",
    "figure11_energy",
    "figure12_cache_capacity",
    "figure13_segment_size",
    "figure14_replacement_policy",
    "figure15_insertion_threshold",
    "figure7_single_core",
    "figure8_multicore",
    "figure9_cache_hit_rate",
    "format_table",
    "rowhammer_activation_study",
    "run_configuration",
    "run_multicore",
    "run_single_core",
    "section42_reloc_timing",
    "section83_overhead",
    "table1_configuration",
    "table2_workloads",
]
