"""Experiment definitions and the engine that runs them.

The package splits into a declarative layer and an execution layer:

* :mod:`repro.experiments.engine` — the experiment engine:
  :class:`SimJob` specs with content-addressed keys, a persistent
  :class:`ResultCache`, and a :class:`JobExecutor` that fans independent
  simulations across worker processes (``REPRO_JOBS``/``--jobs``) with a
  deterministic serial fallback.
* :mod:`repro.experiments.figures` — one declarative runner per paper
  figure (7–15); each enumerates its job batch and submits it to the
  engine in one call.
* :mod:`repro.experiments.static` — the analytical experiments (Tables
  1–2, RELOC timing, hardware overheads, the RowHammer-style study).
* :mod:`repro.experiments.runner` — shared helpers (benchmark lists,
  workload suites, geometric mean, table formatting) plus single-job
  conveniences ``run_single_core``/``run_multicore``.

Every runner returns a plain dictionary (rows/series) that the benchmark
harness and the ``python -m repro`` CLI print, so the same code
regenerates the paper's tables and figures at any scale.
``ExperimentScale`` controls how much work each runner does; the defaults
keep the full suite runnable on a laptop in minutes, and the benchmarks
use an even smaller scale so CI stays fast.
"""

from repro.experiments.engine import (JobExecutor, ResultCache, SimJob,
                                      configure, get_executor, reset)
from repro.experiments.runner import (ExperimentScale, clear_cache,
                                      format_table, geometric_mean,
                                      run_configuration, run_multicore,
                                      run_single_core)
from repro.experiments.figures import (FIGURES,
                                       figure7_single_core,
                                       figure8_multicore,
                                       figure9_cache_hit_rate,
                                       figure10_row_buffer_hit_rate,
                                       figure11_energy,
                                       figure12_cache_capacity,
                                       figure13_segment_size,
                                       figure14_replacement_policy,
                                       figure15_insertion_threshold)
from repro.experiments.static import (STATIC_EXPERIMENTS,
                                      rowhammer_activation_study,
                                      section42_reloc_timing,
                                      section83_overhead,
                                      table1_configuration,
                                      table2_workloads)

__all__ = [
    "ExperimentScale",
    "FIGURES",
    "JobExecutor",
    "ResultCache",
    "STATIC_EXPERIMENTS",
    "SimJob",
    "clear_cache",
    "configure",
    "figure10_row_buffer_hit_rate",
    "figure11_energy",
    "figure12_cache_capacity",
    "figure13_segment_size",
    "figure14_replacement_policy",
    "figure15_insertion_threshold",
    "figure7_single_core",
    "figure8_multicore",
    "figure9_cache_hit_rate",
    "format_table",
    "geometric_mean",
    "get_executor",
    "reset",
    "rowhammer_activation_study",
    "run_configuration",
    "run_multicore",
    "run_single_core",
    "section42_reloc_timing",
    "section83_overhead",
    "table1_configuration",
    "table2_workloads",
]
