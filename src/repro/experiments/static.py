"""Runners for the non-figure experiments.

These cover the parts of the paper's evaluation that are analytical rather
than trace-driven: the simulated-system configuration (Table 1), the
workload catalog (Table 2), the RELOC timing study (Section 4.2), the
hardware overhead accounting (Section 8.3), and the qualitative
RowHammer-style activation-concentration study (Sections 6 and 8.1).  The
RowHammer study is the one entry that simulates; like the figures, it
submits declarative jobs to the experiment engine, so its runs share the
parallel executor and the persistent result cache.
"""

from __future__ import annotations

from repro.analysis.overhead import OverheadModel
from repro.circuit.reloc_timing import analyze_reloc_timing
from repro.dram.config import DRAMConfig
from repro.experiments.engine import SimJob, get_executor
from repro.experiments.runner import ExperimentScale
from repro.sim.config import make_system_config
from repro.workloads.catalog import BENCHMARKS
from repro.workloads.trace import trace_statistics


def table1_configuration() -> dict:
    """Table 1: the simulated system configuration."""
    config = make_system_config("FIGCache-Fast", channels=4)
    dram = config.dram
    figcache = config.figcache
    rows = [
        ["Processor", "8 cores, 3.2 GHz, 3-wide issue, 256-entry window, "
                      "8 MSHRs/core"],
        ["DRAM", f"DDR4, {dram.channels} channels, "
                 f"{dram.ranks_per_channel} rank, "
                 f"{dram.bankgroups_per_rank} bank groups x "
                 f"{dram.banks_per_bankgroup} banks, "
                 f"{dram.subarrays_per_bank} subarrays/bank, "
                 f"{dram.row_size_bytes // 1024} kB rows, "
                 f"{dram.channel_capacity_bytes // 2**30} GB/channel"],
        ["FIGARO", f"RELOC granularity {dram.block_size_bytes} B, "
                   f"RELOC latency {dram.timings.treloc_ns} ns"],
        ["FIGCache", f"row segment {figcache.segment_blocks} blocks "
                     f"({figcache.segment_blocks * dram.block_size_bytes} B), "
                     f"{figcache.cache_rows_per_bank} cache rows/bank, "
                     f"placement {figcache.placement}, "
                     f"{figcache.replacement_policy} replacement"],
        ["Fast subarray", "tRCD/tRP/tRAS reduced by 45.5%/38.2%/62.9%"],
        ["LISA-VILLA", "512 cache rows per bank, 16 fast subarrays"],
    ]
    return {
        "table": "Table 1",
        "columns": ["component", "configuration"],
        "rows": rows,
    }


def table2_workloads(records: int = 4000) -> dict:
    """Table 2: the benchmark catalog with measured trace statistics."""
    rows = []
    for name, spec in sorted(BENCHMARKS.items()):
        stats = trace_statistics(spec.make_trace(records))
        rows.append([
            name,
            spec.suite,
            "intensive" if spec.memory_intensive else "non-intensive",
            stats["accesses_per_kilo_instruction"],
            stats["write_fraction"],
            stats["footprint_bytes"] // 1024,
        ])
    return {
        "table": "Table 2",
        "columns": ["benchmark", "suite", "class", "accesses_per_kilo_instr",
                    "write_fraction", "footprint_kB"],
        "rows": rows,
    }


def section42_reloc_timing(iterations: int = 2000) -> dict:
    """Section 4.2: the RELOC latency study (paper: 0.57 ns -> 1 ns)."""
    analysis = analyze_reloc_timing(iterations=iterations)
    rows = [
        ["mean RELOC latency (ns)", analysis.mean_latency_ns],
        ["worst-case RELOC latency (ns)", analysis.worst_case_latency_ns],
        ["guardband", analysis.guardband],
        ["guardbanded RELOC latency (ns)", analysis.guardbanded_latency_ns],
        ["end-to-end one-block relocation (ns)", analysis.end_to_end_block_ns],
        ["one-block relocation, source row open (ns)",
         analysis.end_to_end_block_open_row_ns],
        ["Monte-Carlo success rate", analysis.success_rate],
    ]
    return {
        "section": "Section 4.2",
        "columns": ["quantity", "value"],
        "rows": rows,
        "analysis": analysis,
    }


def section83_overhead() -> dict:
    """Section 8.3: DRAM and memory-controller hardware overheads."""
    model = OverheadModel()
    dram = DRAMConfig()
    areas = model.mechanism_overheads(dram)
    fts = model.fts_overhead(dram)
    rows = [
        ["FIGARO peripheral logic (% of DRAM chip)",
         areas["FIGARO"] * 100.0],
        ["FIGCache-Fast cache rows (% of DRAM chip)",
         areas["FIGCache-Fast"] * 100.0],
        ["FIGCache-Slow reserved rows (% of DRAM chip)",
         areas["FIGCache-Slow"] * 100.0],
        ["LISA-VILLA fast subarrays (% of DRAM chip)",
         areas["LISA-VILLA"] * 100.0],
        ["FTS bits per entry", fts.bits_per_entry],
        ["FTS storage per channel (kB)", fts.storage_kb_per_channel],
        ["FTS area, 4 channels (mm^2)", fts.area_mm2],
        ["FTS area (% of LLC)", fts.area_fraction_of_llc * 100.0],
        ["FTS power (mW)", fts.power_mw],
        ["FTS power (% of LLC)", fts.power_fraction_of_llc * 100.0],
    ]
    return {
        "section": "Section 8.3",
        "columns": ["quantity", "value"],
        "rows": rows,
        "fts": fts,
        "areas": areas,
    }


def rowhammer_activation_study(scale: ExperimentScale | None = None,
                               benchmark: str = "mcf") -> dict:
    """Sections 6 / 8.1: activation concentration with and without FIGCache.

    FIGCache reduces how often distinct regular DRAM rows have to be opened
    and closed, because frequently-accessed segments collapse into a few
    cache rows.  The study reports the number of activations to regular
    (non-cache) rows and the maximum per-row activation count, which are the
    quantities a RowHammer-style disturbance attack cares about.
    """
    scale = scale or ExperimentScale()
    configurations = ("Base", "FIGCache-Fast")
    jobs = {configuration: SimJob.single_core(configuration, benchmark,
                                              scale,
                                              track_row_activations=True)
            for configuration in configurations}
    results = get_executor().run(jobs.values())
    rows = []
    for configuration in configurations:
        job = jobs[configuration]
        result = results[job]
        counts = result.dram_counters.row_activation_counts
        regular_limit = job.build_config().dram.regular_rows_per_bank
        regular = {key: value for key, value in counts.items()
                   if key[1] < regular_limit}
        total_regular = sum(regular.values())
        max_regular = max(regular.values()) if regular else 0
        distinct = len(regular)
        rows.append([configuration, total_regular, distinct, max_regular])
    return {
        "section": "Section 6 / 8.1 (RowHammer-style study)",
        "columns": ["configuration", "regular-row activations",
                    "distinct regular rows activated",
                    "max activations to one regular row"],
        "rows": rows,
    }


#: Name -> runner, for the ``python -m repro run-static`` CLI.  Runners
#: listed here take no required arguments.
STATIC_EXPERIMENTS = {
    "table1": table1_configuration,
    "table2": table2_workloads,
    "reloc-timing": section42_reloc_timing,
    "overhead": section83_overhead,
    "rowhammer": rowhammer_activation_study,
}
