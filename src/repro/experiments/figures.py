"""Runners for the paper's Figures 7–15.

Every function returns a dictionary with a ``rows`` list (one row per data
point the paper plots) plus the metadata needed to print it.  Weighted
speedups are normalised against the Base configuration exactly as in the
paper; absolute values are not expected to match the paper (the traces are
far shorter), but the ordering and trends are.
"""

from __future__ import annotations

from collections import defaultdict

from repro.experiments.runner import (DEFAULT_CONFIGURATIONS, ExperimentScale,
                                      geometric_mean, multicore_suite,
                                      run_multicore, run_single_core,
                                      single_core_benchmarks)

#: Configurations compared by the in-DRAM cache metrics figures (9 and 10).
_CACHE_CONFIGURATIONS = ("LISA-VILLA", "FIGCache-Slow", "FIGCache-Fast")


def figure7_single_core(scale: ExperimentScale | None = None,
                        configurations=DEFAULT_CONFIGURATIONS) -> dict:
    """Figure 7: single-core speedup over Base per intensity class."""
    scale = scale or ExperimentScale()
    categories = single_core_benchmarks(scale)
    rows = []
    for category, benchmarks in categories.items():
        speedups = defaultdict(list)
        for benchmark in benchmarks:
            base = run_single_core("Base", benchmark, scale)
            base_ipc = base.cores[0].ipc
            for configuration in configurations:
                if configuration == "Base":
                    continue
                result = run_single_core(configuration, benchmark, scale)
                speedups[configuration].append(result.cores[0].ipc / base_ipc)
        for configuration in configurations:
            if configuration == "Base":
                continue
            rows.append([category, configuration,
                         geometric_mean(speedups[configuration])])
    return {
        "figure": "Figure 7",
        "metric": "speedup over Base (geometric mean per category)",
        "columns": ["category", "configuration", "speedup"],
        "rows": rows,
    }


def _multicore_results(scale: ExperimentScale, configurations,
                       **config_overrides) -> dict:
    """Run the multiprogrammed suite; returns results[config][workload]."""
    suite = multicore_suite(scale)
    results: dict = {config: {} for config in configurations}
    for workload in suite:
        for configuration in configurations:
            results[configuration][workload.name] = run_multicore(
                configuration, workload, scale, **config_overrides)
    results["_suite"] = suite
    return results


def figure8_multicore(scale: ExperimentScale | None = None,
                      configurations=DEFAULT_CONFIGURATIONS) -> dict:
    """Figure 8: eight-core weighted speedup over Base per intensity mix."""
    scale = scale or ExperimentScale()
    results = _multicore_results(scale, configurations)
    suite = results["_suite"]
    rows = []
    categories = sorted({workload.intensive_fraction for workload in suite})
    for fraction in categories:
        workloads = [w for w in suite if w.intensive_fraction == fraction]
        for configuration in configurations:
            if configuration == "Base":
                continue
            speedups = []
            for workload in workloads:
                base = results["Base"][workload.name]
                other = results[configuration][workload.name]
                speedups.append(other.ipc_sum / base.ipc_sum)
            rows.append([f"{int(fraction * 100)}% intensive", configuration,
                         geometric_mean(speedups)])
    return {
        "figure": "Figure 8",
        "metric": "weighted speedup over Base (geometric mean per category)",
        "columns": ["category", "configuration", "speedup"],
        "rows": rows,
    }


def figure9_cache_hit_rate(scale: ExperimentScale | None = None) -> dict:
    """Figure 9: in-DRAM cache hit rate of the caching mechanisms."""
    scale = scale or ExperimentScale()
    rows = []
    categories = single_core_benchmarks(scale)
    for category, benchmarks in categories.items():
        for configuration in _CACHE_CONFIGURATIONS:
            rates = [run_single_core(configuration, benchmark, scale)
                     .in_dram_cache_hit_rate for benchmark in benchmarks]
            rows.append([f"1-core {category}", configuration,
                         sum(rates) / len(rates)])
    results = _multicore_results(scale, ("Base",) + _CACHE_CONFIGURATIONS)
    suite = results["_suite"]
    for fraction in sorted({w.intensive_fraction for w in suite}):
        workloads = [w for w in suite if w.intensive_fraction == fraction]
        for configuration in _CACHE_CONFIGURATIONS:
            rates = [results[configuration][w.name].in_dram_cache_hit_rate
                     for w in workloads]
            rows.append([f"8-core {int(fraction * 100)}% intensive",
                         configuration, sum(rates) / len(rates)])
    return {
        "figure": "Figure 9",
        "metric": "in-DRAM cache hit rate",
        "columns": ["category", "configuration", "hit_rate"],
        "rows": rows,
    }


def figure10_row_buffer_hit_rate(scale: ExperimentScale | None = None) -> dict:
    """Figure 10: DRAM row-buffer hit rate of the caching mechanisms."""
    scale = scale or ExperimentScale()
    rows = []
    categories = single_core_benchmarks(scale)
    configurations = ("Base",) + _CACHE_CONFIGURATIONS
    for category, benchmarks in categories.items():
        for configuration in configurations:
            rates = [run_single_core(configuration, benchmark, scale)
                     .row_buffer_hit_rate for benchmark in benchmarks]
            rows.append([f"1-core {category}", configuration,
                         sum(rates) / len(rates)])
    results = _multicore_results(scale, configurations)
    suite = results["_suite"]
    for fraction in sorted({w.intensive_fraction for w in suite}):
        workloads = [w for w in suite if w.intensive_fraction == fraction]
        for configuration in configurations:
            rates = [results[configuration][w.name].row_buffer_hit_rate
                     for w in workloads]
            rows.append([f"8-core {int(fraction * 100)}% intensive",
                         configuration, sum(rates) / len(rates)])
    return {
        "figure": "Figure 10",
        "metric": "DRAM row-buffer hit rate",
        "columns": ["category", "configuration", "row_buffer_hit_rate"],
        "rows": rows,
    }


def figure11_energy(scale: ExperimentScale | None = None) -> dict:
    """Figure 11: system energy breakdown normalised to Base."""
    scale = scale or ExperimentScale()
    configurations = ("Base", "FIGCache-Slow", "FIGCache-Fast")
    rows = []
    categories = single_core_benchmarks(scale)
    for category, benchmarks in categories.items():
        for configuration in configurations:
            components = defaultdict(float)
            for benchmark in benchmarks:
                base = run_single_core("Base", benchmark, scale)
                result = run_single_core(configuration, benchmark, scale)
                normalized = result.energy.normalized_to(base.energy)
                for component, value in normalized.items():
                    components[component] += value / len(benchmarks)
            rows.append([f"1-core {category}", configuration,
                         components["CPU"], components["L1&L2"],
                         components["LLC"], components["Off-Chip"],
                         components["DRAM"], components["Total"]])
    results = _multicore_results(scale, configurations)
    suite = results["_suite"]
    for fraction in sorted({w.intensive_fraction for w in suite}):
        workloads = [w for w in suite if w.intensive_fraction == fraction]
        for configuration in configurations:
            components = defaultdict(float)
            for workload in workloads:
                base = results["Base"][workload.name]
                result = results[configuration][workload.name]
                normalized = result.energy.normalized_to(base.energy)
                for component, value in normalized.items():
                    components[component] += value / len(workloads)
            rows.append([f"8-core {int(fraction * 100)}% intensive",
                         configuration,
                         components["CPU"], components["L1&L2"],
                         components["LLC"], components["Off-Chip"],
                         components["DRAM"], components["Total"]])
    return {
        "figure": "Figure 11",
        "metric": "energy normalised to Base",
        "columns": ["category", "configuration", "CPU", "L1&L2", "LLC",
                    "Off-Chip", "DRAM", "Total"],
        "rows": rows,
    }


def _category_speedup(scale: ExperimentScale, configuration: str,
                      **config_overrides) -> dict[str, float]:
    """Weighted speedup over Base per multiprogrammed category."""
    suite = multicore_suite(scale)
    speedups: dict[str, list[float]] = defaultdict(list)
    for workload in suite:
        base = run_multicore("Base", workload, scale)
        other = run_multicore(configuration, workload, scale,
                              **config_overrides)
        key = f"{int(workload.intensive_fraction * 100)}% intensive"
        speedups[key].append(other.ipc_sum / base.ipc_sum)
    return {key: geometric_mean(values) for key, values in speedups.items()}


def figure12_cache_capacity(scale: ExperimentScale | None = None,
                            fast_subarray_counts=(1, 2, 4, 8, 16)) -> dict:
    """Figure 12: sensitivity to the number of fast subarrays per bank."""
    scale = scale or ExperimentScale()
    rows = []
    for count in fast_subarray_counts:
        cache_rows = count * 32
        per_category = _category_speedup(scale, "FIGCache-Fast",
                                         fast_subarrays=count,
                                         cache_rows_per_bank=cache_rows)
        for category, speedup in sorted(per_category.items()):
            rows.append([category, f"{count} FS", speedup])
    per_category = _category_speedup(scale, "LL-DRAM")
    for category, speedup in sorted(per_category.items()):
        rows.append([category, "LL-DRAM", speedup])
    return {
        "figure": "Figure 12",
        "metric": "weighted speedup over Base vs. in-DRAM cache capacity",
        "columns": ["category", "fast_subarrays", "speedup"],
        "rows": rows,
    }


def figure13_segment_size(scale: ExperimentScale | None = None,
                          segment_sizes_blocks=(8, 16, 32, 64, 128)) -> dict:
    """Figure 13: sensitivity to the row segment size (512 B ... 8 kB)."""
    scale = scale or ExperimentScale()
    rows = []
    for blocks in segment_sizes_blocks:
        label = f"{blocks * 64}B" if blocks * 64 < 1024 \
            else f"{blocks * 64 // 1024}kB"
        per_category = _category_speedup(scale, "FIGCache-Fast",
                                         segment_blocks=blocks)
        for category, speedup in sorted(per_category.items()):
            rows.append([category, label, speedup])
    per_category = _category_speedup(scale, "LISA-VILLA")
    for category, speedup in sorted(per_category.items()):
        rows.append([category, "LISA-VILLA", speedup])
    return {
        "figure": "Figure 13",
        "metric": "weighted speedup over Base vs. row segment size",
        "columns": ["category", "segment_size", "speedup"],
        "rows": rows,
    }


def figure14_replacement_policy(scale: ExperimentScale | None = None,
                                policies=("Random", "LRU", "SegmentBenefit",
                                          "RowBenefit")) -> dict:
    """Figure 14: sensitivity to the in-DRAM cache replacement policy."""
    scale = scale or ExperimentScale()
    rows = []
    for policy in policies:
        per_category = _category_speedup(scale, "FIGCache-Fast",
                                         replacement_policy=policy)
        for category, speedup in sorted(per_category.items()):
            rows.append([category, policy, speedup])
    return {
        "figure": "Figure 14",
        "metric": "weighted speedup over Base vs. replacement policy",
        "columns": ["category", "policy", "speedup"],
        "rows": rows,
    }


def figure15_insertion_threshold(scale: ExperimentScale | None = None,
                                 thresholds=(1, 2, 4, 8)) -> dict:
    """Figure 15: sensitivity to the row segment insertion threshold."""
    scale = scale or ExperimentScale()
    rows = []
    for threshold in thresholds:
        per_category = _category_speedup(scale, "FIGCache-Fast",
                                         insertion_threshold=threshold)
        for category, speedup in sorted(per_category.items()):
            rows.append([category, f"Threshold {threshold}", speedup])
    return {
        "figure": "Figure 15",
        "metric": "weighted speedup over Base vs. insertion threshold",
        "columns": ["category", "threshold", "speedup"],
        "rows": rows,
    }
