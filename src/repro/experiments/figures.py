"""Declarative runners for the paper's Figures 7–15.

Every figure function is now a thin experiment definition: it enumerates
the :class:`~repro.experiments.engine.SimJob` points its plot needs,
submits the whole batch to the process-wide
:class:`~repro.experiments.engine.JobExecutor` in one call (so independent
simulations can run on parallel workers and cached points are skipped),
and assembles the result rows from the returned mapping.

Every function returns a dictionary with a ``rows`` list (one row per data
point the paper plots) plus the metadata needed to print it.  Weighted
speedups are normalised against the Base configuration exactly as in the
paper; absolute values are not expected to match the paper (the traces are
far shorter), but the ordering and trends are.  Because job batches are
deduplicated and content-addressed, the row values are bit-identical
whether the batch runs serially, across N workers, or straight out of a
warm persistent cache.
"""

from __future__ import annotations

from collections import defaultdict

from repro.dram.standards import PROFILES, get_profile
from repro.experiments.engine import SimJob, get_executor
from repro.experiments.runner import (DEFAULT_CONFIGURATIONS, ExperimentScale,
                                      geometric_mean, multicore_suite,
                                      single_core_benchmarks)
from repro.sim.telemetry import LatencyHistogram

#: Configurations compared by the in-DRAM cache metrics figures (9 and 10).
_CACHE_CONFIGURATIONS = ("LISA-VILLA", "FIGCache-Slow", "FIGCache-Fast")

#: Mechanisms compared across DRAM standards by the dram-types study.
_DRAM_TYPE_CONFIGURATIONS = ("Base", "FIGCache-Fast", "LISA-VILLA")

#: Mechanisms compared by the latency-distribution study.
_LATENCY_CONFIGURATIONS = ("Base", "FIGCache-Fast", "LISA-VILLA")

#: Memory-intensive benchmarks the dram-types study aggregates over (the
#: paper's cross-standard argument is about memory-bound workloads; six
#: benchmarks keep the geomean robust at reproduction trace lengths).
_DRAM_TYPE_BENCHMARKS = ("lbm", "mcf", "libquantum", "zeusmp", "GemsFDTD",
                         "bwaves")


def _single_core_jobs(configurations, benchmarks, scale: ExperimentScale,
                      **overrides) -> dict[tuple, SimJob]:
    """One single-core job per (configuration, benchmark) pair."""
    return {(configuration, benchmark):
            SimJob.single_core(configuration, benchmark, scale, **overrides)
            for configuration in configurations for benchmark in benchmarks}


def _multicore_jobs(configurations, suite, scale: ExperimentScale,
                    **overrides) -> dict[tuple, SimJob]:
    """One multicore job per (configuration, workload) pair."""
    return {(configuration, workload.name):
            SimJob.multicore(configuration, workload, scale, **overrides)
            for configuration in configurations for workload in suite}


def _run_batch(jobs: dict[tuple, SimJob]) -> dict[tuple, object]:
    """Submit one batch; returns results under the jobs' semantic keys."""
    results = get_executor().run(jobs.values())
    return {key: results[job] for key, job in jobs.items()}


def figure7_matrix_jobs(scale: ExperimentScale,
                        configurations=DEFAULT_CONFIGURATIONS,
                        mix_configurations=("Base", "FIGCache-Fast")
                        ) -> list[SimJob]:
    """The figure-7 evaluation matrix as a flat job list.

    Every configuration crossed with the single-core benchmark suite, plus
    one multiprogrammed mix per ``mix_configurations`` entry so multicore
    trace generation and event interleaving are represented.  The sweep
    throughput bench (``python -m repro bench --sweep``) runs this matrix
    cold through competing executor strategies.
    """
    categories = single_core_benchmarks(scale)
    benchmarks = [b for group in categories.values() for b in group]
    jobs = [SimJob.single_core(configuration, benchmark, scale)
            for configuration in configurations for benchmark in benchmarks]
    for mix in multicore_suite(scale)[:1]:
        for configuration in mix_configurations:
            jobs.append(SimJob.multicore(configuration, mix, scale))
    return jobs


def figure7_single_core(scale: ExperimentScale | None = None,
                        configurations=DEFAULT_CONFIGURATIONS) -> dict:
    """Figure 7: single-core speedup over Base per intensity class."""
    scale = scale or ExperimentScale()
    categories = single_core_benchmarks(scale)
    benchmarks = [b for group in categories.values() for b in group]
    wanted = dict.fromkeys(("Base",) + tuple(configurations))
    results = _run_batch(_single_core_jobs(wanted, benchmarks, scale))
    rows = []
    for category, group in categories.items():
        speedups = defaultdict(list)
        for benchmark in group:
            base_ipc = results[("Base", benchmark)].cores[0].ipc
            for configuration in configurations:
                if configuration == "Base":
                    continue
                result = results[(configuration, benchmark)]
                speedups[configuration].append(result.cores[0].ipc / base_ipc)
        for configuration in configurations:
            if configuration == "Base":
                continue
            rows.append([category, configuration,
                         geometric_mean(speedups[configuration])])
    return {
        "figure": "Figure 7",
        "metric": "speedup over Base (geometric mean per category)",
        "columns": ["category", "configuration", "speedup"],
        "rows": rows,
    }


def figure8_multicore(scale: ExperimentScale | None = None,
                      configurations=DEFAULT_CONFIGURATIONS) -> dict:
    """Figure 8: eight-core weighted speedup over Base per intensity mix."""
    scale = scale or ExperimentScale()
    suite = multicore_suite(scale)
    results = _run_batch(_multicore_jobs(configurations, suite, scale))
    rows = []
    for fraction in sorted({w.intensive_fraction for w in suite}):
        workloads = [w for w in suite if w.intensive_fraction == fraction]
        for configuration in configurations:
            if configuration == "Base":
                continue
            speedups = []
            for workload in workloads:
                base = results[("Base", workload.name)]
                other = results[(configuration, workload.name)]
                speedups.append(other.ipc_sum / base.ipc_sum)
            rows.append([f"{int(fraction * 100)}% intensive", configuration,
                         geometric_mean(speedups)])
    return {
        "figure": "Figure 8",
        "metric": "weighted speedup over Base (geometric mean per category)",
        "columns": ["category", "configuration", "speedup"],
        "rows": rows,
    }


def figure9_cache_hit_rate(scale: ExperimentScale | None = None) -> dict:
    """Figure 9: in-DRAM cache hit rate of the caching mechanisms."""
    scale = scale or ExperimentScale()
    categories = single_core_benchmarks(scale)
    benchmarks = [b for group in categories.values() for b in group]
    suite = multicore_suite(scale)
    single_jobs = _single_core_jobs(_CACHE_CONFIGURATIONS, benchmarks, scale)
    multi_jobs = _multicore_jobs(_CACHE_CONFIGURATIONS, suite, scale)
    results = _run_batch({**single_jobs, **multi_jobs})
    rows = []
    for category, group in categories.items():
        for configuration in _CACHE_CONFIGURATIONS:
            rates = [results[(configuration, benchmark)]
                     .in_dram_cache_hit_rate for benchmark in group]
            rows.append([f"1-core {category}", configuration,
                         sum(rates) / len(rates)])
    for fraction in sorted({w.intensive_fraction for w in suite}):
        workloads = [w for w in suite if w.intensive_fraction == fraction]
        for configuration in _CACHE_CONFIGURATIONS:
            rates = [results[(configuration, w.name)].in_dram_cache_hit_rate
                     for w in workloads]
            rows.append([f"8-core {int(fraction * 100)}% intensive",
                         configuration, sum(rates) / len(rates)])
    return {
        "figure": "Figure 9",
        "metric": "in-DRAM cache hit rate",
        "columns": ["category", "configuration", "hit_rate"],
        "rows": rows,
    }


def figure10_row_buffer_hit_rate(scale: ExperimentScale | None = None) -> dict:
    """Figure 10: DRAM row-buffer hit rate of the caching mechanisms."""
    scale = scale or ExperimentScale()
    configurations = ("Base",) + _CACHE_CONFIGURATIONS
    categories = single_core_benchmarks(scale)
    benchmarks = [b for group in categories.values() for b in group]
    suite = multicore_suite(scale)
    results = _run_batch({
        **_single_core_jobs(configurations, benchmarks, scale),
        **_multicore_jobs(configurations, suite, scale)})
    rows = []
    for category, group in categories.items():
        for configuration in configurations:
            rates = [results[(configuration, benchmark)].row_buffer_hit_rate
                     for benchmark in group]
            rows.append([f"1-core {category}", configuration,
                         sum(rates) / len(rates)])
    for fraction in sorted({w.intensive_fraction for w in suite}):
        workloads = [w for w in suite if w.intensive_fraction == fraction]
        for configuration in configurations:
            rates = [results[(configuration, w.name)].row_buffer_hit_rate
                     for w in workloads]
            rows.append([f"8-core {int(fraction * 100)}% intensive",
                         configuration, sum(rates) / len(rates)])
    return {
        "figure": "Figure 10",
        "metric": "DRAM row-buffer hit rate",
        "columns": ["category", "configuration", "row_buffer_hit_rate"],
        "rows": rows,
    }


def figure11_energy(scale: ExperimentScale | None = None) -> dict:
    """Figure 11: system energy breakdown normalised to Base."""
    scale = scale or ExperimentScale()
    configurations = ("Base", "FIGCache-Slow", "FIGCache-Fast")
    categories = single_core_benchmarks(scale)
    benchmarks = [b for group in categories.values() for b in group]
    suite = multicore_suite(scale)
    results = _run_batch({
        **_single_core_jobs(configurations, benchmarks, scale),
        **_multicore_jobs(configurations, suite, scale)})

    def energy_row(label, configuration, pairs):
        """pairs: (base_result, result) per workload in the category."""
        components = defaultdict(float)
        for base, result in pairs:
            normalized = result.energy.normalized_to(base.energy)
            for component, value in normalized.items():
                components[component] += value / len(pairs)
        return [label, configuration,
                components["CPU"], components["L1&L2"], components["LLC"],
                components["Off-Chip"], components["DRAM"],
                components["Total"]]

    rows = []
    for category, group in categories.items():
        for configuration in configurations:
            pairs = [(results[("Base", b)], results[(configuration, b)])
                     for b in group]
            rows.append(energy_row(f"1-core {category}", configuration,
                                   pairs))
    for fraction in sorted({w.intensive_fraction for w in suite}):
        workloads = [w for w in suite if w.intensive_fraction == fraction]
        for configuration in configurations:
            pairs = [(results[("Base", w.name)],
                      results[(configuration, w.name)]) for w in workloads]
            rows.append(energy_row(
                f"8-core {int(fraction * 100)}% intensive", configuration,
                pairs))
    return {
        "figure": "Figure 11",
        "metric": "energy normalised to Base",
        "columns": ["category", "configuration", "CPU", "L1&L2", "LLC",
                    "Off-Chip", "DRAM", "Total"],
        "rows": rows,
    }


def _sweep_speedups(scale: ExperimentScale,
                    variants: list[tuple[str, str, dict]]) -> dict:
    """Weighted speedup over Base per category for a list of sweep points.

    ``variants`` is a list of ``(label, configuration, overrides)`` points.
    All (point, workload) jobs plus the shared Base jobs are submitted as
    one batch, so a whole sensitivity sweep parallelises across workers.
    Returns ``{label: {category: speedup}}`` with insertion order preserved.
    """
    suite = multicore_suite(scale)
    jobs = _multicore_jobs(("Base",), suite, scale)
    for label, configuration, overrides in variants:
        for workload in suite:
            jobs[(label, workload.name)] = SimJob.multicore(
                configuration, workload, scale, **overrides)
    results = _run_batch(jobs)
    sweep: dict = {}
    for label, _, _ in variants:
        speedups: dict[str, list[float]] = defaultdict(list)
        for workload in suite:
            base = results[("Base", workload.name)]
            other = results[(label, workload.name)]
            category = f"{int(workload.intensive_fraction * 100)}% intensive"
            speedups[category].append(other.ipc_sum / base.ipc_sum)
        sweep[label] = {category: geometric_mean(values)
                        for category, values in speedups.items()}
    return sweep


def _sweep_rows(sweep: dict) -> list[list]:
    """Flatten a :func:`_sweep_speedups` mapping into sorted result rows."""
    rows = []
    for label, per_category in sweep.items():
        for category, speedup in sorted(per_category.items()):
            rows.append([category, label, speedup])
    return rows


def figure12_cache_capacity(scale: ExperimentScale | None = None,
                            fast_subarray_counts=(1, 2, 4, 8, 16)) -> dict:
    """Figure 12: sensitivity to the number of fast subarrays per bank."""
    scale = scale or ExperimentScale()
    variants = [(f"{count} FS", "FIGCache-Fast",
                 {"fast_subarrays": count, "cache_rows_per_bank": count * 32})
                for count in fast_subarray_counts]
    variants.append(("LL-DRAM", "LL-DRAM", {}))
    return {
        "figure": "Figure 12",
        "metric": "weighted speedup over Base vs. in-DRAM cache capacity",
        "columns": ["category", "fast_subarrays", "speedup"],
        "rows": _sweep_rows(_sweep_speedups(scale, variants)),
    }


def figure13_segment_size(scale: ExperimentScale | None = None,
                          segment_sizes_blocks=(8, 16, 32, 64, 128)) -> dict:
    """Figure 13: sensitivity to the row segment size (512 B ... 8 kB)."""
    scale = scale or ExperimentScale()
    variants = []
    for blocks in segment_sizes_blocks:
        label = f"{blocks * 64}B" if blocks * 64 < 1024 \
            else f"{blocks * 64 // 1024}kB"
        variants.append((label, "FIGCache-Fast", {"segment_blocks": blocks}))
    variants.append(("LISA-VILLA", "LISA-VILLA", {}))
    return {
        "figure": "Figure 13",
        "metric": "weighted speedup over Base vs. row segment size",
        "columns": ["category", "segment_size", "speedup"],
        "rows": _sweep_rows(_sweep_speedups(scale, variants)),
    }


def figure14_replacement_policy(scale: ExperimentScale | None = None,
                                policies=("Random", "LRU", "SegmentBenefit",
                                          "RowBenefit")) -> dict:
    """Figure 14: sensitivity to the in-DRAM cache replacement policy."""
    scale = scale or ExperimentScale()
    variants = [(policy, "FIGCache-Fast", {"replacement_policy": policy})
                for policy in policies]
    return {
        "figure": "Figure 14",
        "metric": "weighted speedup over Base vs. replacement policy",
        "columns": ["category", "policy", "speedup"],
        "rows": _sweep_rows(_sweep_speedups(scale, variants)),
    }


def figure15_insertion_threshold(scale: ExperimentScale | None = None,
                                 thresholds=(1, 2, 4, 8)) -> dict:
    """Figure 15: sensitivity to the row segment insertion threshold."""
    scale = scale or ExperimentScale()
    variants = [(f"Threshold {threshold}", "FIGCache-Fast",
                 {"insertion_threshold": threshold})
                for threshold in thresholds]
    return {
        "figure": "Figure 15",
        "metric": "weighted speedup over Base vs. insertion threshold",
        "columns": ["category", "threshold", "speedup"],
        "rows": _sweep_rows(_sweep_speedups(scale, variants)),
    }


def figure_dram_types(scale: ExperimentScale | None = None,
                      standards=None,
                      configurations=_DRAM_TYPE_CONFIGURATIONS,
                      benchmarks=_DRAM_TYPE_BENCHMARKS) -> dict:
    """Cross-standard study: mechanism speedups on every DRAM type.

    The paper argues FIGCache is DRAM-type-agnostic (Section 3); this
    study reproduces that sensitivity claim by sweeping {Base,
    FIGCache-Fast, LISA-VILLA} over the device catalog
    (:mod:`repro.dram.standards`) and reporting, per standard, each
    mechanism's single-core speedup over Base *on that same standard*
    (geometric mean over the memory-intensive benchmark set).  Speedups
    are intra-standard by construction, so absolute performance
    differences between standards (bus rate, bank count, row size) do not
    skew the comparison.  Trace lengths follow the scale's single-core
    record count; at the default scale FIGCache-Fast improves over Base
    on every standard (guarded by
    ``tests/test_standards.py::TestDramTypesStudy``), while at the
    ``tiny``/``smoke`` scales the in-DRAM cache never warms up and
    FIGCache rows drop *below* 1.0 — those scales only smoke-test the
    plumbing, not the paper's claim.
    """
    scale = scale or ExperimentScale()
    # Resolve the registry lazily so standards registered at runtime via
    # ``register_profile`` are swept too.
    standards = tuple(standards) if standards is not None \
        else tuple(PROFILES)
    wanted = dict.fromkeys(("Base",) + tuple(configurations))
    jobs = {(standard, configuration, benchmark):
            SimJob.single_core(configuration, benchmark, scale,
                               standard=standard)
            for standard in standards for configuration in wanted
            for benchmark in benchmarks}
    results = _run_batch(jobs)
    rows = []
    for standard in standards:
        profile = get_profile(standard)
        for configuration in configurations:
            if configuration == "Base":
                continue
            speedups = [
                results[(standard, configuration, benchmark)].cores[0].ipc
                / results[(standard, "Base", benchmark)].cores[0].ipc
                for benchmark in benchmarks]
            rows.append([standard, profile.family, profile.refresh_mode,
                         configuration, geometric_mean(speedups)])
    return {
        "figure": "DRAM types",
        "metric": "speedup over Base on the same standard (geomean over "
                  "the memory-intensive set)",
        "columns": ["standard", "family", "refresh", "configuration",
                    "speedup"],
        "rows": rows,
    }


def figure_latency(scale: ExperimentScale | None = None,
                   configurations=_LATENCY_CONFIGURATIONS) -> dict:
    """Latency study: read-latency percentiles per configuration.

    The paper's Figure 10 analysis reports *mean* memory latency; this
    study reports the tail.  Every figure-7 single-core workload runs with
    telemetry enabled, the per-benchmark read-latency histograms are
    pooled per intensity category (exact counts merge losslessly), and
    each configuration's p50/p95/p99/max/mean is reported.

    The per-class benchmark count is floored at six: the p99 of a pool of
    only two benchmarks is set by whichever single workload's refresh
    windows happen to align worst (tRFC-delayed requests sit right at the
    1% boundary), not by the mechanism under study.  With six benchmarks
    pooled the tail is stable, and at the default scale FIGCache-Fast
    cuts the p99 read latency below Base on the memory-intensive set
    (guarded by ``tests/test_telemetry.py::TestLatencyStudy``); at the
    ``tiny``/``smoke`` scales the in-DRAM cache never warms up, so those
    scales only smoke-test the plumbing.
    """
    from dataclasses import replace

    scale = scale or ExperimentScale()
    pooled_scale = replace(
        scale, benchmarks_per_class=max(scale.benchmarks_per_class, 6))
    categories = single_core_benchmarks(pooled_scale)
    benchmarks = [b for group in categories.values() for b in group]
    results = _run_batch(_single_core_jobs(configurations, benchmarks, scale,
                                           telemetry=True))
    rows = []
    for category, group in categories.items():
        for configuration in configurations:
            pooled = LatencyHistogram()
            for benchmark in group:
                telemetry = results[(configuration, benchmark)].telemetry
                pooled.merge(telemetry.read_latency)
            summary = pooled.summary()
            rows.append([category, configuration, summary["p50"],
                         summary["p95"], summary["p99"], summary["max"],
                         summary["mean"]])
    return {
        "figure": "Latency distributions",
        "metric": "read latency percentiles in CPU cycles "
                  "(pooled over the figure-7 single-core workloads)",
        "columns": ["category", "configuration", "p50", "p95", "p99",
                    "max", "mean"],
        "rows": rows,
    }


#: Figure number -> runner, for the ``python -m repro run-figure`` CLI.
FIGURES = {
    7: figure7_single_core,
    8: figure8_multicore,
    9: figure9_cache_hit_rate,
    10: figure10_row_buffer_hit_rate,
    11: figure11_energy,
    12: figure12_cache_capacity,
    13: figure13_segment_size,
    14: figure14_replacement_policy,
    15: figure15_insertion_threshold,
}

#: Named (non-numbered) studies runnable with ``run-figure <name>``.
NAMED_FIGURES = {
    "dram-types": figure_dram_types,
    "latency": figure_latency,
}
