"""Shared machinery for the experiment runners.

The runners simulate the same workloads on several configurations and report
metrics normalised to Base, the way the paper's figures do.  All simulation
traffic flows through the declarative experiment engine
(:mod:`repro.experiments.engine`): each (configuration, workload, scale)
point becomes a :class:`~repro.experiments.engine.SimJob`, the process-wide
:class:`~repro.experiments.engine.JobExecutor` deduplicates and optionally
parallelises the batch, and a content-addressed
:class:`~repro.experiments.engine.ResultCache` lets Figures 8–11 — and
repeated invocations, when a persistent cache directory is configured —
share the underlying simulations instead of re-running them.
"""

from __future__ import annotations

import math

from repro.experiments.engine import ExperimentScale, SimJob, get_executor
from repro.sim.config import CONFIGURATION_NAMES, SystemConfig
from repro.sim.metrics import SimulationResult
from repro.sim.system import run_workload
from repro.workloads.multiprogram import (MultiprogrammedWorkload,
                                          make_workload_suite)
from repro.workloads.trace import TraceRecord

#: The default set of configurations the paper compares (Section 8) —
#: derived from the configuration registry's built-in entries, which are
#: registered in the paper's presentation order.
DEFAULT_CONFIGURATIONS = CONFIGURATION_NAMES

__all__ = [
    "DEFAULT_CONFIGURATIONS",
    "ExperimentScale",
    "clear_cache",
    "format_table",
    "geometric_mean",
    "multicore_suite",
    "run_configuration",
    "run_multicore",
    "run_single_core",
    "single_core_benchmarks",
]


def clear_cache() -> None:
    """Drop all cached simulation results (memory and persistent)."""
    get_executor().cache.clear()


def run_configuration(config: SystemConfig, traces: list[list[TraceRecord]],
                      workload_name: str, cache_key=None) -> SimulationResult:
    """Run one pre-built (configuration, traces) pair directly.

    Kept for callers that assemble their own configs/traces.  The
    ``cache_key`` argument is ignored: caching is now handled by the
    experiment engine, which keys on declarative :class:`SimJob` specs
    rather than caller-supplied tuples.
    """
    del cache_key
    return run_workload(config, traces, workload_name)


def run_single_core(configuration: str, benchmark: str,
                    scale: ExperimentScale,
                    **config_overrides) -> SimulationResult:
    """Simulate one benchmark on one configuration, single core."""
    job = SimJob.single_core(configuration, benchmark, scale,
                             **config_overrides)
    return get_executor().run_one(job)


def run_multicore(configuration: str, workload: MultiprogrammedWorkload,
                  scale: ExperimentScale,
                  **config_overrides) -> SimulationResult:
    """Simulate one multiprogrammed mix on one configuration."""
    job = SimJob.multicore(configuration, workload, scale,
                           **config_overrides)
    return get_executor().run_one(job)


def multicore_suite(scale: ExperimentScale) -> list[MultiprogrammedWorkload]:
    """The multiprogrammed workload suite at the requested scale."""
    return make_workload_suite(num_cores=scale.num_cores,
                               mixes_per_category=scale.mixes_per_category)


def single_core_benchmarks(scale: ExperimentScale) -> dict[str, list[str]]:
    """Benchmarks per intensity class used by the single-core figures."""
    intensive = ["lbm", "mcf", "libquantum", "zeusmp", "GemsFDTD", "bwaves",
                 "leslie3d", "com", "tigr", "mum"]
    non_intensive = ["gcc", "h264ref", "tpcc64", "sjeng", "bzip2", "gromacs",
                     "bfs", "sandygrep", "wc-8443", "tpch2"]
    count = scale.benchmarks_per_class
    return {
        "Memory Non-Intensive": non_intensive[:count],
        "Memory Intensive": intensive[:count],
    }


def geometric_mean(values: list[float]) -> float:
    """Geometric mean (used for speedup aggregation).

    Computed in log space as ``exp(mean(log(v)))``: a running product
    under/overflows for long lists of values far from 1.0, while summed
    logarithms stay comfortably inside double range.
    """
    if not values:
        return 0.0
    log_sum = 0.0
    for value in values:
        if value <= 0:
            raise ValueError("geometric mean requires positive values")
        log_sum += math.log(value)
    return math.exp(log_sum / len(values))


def format_table(title: str, columns: list[str],
                 rows: list[list]) -> str:
    """Render a result table as fixed-width text for the bench harness."""
    widths = [len(str(column)) for column in columns]
    rendered_rows = []
    for row in rows:
        # ``None`` marks a cell whose jobs were skipped (--keep-going
        # after exhausted retries): render a placeholder, not "None".
        rendered = ["n/a" if value is None
                    else f"{value:.3f}" if isinstance(value, float)
                    else str(value)
                    for value in row]
        rendered_rows.append(rendered)
        widths = [max(width, len(cell))
                  for width, cell in zip(widths, rendered)]
    lines = [title]
    header = "  ".join(str(column).ljust(width)
                       for column, width in zip(columns, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for rendered in rendered_rows:
        lines.append("  ".join(cell.ljust(width)
                               for cell, width in zip(rendered, widths)))
    return "\n".join(lines)
