"""Shared machinery for the experiment runners.

The runners simulate the same workloads on several configurations and report
metrics normalised to Base, the way the paper's figures do.  A module-level
result cache keyed by (configuration, workload, scale) lets Figures 8–11
share the underlying simulations instead of re-running them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.sim.config import SystemConfig, make_system_config
from repro.sim.metrics import SimulationResult
from repro.sim.system import run_workload
from repro.workloads.catalog import get_benchmark
from repro.workloads.multiprogram import (MultiprogrammedWorkload,
                                          make_workload_suite)
from repro.workloads.trace import TraceRecord

#: The default set of configurations the paper compares (Section 8).
DEFAULT_CONFIGURATIONS = ("Base", "LISA-VILLA", "FIGCache-Slow",
                          "FIGCache-Fast", "FIGCache-Ideal", "LL-DRAM")


@dataclass(frozen=True)
class ExperimentScale:
    """How much simulation work each experiment performs.

    The paper simulates at least one billion instructions per core; this
    reproduction uses small deterministic traces so the full matrix of
    experiments runs in minutes.  Larger scales sharpen the steady-state
    behaviour (in-DRAM cache hit rates, row-buffer gains) at linear cost.
    """

    #: Trace records per core for single-core experiments.
    single_core_records: int = 10000
    #: Trace records per core for multi-core experiments.
    multicore_records: int = 4000
    #: Cores in the multiprogrammed mixes.
    num_cores: int = 8
    #: Memory channels for multi-core experiments (paper: 4).
    multicore_channels: int = 4
    #: Multiprogrammed mixes per intensity category (paper: 5).
    mixes_per_category: int = 1
    #: Single-core benchmarks evaluated per intensity class (paper: 10).
    benchmarks_per_class: int = 2

    @classmethod
    def smoke(cls) -> "ExperimentScale":
        """A minimal scale for unit tests."""
        return cls(single_core_records=1500, multicore_records=600,
                   num_cores=4, multicore_channels=2, mixes_per_category=1,
                   benchmarks_per_class=1)


_result_cache: dict = {}


def clear_cache() -> None:
    """Drop all cached simulation results."""
    _result_cache.clear()


def run_configuration(config: SystemConfig, traces: list[list[TraceRecord]],
                      workload_name: str, cache_key=None) -> SimulationResult:
    """Run one (configuration, workload) pair, with optional caching."""
    if cache_key is not None and cache_key in _result_cache:
        return _result_cache[cache_key]
    result = run_workload(config, traces, workload_name)
    if cache_key is not None:
        _result_cache[cache_key] = result
    return result


def run_single_core(configuration: str, benchmark: str,
                    scale: ExperimentScale,
                    **config_overrides) -> SimulationResult:
    """Simulate one benchmark on one configuration, single core."""
    spec = get_benchmark(benchmark)
    trace = spec.make_trace(scale.single_core_records)
    config = make_system_config(configuration, channels=1, **config_overrides)
    key = ("1core", configuration, benchmark, scale,
           tuple(sorted(config_overrides.items())))
    return run_configuration(config, [trace], benchmark, cache_key=key)


def run_multicore(configuration: str, workload: MultiprogrammedWorkload,
                  scale: ExperimentScale,
                  **config_overrides) -> SimulationResult:
    """Simulate one multiprogrammed mix on one configuration."""
    traces = workload.make_traces(scale.multicore_records)
    config = make_system_config(configuration,
                                channels=scale.multicore_channels,
                                **config_overrides)
    key = ("mp", configuration, workload.name, scale,
           tuple(sorted(config_overrides.items())))
    return run_configuration(config, traces, workload.name, cache_key=key)


def multicore_suite(scale: ExperimentScale) -> list[MultiprogrammedWorkload]:
    """The multiprogrammed workload suite at the requested scale."""
    return make_workload_suite(num_cores=scale.num_cores,
                               mixes_per_category=scale.mixes_per_category)


def single_core_benchmarks(scale: ExperimentScale) -> dict[str, list[str]]:
    """Benchmarks per intensity class used by the single-core figures."""
    intensive = ["lbm", "mcf", "libquantum", "zeusmp", "GemsFDTD", "bwaves",
                 "leslie3d", "com", "tigr", "mum"]
    non_intensive = ["gcc", "h264ref", "tpcc64", "sjeng", "bzip2", "gromacs",
                     "bfs", "sandygrep", "wc-8443", "tpch2"]
    count = scale.benchmarks_per_class
    return {
        "Memory Non-Intensive": non_intensive[:count],
        "Memory Intensive": intensive[:count],
    }


def geometric_mean(values: list[float]) -> float:
    """Geometric mean (used for speedup aggregation)."""
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        if value <= 0:
            raise ValueError("geometric mean requires positive values")
        product *= value
    return product ** (1.0 / len(values))


def format_table(title: str, columns: list[str],
                 rows: list[list]) -> str:
    """Render a result table as fixed-width text for the bench harness."""
    widths = [len(str(column)) for column in columns]
    rendered_rows = []
    for row in rows:
        rendered = [f"{value:.3f}" if isinstance(value, float) else str(value)
                    for value in row]
        rendered_rows.append(rendered)
        widths = [max(width, len(cell))
                  for width, cell in zip(widths, rendered)]
    lines = [title]
    header = "  ".join(str(column).ljust(width)
                       for column, width in zip(columns, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for rendered in rendered_rows:
        lines.append("  ".join(cell.ljust(width)
                               for cell, width in zip(rendered, widths)))
    return "\n".join(lines)
