"""Deterministic fault injection for the experiment engine.

The reliability layer (retry policies, the hung-worker watchdog, pool
respawn, cache quarantine) only earns its keep if every behaviour is
test-provable.  This module provides the probe: a declarative
:class:`FaultPlan` that injects failures at *chosen job indices and
attempt numbers*, so a chaos run is exactly reproducible — the same plan
against the same batch trips the same faults in the same places.

Fault sites and actions:

``worker`` (applied in the worker process, or the serial path, just
before a job's simulation runs; matched by the job's index in the
batch's *pending* list — the deduplicated, cache-missing jobs in
submission order — and the 1-based attempt number):

* ``raise`` — raise :class:`InjectedFault` (a transient job failure);
* ``exit``  — ``os._exit(exit_code)``: kill the worker process outright,
  breaking the pool (the serial path raises :class:`InjectedFault`
  instead of killing the test process);
* ``sleep`` — sleep ``seconds`` before running (a hung worker, when the
  sleep exceeds the watchdog deadline).

``cache-write`` (applied in :meth:`ResultCache._persist`, matched by the
0-based ordinal of the persisted write in this process or by a key
prefix):

* ``torn``    — write only a prefix of the payload (a partial write that
  was never completed: no atomic tmp+replace);
* ``bitflip`` — flip one byte in the middle of the payload (silent media
  corruption the checksum envelope must catch).

Activation: pass a plan to :class:`JobExecutor(fault_plan=...)`, call
:func:`install_plan` (test API), or set ``REPRO_FAULT_PLAN`` to inline
JSON (anything starting with ``{``) or a path to a JSON file:

.. code-block:: json

    {"faults": [
      {"site": "worker", "index": 1, "action": "exit", "attempts": [1]},
      {"site": "worker", "index": 3, "action": "raise", "attempts": [1]},
      {"site": "cache-write", "index": 2, "action": "torn"}
    ]}

``attempts: [1]`` makes a fault *transient*: it fires on the first
attempt and clears on the retry, which is how the test suite proves a
faulted sweep converges to results bit-identical to a fault-free run.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

#: Environment variable carrying a fault plan (inline JSON or a path).
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: Legal values per site.
WORKER_ACTIONS = ("raise", "exit", "sleep")
CACHE_ACTIONS = ("torn", "bitflip")


class InjectedFault(RuntimeError):
    """A failure raised on purpose by an active :class:`FaultPlan`."""


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault: where, when, and what."""

    #: ``"worker"`` or ``"cache-write"``.
    site: str
    #: ``worker``: index into the batch's pending list.  ``cache-write``:
    #: 0-based ordinal of the persisted write (ignored if ``key_prefix``
    #: is set).
    index: int = -1
    #: Action at the site (see module docstring).
    action: str = "raise"
    #: Attempt numbers (1-based) at which a worker fault fires; an empty
    #: tuple means every attempt.
    attempts: tuple[int, ...] = (1,)
    #: Sleep duration for ``action="sleep"``.
    seconds: float = 0.0
    #: Exit status for ``action="exit"``.
    exit_code: int = 1
    #: Cache-write matcher: fire on any key with this prefix.
    key_prefix: str = ""

    def __post_init__(self) -> None:
        if self.site == "worker":
            allowed = WORKER_ACTIONS
        elif self.site == "cache-write":
            allowed = CACHE_ACTIONS
        else:
            raise ValueError(f"unknown fault site {self.site!r} "
                             f"(expected 'worker' or 'cache-write')")
        if self.action not in allowed:
            raise ValueError(f"unknown {self.site} action {self.action!r} "
                             f"(expected one of {allowed})")

    def to_dict(self) -> dict:
        out: dict = {"site": self.site, "action": self.action}
        if self.index >= 0:
            out["index"] = self.index
        if self.site == "worker":
            out["attempts"] = list(self.attempts)
            if self.action == "sleep":
                out["seconds"] = self.seconds
            if self.action == "exit":
                out["exit_code"] = self.exit_code
        elif self.key_prefix:
            out["key_prefix"] = self.key_prefix
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        return cls(site=data.get("site", "worker"),
                   index=int(data.get("index", -1)),
                   action=data.get("action", "raise"),
                   attempts=tuple(int(a) for a in
                                  data.get("attempts", [1])),
                   seconds=float(data.get("seconds", 0.0)),
                   exit_code=int(data.get("exit_code", 1)),
                   key_prefix=str(data.get("key_prefix", "")))


@dataclass(frozen=True)
class FaultPlan:
    """An ordered collection of :class:`FaultSpec` injections.

    Frozen and picklable: the executor ships the active plan to worker
    processes alongside each chunk, so matching never depends on worker
    environment inheritance (``spawn`` contexts work too).
    """

    faults: tuple[FaultSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    def __bool__(self) -> bool:
        return bool(self.faults)

    # ------------------------------------------------------------------
    # Matching.
    # ------------------------------------------------------------------
    def worker_fault(self, index: int, attempt: int) -> FaultSpec | None:
        """The worker-site fault armed for (job ``index``, ``attempt``)."""
        for spec in self.faults:
            if spec.site != "worker" or spec.index != index:
                continue
            if spec.attempts and attempt not in spec.attempts:
                continue
            return spec
        return None

    def cache_fault(self, key: str, write_index: int) -> FaultSpec | None:
        """The cache-write fault armed for this persisted write."""
        for spec in self.faults:
            if spec.site != "cache-write":
                continue
            if spec.key_prefix:
                if key.startswith(spec.key_prefix):
                    return spec
            elif spec.index == write_index:
                return spec
        return None

    # ------------------------------------------------------------------
    # Serialisation.
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(
            {"faults": [spec.to_dict() for spec in self.faults]},
            sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        data = json.loads(text)
        entries = data.get("faults", []) if isinstance(data, dict) else data
        return cls(faults=tuple(FaultSpec.from_dict(entry)
                                for entry in entries))

    @classmethod
    def from_env(cls, value: str) -> "FaultPlan":
        """Parse ``REPRO_FAULT_PLAN``: inline JSON or a file path."""
        text = value.strip()
        if not text.startswith("{") and not text.startswith("["):
            text = Path(text).read_text(encoding="utf-8")
        return cls.from_json(text)


# ----------------------------------------------------------------------
# Process-wide activation.
# ----------------------------------------------------------------------
_UNSET = object()
#: The installed plan: ``_UNSET`` until first use (then parsed from the
#: environment), or whatever :func:`install_plan` set.
_installed = _UNSET
#: Ordinal of the next cache write while a plan is active (the
#: ``cache-write`` matcher's ``index``); reset by :func:`install_plan`.
_cache_writes = 0


def active_plan() -> FaultPlan | None:
    """The process-wide fault plan, or ``None`` when chaos is off.

    Parsed once from ``REPRO_FAULT_PLAN`` on first call unless a plan
    was installed programmatically.  A malformed environment plan raises
    immediately — a chaos run silently running clean is worse than an
    error.
    """
    global _installed
    if _installed is _UNSET:
        value = os.environ.get(FAULT_PLAN_ENV)
        _installed = FaultPlan.from_env(value) if value else None
    return _installed


def install_plan(plan: FaultPlan | None) -> None:
    """Install (or with ``None`` clear) the process-wide plan; resets the
    cache-write ordinal so every installed plan starts counting at 0."""
    global _installed, _cache_writes
    _installed = plan
    _cache_writes = 0


def reset() -> None:
    """Forget any installed plan; the next :func:`active_plan` call
    re-reads the environment."""
    global _installed, _cache_writes
    _installed = _UNSET
    _cache_writes = 0


def next_cache_write() -> int:
    """Consume and return the current cache-write ordinal."""
    global _cache_writes
    ordinal = _cache_writes
    _cache_writes += 1
    return ordinal


# ----------------------------------------------------------------------
# Application (called from the executor / cache at the injection sites).
# ----------------------------------------------------------------------
def apply_worker_fault(plan: FaultPlan | None, index: int, attempt: int,
                       allow_exit: bool = True) -> None:
    """Trip the worker-site fault armed for (``index``, ``attempt``).

    ``allow_exit=False`` (the serial path, which runs in the caller's own
    process) converts an ``exit`` fault into a raised
    :class:`InjectedFault` so tests never kill themselves.
    """
    if plan is None:
        return
    spec = plan.worker_fault(index, attempt)
    if spec is None:
        return
    if spec.action == "sleep":
        time.sleep(spec.seconds)
        return
    if spec.action == "exit" and allow_exit:
        os._exit(spec.exit_code)
    raise InjectedFault(f"injected {spec.action!r} fault at job index "
                        f"{index}, attempt {attempt}")


def corrupt_payload(spec: FaultSpec, data: bytes) -> bytes:
    """The corrupted bytes a ``cache-write`` fault persists."""
    if spec.action == "torn":
        # A partial write: the first third of the payload, mid-token.
        return data[:max(1, len(data) // 3)]
    # bitflip: invert one byte in the middle of the payload.
    flipped = bytearray(data)
    position = len(flipped) // 2
    flipped[position] ^= 0xFF
    return bytes(flipped)
