"""Declarative simulation-job specifications.

A :class:`SimJob` describes one point of the paper's evaluation matrix —
one (configuration, workload, scale) triple plus any sensitivity-knob
overrides — without running anything.  Jobs are frozen, hashable, and
picklable, so batches of them can be deduplicated, shipped to worker
processes, and cached.

Every job hashes to a stable content-addressed :meth:`SimJob.key`: the
digest covers the fully-built :class:`~repro.sim.config.SystemConfig`, the
workload's trace-generator parameters, and the trace length, salted with
the cache schema version and the package version.  Two jobs that would
simulate byte-identical systems therefore share one cache entry, no matter
which figure or sweep created them.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass

from repro.sim.config import SystemConfig, config_digest, make_system_config
from repro.sim.metrics import SimulationResult
from repro.sim.system import run_workload
from repro.workloads.catalog import get_benchmark
from repro.workloads.multiprogram import MultiprogrammedWorkload
from repro.workloads.trace import TraceRecord

#: Bump when the on-disk result format or the job-key recipe changes; old
#: cache entries are then ignored instead of being misread.  Version 4:
#: the telemetry subsystem added ``SystemConfig.telemetry`` (changing
#: every config digest) and the optional ``telemetry`` section to
#: serialised results.
CACHE_SCHEMA_VERSION = 4


@dataclass(frozen=True)
class ExperimentScale:
    """How much simulation work each experiment performs.

    The paper simulates at least one billion instructions per core; this
    reproduction uses small deterministic traces so the full matrix of
    experiments runs in minutes.  Larger scales sharpen the steady-state
    behaviour (in-DRAM cache hit rates, row-buffer gains) at linear cost.
    """

    #: Trace records per core for single-core experiments.
    single_core_records: int = 10000
    #: Trace records per core for multi-core experiments.
    multicore_records: int = 4000
    #: Cores in the multiprogrammed mixes.
    num_cores: int = 8
    #: Memory channels for multi-core experiments (paper: 4).
    multicore_channels: int = 4
    #: Multiprogrammed mixes per intensity category (paper: 5).
    mixes_per_category: int = 1
    #: Single-core benchmarks evaluated per intensity class (paper: 10).
    benchmarks_per_class: int = 2

    @classmethod
    def smoke(cls) -> "ExperimentScale":
        """A minimal scale for unit tests."""
        return cls(single_core_records=1500, multicore_records=600,
                   num_cores=4, multicore_channels=2, mixes_per_category=1,
                   benchmarks_per_class=1)

    @classmethod
    def tiny(cls) -> "ExperimentScale":
        """An even smaller scale for CLI smoke runs and engine tests."""
        return cls(single_core_records=400, multicore_records=200,
                   num_cores=2, multicore_channels=1, mixes_per_category=1,
                   benchmarks_per_class=1)

    @classmethod
    def bench(cls) -> "ExperimentScale":
        """The scale the benchmark harness uses."""
        return cls(single_core_records=6000, multicore_records=1500,
                   num_cores=8, multicore_channels=4, mixes_per_category=1,
                   benchmarks_per_class=2)


def _canonical_overrides(config_overrides: dict) -> tuple:
    """Turn a ``make_system_config`` kwargs dict into a hashable tuple."""
    items = []
    for name in sorted(config_overrides):
        value = config_overrides[name]
        if isinstance(value, dict):
            value = tuple(sorted(value.items()))
        items.append((name, value))
    return tuple(items)


def _overrides_dict(config_overrides: tuple) -> dict:
    """Inverse of :func:`_canonical_overrides`."""
    out = {}
    for name, value in config_overrides:
        if isinstance(value, tuple) and value \
                and all(isinstance(item, tuple) and len(item) == 2
                        for item in value):
            value = dict(value)
        out[name] = value
    return out


@dataclass(frozen=True)
class SimJob:
    """One declarative simulation point of the evaluation matrix."""

    #: ``"single-core"`` or ``"multicore"``.
    kind: str
    #: Configuration name (Base, FIGCache-Fast, ...).
    configuration: str
    #: The scale the job was created at (determines trace length/channels).
    scale: ExperimentScale
    #: Benchmark name (single-core jobs only).
    benchmark: str | None = None
    #: Multiprogrammed workload (multicore jobs only).
    workload: MultiprogrammedWorkload | None = None
    #: Extra ``make_system_config`` knobs, canonicalised to a sorted tuple.
    config_overrides: tuple = ()

    @classmethod
    def single_core(cls, configuration: str, benchmark: str,
                    scale: ExperimentScale, **config_overrides) -> "SimJob":
        """Describe one single-core (benchmark, configuration) point."""
        return cls(kind="single-core", configuration=configuration,
                   scale=scale, benchmark=benchmark,
                   config_overrides=_canonical_overrides(config_overrides))

    @classmethod
    def multicore(cls, configuration: str,
                  workload: MultiprogrammedWorkload,
                  scale: ExperimentScale, **config_overrides) -> "SimJob":
        """Describe one multiprogrammed (mix, configuration) point."""
        return cls(kind="multicore", configuration=configuration,
                   scale=scale, workload=workload,
                   config_overrides=_canonical_overrides(config_overrides))

    def __post_init__(self) -> None:
        if self.kind not in ("single-core", "multicore"):
            raise ValueError(f"unknown job kind {self.kind!r}")
        if self.kind == "single-core" and self.benchmark is None:
            raise ValueError("single-core jobs need a benchmark name")
        if self.kind == "multicore" and self.workload is None:
            raise ValueError("multicore jobs need a workload")

    # ------------------------------------------------------------------
    # Building the concrete simulation inputs.
    # ------------------------------------------------------------------
    @property
    def workload_name(self) -> str:
        """Name the resulting :class:`SimulationResult` is labelled with."""
        if self.kind == "single-core":
            return self.benchmark
        return self.workload.name

    @property
    def records_per_core(self) -> int:
        """Trace records generated per core."""
        if self.kind == "single-core":
            return self.scale.single_core_records
        return self.scale.multicore_records

    @property
    def channels(self) -> int:
        """Memory channels the simulated system uses."""
        return 1 if self.kind == "single-core" \
            else self.scale.multicore_channels

    def build_config(self) -> SystemConfig:
        """Build the concrete system configuration for this job."""
        return make_system_config(self.configuration, channels=self.channels,
                                  **_overrides_dict(self.config_overrides))

    def build_traces(self) -> list[list[TraceRecord]]:
        """Generate the per-core traces for this job."""
        if self.kind == "single-core":
            spec = get_benchmark(self.benchmark)
            return [spec.make_trace(self.records_per_core)]
        return self.workload.make_traces(self.records_per_core)

    # ------------------------------------------------------------------
    # Memoization identities (worker-local caches in the executor).
    # ------------------------------------------------------------------
    def trace_signature(self) -> tuple:
        """Hashable identity of :meth:`build_traces`' output.

        Two jobs with equal signatures generate byte-identical traces (the
        generators are seeded), so a warm worker process can build the
        traces once and reuse them across every configuration evaluated on
        the same workload.  Simulations never mutate their input traces
        (each :class:`~repro.cpu.core.TraceCore` flattens its own copy),
        which is what makes sharing safe.
        """
        if self.kind == "single-core":
            return ("single-core", self.benchmark, self.records_per_core)
        return ("multicore", self.workload, self.records_per_core)

    def config_signature(self) -> tuple:
        """Hashable identity of :meth:`build_config`'s output.

        ``SystemConfig`` is frozen, so equal signatures may share one
        built instance.
        """
        return (self.configuration, self.channels, self.config_overrides)

    # ------------------------------------------------------------------
    # Content-addressed identity.
    # ------------------------------------------------------------------
    def describe(self) -> dict:
        """A canonical, JSON-serialisable description of the job.

        Only inputs that affect the simulation outcome are included: the
        fully-built system configuration, the workload's trace-generator
        parameters, and the trace length.  Scale fields that merely select
        *which* jobs a figure creates (mixes per category, benchmarks per
        class) are deliberately absent, so equivalent jobs created by
        different figures or scales share one cache entry.
        """
        if self.kind == "single-core":
            workload_desc = asdict(get_benchmark(self.benchmark))
        else:
            workload_desc = asdict(self.workload)
        return {
            "schema": CACHE_SCHEMA_VERSION,
            "kind": self.kind,
            "configuration": self.configuration,
            "config": config_digest(self.build_config()),
            "workload": workload_desc,
            "records_per_core": self.records_per_core,
        }

    def key(self) -> str:
        """Stable content-addressed cache key (hex digest)."""
        payload = json.dumps(self.describe(), sort_keys=True,
                             separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Build and run the simulation this job describes."""
        return run_workload(self.build_config(), self.build_traces(),
                            self.workload_name)
