"""The declarative experiment engine.

Three layers turn the paper's figure matrix into embarrassingly parallel,
incrementally re-runnable work:

* :mod:`repro.experiments.engine.spec` — :class:`SimJob` describes one
  (configuration, workload, scale) simulation point declaratively and
  hashes to a stable content-addressed key.
* :mod:`repro.experiments.engine.cache` — :class:`ResultCache`, a
  memory + optional on-disk store of :class:`SimulationResult` objects
  keyed by job digest and salted with the code version.
* :mod:`repro.experiments.engine.executor` — :class:`JobExecutor` fans
  cache-missing jobs across worker processes (``ProcessPoolExecutor``)
  with a deterministic serial fallback.

The figure runners all submit batches through one process-wide default
executor, managed here.  ``configure()`` swaps it (the CLI uses this to
apply ``--jobs`` / ``--cache-dir``); ``reset()`` restores a fresh
environment-configured default, which the benchmark harness uses to
isolate cached results between modules.
"""

from __future__ import annotations

import os

from repro.experiments.engine.cache import (CACHE_DIR_ENV,
                                            COMPRESS_MIN_BYTES, CacheStats,
                                            CorruptEntryError, ResultCache,
                                            cache_salt, default_cache_dir)
from repro.experiments.engine.executor import (FAILURE_POLICIES, JOBS_ENV,
                                               BatchReport, JobExecutionError,
                                               JobExecutor, JobFailure,
                                               RetryPolicy, WatchdogPolicy,
                                               resolve_failure_policy,
                                               resolve_jobs)
from repro.experiments.engine.faults import (FAULT_PLAN_ENV, FaultPlan,
                                             FaultSpec, InjectedFault,
                                             install_plan)
from repro.experiments.engine.progress import (PROGRESS_SCHEMA_VERSION,
                                               CallbackSink, JsonlFileSink,
                                               ProgressEvent, ProgressSink,
                                               StderrLineSink, TeeSink)
from repro.experiments.engine.spec import (CACHE_SCHEMA_VERSION,
                                           ExperimentScale, SimJob)

__all__ = [
    "BatchReport",
    "CACHE_DIR_ENV",
    "CACHE_SCHEMA_VERSION",
    "COMPRESS_MIN_BYTES",
    "CacheStats",
    "CallbackSink",
    "CorruptEntryError",
    "ExperimentScale",
    "FAILURE_POLICIES",
    "FAULT_PLAN_ENV",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "JOBS_ENV",
    "JobExecutionError",
    "JobExecutor",
    "JobFailure",
    "JsonlFileSink",
    "PROGRESS_SCHEMA_VERSION",
    "ProgressEvent",
    "ProgressSink",
    "ResultCache",
    "RetryPolicy",
    "SimJob",
    "StderrLineSink",
    "TeeSink",
    "WatchdogPolicy",
    "cache_salt",
    "configure",
    "default_cache_dir",
    "get_executor",
    "install_plan",
    "reset",
    "resolve_failure_policy",
    "resolve_jobs",
]

_default_executor: JobExecutor | None = None


def get_executor() -> JobExecutor:
    """The process-wide default executor the figure runners submit to.

    Created lazily from the environment: ``REPRO_JOBS`` sets the worker
    count and ``REPRO_CACHE_DIR`` enables the persistent cache layer.  With
    neither set, the default is a serial executor with a memory-only cache
    — exactly the pre-engine behaviour, minus the staleness.
    """
    global _default_executor
    if _default_executor is None:
        cache_dir = os.environ.get(CACHE_DIR_ENV) or None
        _default_executor = JobExecutor(cache=ResultCache(cache_dir))
    return _default_executor


def configure(jobs: int | None = None, cache_dir: str | None = None,
              compress: bool | str = "auto",
              failure_policy: str | None = None,
              retry: RetryPolicy | None = None,
              watchdog: WatchdogPolicy | None = None) -> JobExecutor:
    """Replace the default executor (e.g. to apply CLI flags).

    The previous default's warm worker pool — if one was ever spun up —
    is shut down so reconfiguring never leaks worker processes.
    ``failure_policy``/``retry``/``watchdog`` set the reliability layer
    (``--keep-going`` maps to ``failure_policy="retry_then_skip"``).
    """
    global _default_executor
    if _default_executor is not None:
        _default_executor.close()
    _default_executor = JobExecutor(
        cache=ResultCache(cache_dir, compress=compress), jobs=jobs,
        failure_policy=failure_policy, retry=retry, watchdog=watchdog)
    return _default_executor


def reset() -> None:
    """Discard the default executor (shutting down its warm pool); the
    next use rebuilds it from the environment with an empty in-memory
    cache."""
    global _default_executor
    if _default_executor is not None:
        _default_executor.close()
    _default_executor = None
