"""Parallel job execution with cache-aware batching.

:class:`JobExecutor` takes batches of :class:`~repro.experiments.engine.spec.SimJob`
descriptions, answers every job it can from the :class:`ResultCache`, and
fans the remaining simulations across worker processes with
``concurrent.futures.ProcessPoolExecutor``.  ``jobs=1`` (the default) is a
deterministic serial fallback that never spawns processes, and the two
paths are bit-identical: every simulation is seeded and self-contained, so
only wall-clock time changes with the worker count.

The worker count resolves as: explicit ``jobs=`` argument, else the
``REPRO_JOBS`` environment variable, else 1 (serial).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Iterable, Sequence

from repro.experiments.engine.cache import ResultCache
from repro.experiments.engine.spec import SimJob
from repro.sim.metrics import SimulationResult

#: Environment variable selecting the default worker-process count.
JOBS_ENV = "REPRO_JOBS"


def _execute_job(job: SimJob) -> SimulationResult:
    """Worker entry point (module-level so it pickles)."""
    return job.run()


def resolve_jobs(jobs: int | None = None) -> int:
    """Resolve the worker count from an argument or ``REPRO_JOBS``."""
    if jobs is None:
        jobs = int(os.environ.get(JOBS_ENV, "1"))
    if jobs < 1:
        raise ValueError(f"worker count must be >= 1, got {jobs}")
    return jobs


class JobExecutor:
    """Runs simulation-job batches through a cache and a worker pool."""

    def __init__(self, cache: ResultCache | None = None,
                 jobs: int | None = None):
        self.cache = cache if cache is not None else ResultCache()
        self.jobs = resolve_jobs(jobs)
        #: Simulations actually executed (cache misses) over the lifetime.
        self.simulations_executed = 0
        #: Jobs answered straight from the cache over the lifetime.
        self.cache_hits = 0

    def run(self, jobs: Iterable[SimJob]) -> dict[SimJob, SimulationResult]:
        """Run a batch of jobs; returns one result per *distinct* job.

        Duplicate jobs (equal specs) are deduplicated before execution, and
        jobs whose content-addressed key is already cached are not run at
        all.  Results are collected in submission order, so the returned
        mapping — and everything derived from it — is independent of worker
        scheduling.
        """
        ordered: list[tuple[SimJob, str]] = []
        seen: set[SimJob] = set()
        for job in jobs:
            if job not in seen:
                seen.add(job)
                ordered.append((job, job.key()))

        results: dict[SimJob, SimulationResult] = {}
        pending: list[tuple[SimJob, str]] = []
        for job, key in ordered:
            cached = self.cache.get(key)
            if cached is not None:
                self.cache_hits += 1
                results[job] = cached
            else:
                pending.append((job, key))

        for job, key, result in self._execute(pending):
            self.simulations_executed += 1
            self.cache.put(key, result)
            results[job] = result
        return results

    def run_one(self, job: SimJob) -> SimulationResult:
        """Run a single job through the cache (always serial)."""
        return self.run([job])[job]

    def _execute(self, pending: Sequence[tuple[SimJob, str]]):
        """Yield ``(job, key, result)`` for every pending job, in order."""
        if not pending:
            return
        if self.jobs > 1 and len(pending) > 1:
            workers = min(self.jobs, len(pending))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [(job, key, pool.submit(_execute_job, job))
                           for job, key in pending]
                for job, key, future in futures:
                    yield job, key, future.result()
        else:
            for job, key in pending:
                yield job, key, job.run()
