"""Parallel job execution with a warm worker pool and cache-aware batching.

:class:`JobExecutor` takes batches of :class:`~repro.experiments.engine.spec.SimJob`
descriptions, answers every job it can from the :class:`ResultCache`, and
fans the remaining simulations across worker processes with
``concurrent.futures.ProcessPoolExecutor``.  ``jobs=1`` (the default) is a
deterministic serial fallback that never spawns processes, and the two
paths are bit-identical: every simulation is seeded and self-contained, so
only wall-clock time changes with the worker count.

Throughput machinery (what makes sustained sweeps fast):

* **Warm persistent pool** — the executor owns one long-lived
  ``ProcessPoolExecutor``, created lazily on the first parallel batch and
  reused across every subsequent :meth:`JobExecutor.run` call, so a
  session of figure batches pays pool spin-up once instead of per batch.
  ``close()`` (or using the executor as a context manager) shuts it down.
* **Per-worker memo** — a process-local cache installed by the worker
  initializer memoizes trace generation and ``SystemConfig`` construction
  by the job's :meth:`~SimJob.trace_signature` /
  :meth:`~SimJob.config_signature`, so evaluating six configurations on
  one benchmark generates the benchmark's trace once per worker, not six
  times.  The serial path shares the same memo in the parent process.
* **Chunked dispatch** — pending jobs are grouped (same-trace jobs
  adjacent) into roughly ``4 x workers`` chunks per batch, amortizing
  pickling and IPC round-trips over many jobs.
* **Completion-order draining** — chunk results are consumed as they
  land and written to the cache immediately, so a crash mid-sweep loses
  only in-flight chunks: re-running the same sweep against a persistent
  cache simulates only the jobs that never finished.  The *returned*
  mapping is still in deterministic submission order.

Reliability machinery (what makes million-job sweeps survive faults):

* **Failure policies** — :meth:`JobExecutor.run` executes under a
  ``failure_policy``: ``fail_fast`` (the default: first failure cancels
  the batch and raises), ``retry_then_fail`` (failed jobs are retried
  per the :class:`RetryPolicy`; jobs that exhaust their attempts are
  collected and raised together at batch end), or ``retry_then_skip``
  (exhausted jobs are skipped — absent from the returned mapping — and
  the batch completes).  Every batch's outcome lands in a
  :class:`BatchReport` on :attr:`JobExecutor.last_report`.
* **Deterministic retry backoff** — :meth:`RetryPolicy.delay_s` grows
  exponentially with the attempt number and jitters by a factor derived
  from a SHA-256 of (job key, attempt), so reruns of the same sweep
  wait the same delays: chaos runs are reproducible.
* **Hung-worker watchdog** — the parallel drain enforces per-chunk soft
  deadlines derived from an EWMA of observed per-job runtimes (clamped
  to a floor/ceiling; the clock restarts on any batch progress, so
  queue wait behind healthy chunks never trips it).  A timed-out chunk
  is surfaced as a ``chunk-timeout`` progress event, the stuck pool is
  killed and respawned, and the chunk's jobs are resubmitted with a
  bumped attempt count.
* **Pool respawn** — a worker death (``BrokenProcessPool``) under a
  retry policy respawns the pool and resubmits only the lost chunks
  (each lost job isolated into its own chunk so a repeat offender only
  takes itself down), within a bounded ``pool_respawn_budget``.  Under
  ``fail_fast`` the exception propagates exactly as before.
* **Fault injection** — an active :class:`~.faults.FaultPlan` (the
  ``fault_plan=`` argument, :func:`repro.experiments.engine.faults.install_plan`,
  or ``REPRO_FAULT_PLAN``) deterministically trips worker raises/kills/
  hangs so all of the above is test-provable.

The worker count resolves as: explicit ``jobs=`` argument, else the
``REPRO_JOBS`` environment variable, else 1 (serial).
"""

from __future__ import annotations

import hashlib
import os
import time
import traceback
from collections import OrderedDict
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.experiments.engine import faults as faults_mod
from repro.experiments.engine.cache import ResultCache
from repro.experiments.engine.faults import FaultPlan, apply_worker_fault
from repro.experiments.engine.progress import BatchProgress, ProgressSink
from repro.experiments.engine.spec import SimJob
from repro.sim.metrics import SimulationResult
from repro.sim.system import run_workload

#: Environment variable selecting the default worker-process count.
JOBS_ENV = "REPRO_JOBS"

#: Chunks created per worker and batch: enough that a slow chunk cannot
#: leave workers idle for long, few enough that pickling/IPC is amortized
#: over several jobs per round-trip.
CHUNKS_PER_WORKER = 4

#: Per-worker memo capacities.  Traces are the big entries (tens of
#: thousands of records at paper scale), so their cap is small; built
#: ``SystemConfig`` objects are tiny.
TRACE_MEMO_ENTRIES = 32
CONFIG_MEMO_ENTRIES = 256

#: Legal ``failure_policy`` values.
FAILURE_POLICIES = ("fail_fast", "retry_then_skip", "retry_then_fail")


@dataclass(frozen=True)
class RetryPolicy:
    """How many times a failed job is retried, and how long to wait.

    The backoff before attempt ``n+1`` is
    ``backoff_base_s * backoff_factor ** (n - 1)``, clamped to
    ``backoff_max_s``, scaled by ``1 + jitter * u`` where ``u`` in
    ``[0, 1)`` is derived from SHA-256 of the job key and the attempt
    number — deterministic per (job, attempt), so reruns of a sweep
    reproduce the same schedule while distinct jobs still decorrelate.
    """

    #: Total attempts per job, including the first (1 = never retry).
    max_attempts: int = 3
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 5.0
    #: Relative jitter amplitude (0 disables jitter).
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, "
                             f"got {self.max_attempts}")

    def delay_s(self, key: str, attempt: int) -> float:
        """Seconds to wait after failed ``attempt`` (1-based) of ``key``."""
        base = min(self.backoff_base_s
                   * self.backoff_factor ** max(0, attempt - 1),
                   self.backoff_max_s)
        if self.jitter and base > 0:
            digest = hashlib.sha256(
                f"{key}:{attempt}".encode("utf-8")).digest()
            unit = int.from_bytes(digest[:8], "big") / 2.0 ** 64
            base = min(base * (1.0 + self.jitter * unit),
                       self.backoff_max_s)
        return base


@dataclass(frozen=True)
class WatchdogPolicy:
    """Soft deadlines for parallel chunks (the hung-worker watchdog).

    A chunk's allowance is ``factor * ewma_job_s * chunk_jobs`` clamped
    to ``[floor_s, ceiling_s]``, where ``ewma_job_s`` is an exponentially
    weighted average of observed per-job simulation times (seeded with
    ``initial_ewma_s`` until the first observation).  The deadline clock
    restarts whenever *any* chunk completes, so the watchdog measures
    batch stall, not queue wait: it only fires when nothing has finished
    for a whole allowance — the signature of a hung worker.
    """

    enabled: bool = True
    floor_s: float = 30.0
    ceiling_s: float = 600.0
    factor: float = 8.0
    ewma_alpha: float = 0.3
    initial_ewma_s: float = 1.0

    def allowance_s(self, chunk_jobs: int, ewma_job_s: float | None) -> float:
        per_job = ewma_job_s if ewma_job_s is not None \
            else self.initial_ewma_s
        raw = self.factor * per_job * max(1, chunk_jobs)
        return min(self.ceiling_s, max(self.floor_s, raw))


@dataclass
class JobFailure:
    """One job that exhausted every attempt (or failed under fail_fast)."""

    #: ``describe()`` output of the failed job (repr form).
    description: str
    #: Content-addressed cache key of the job.
    key: str
    #: Attempts consumed (including the failing one).
    attempts: int
    #: Repr of the final exception.
    error: str
    #: Full worker-side traceback of the final attempt.
    traceback: str

    def one_line(self) -> str:
        """Compact single-line form for multi-failure summaries.

        Multicore ``describe()`` dicts embed whole trace configs and run
        to kilobytes; a summary line elides the middle (the full text
        stays on :attr:`description`/:attr:`traceback`).
        """
        description = self.description
        if len(description) > 160:
            description = f"{description[:120]} ... {description[-36:]}"
        return f"{description} (attempts={self.attempts}): {self.error}"


@dataclass
class BatchReport:
    """Everything that happened to one :meth:`JobExecutor.run` batch."""

    #: Distinct jobs in the batch (after dedup).
    total: int = 0
    #: Jobs answered from the result cache.
    cache_hits: int = 0
    #: Simulations that completed successfully.
    executed: int = 0
    #: Retry attempts performed (failures and worker deaths that were
    #: resubmitted; excludes watchdog resubmissions, which
    #: ``chunk_timeouts`` counts).
    retries: int = 0
    #: Chunks the watchdog timed out and resubmitted.
    chunk_timeouts: int = 0
    #: Worker pools respawned mid-batch (worker death or watchdog kill).
    pool_respawns: int = 0
    #: Jobs that exhausted every attempt.
    failures: list[JobFailure] = field(default_factory=list)
    #: Cache keys of jobs skipped under ``retry_then_skip``.
    skipped_keys: list[str] = field(default_factory=list)
    #: The failure policy the batch ran under.
    policy: str = "fail_fast"

    @property
    def failed(self) -> int:
        return len(self.failures)

    @property
    def skipped(self) -> int:
        return len(self.skipped_keys)

    def summary(self) -> str:
        """One-line outcome: the CLI's nonzero-exit message."""
        parts = [f"{self.failed} failed", f"{self.skipped} skipped",
                 f"{self.retries} retried"]
        if self.chunk_timeouts:
            parts.append(f"{self.chunk_timeouts} chunk timeout(s)")
        if self.pool_respawns:
            parts.append(f"{self.pool_respawns} pool respawn(s)")
        return ", ".join(parts)


class JobExecutionError(RuntimeError):
    """One or more jobs failed for good (attempts exhausted).

    The message embeds every failed job's :meth:`~SimJob.describe` output
    — the first with its full worker-side traceback, the rest as one-line
    summaries — so a poisoned point of a large sweep is identifiable
    without re-running anything.  ``report`` carries the structured
    :class:`BatchReport` (per-job attempts, skipped keys, retry counts).
    """

    def __init__(self, message: str, job=None,
                 report: BatchReport | None = None):
        super().__init__(message)
        self.job = job
        self.report = report

    @classmethod
    def from_report(cls, report: BatchReport, job=None) -> "JobExecutionError":
        first = report.failures[0]
        lines = [f"{report.failed} job(s) failed "
                 f"(policy {report.policy}: {report.summary()})",
                 f"job failed: {first.description}",
                 f"cause: {first.error}",
                 first.traceback.rstrip()]
        if report.failed > 1:
            lines.append("also failed:")
            lines.extend(f"  [{ordinal}] {failure.one_line()}"
                         for ordinal, failure
                         in enumerate(report.failures[1:], start=2))
        return cls("\n".join(lines), job=job, report=report)


class _Memo:
    """Bounded FIFO memo for built traces and system configurations."""

    __slots__ = ("traces", "configs")

    def __init__(self):
        self.traces: OrderedDict = OrderedDict()
        self.configs: OrderedDict = OrderedDict()

    @staticmethod
    def _get(store: OrderedDict, key, build, cap: int):
        try:
            return store[key]
        except (KeyError, TypeError):
            # TypeError: unhashable signature from a duck-typed job —
            # fall back to building without memoization.
            value = build()
            try:
                store[key] = value
            except TypeError:
                return value
            while len(store) > cap:
                store.popitem(last=False)
            return value

    def materialize(self, job):
        """The (config, traces) pair for ``job``, memoized by signature."""
        config = self._get(self.configs, job.config_signature(),
                           job.build_config, CONFIG_MEMO_ENTRIES)
        traces = self._get(self.traces, job.trace_signature(),
                           job.build_traces, TRACE_MEMO_ENTRIES)
        return config, traces


#: The process-local memo.  In the parent process it serves the serial
#: path; in workers it is (re-)installed by :func:`_init_worker`.
_MEMO = _Memo()


def _init_worker() -> None:
    """Worker initializer: install a fresh process-local memo.

    With the default ``fork`` start method the worker inherits the
    parent's memo contents at pool-creation time (a free warm start); a
    ``spawn`` context starts empty.  Either way the memo is per-process
    afterwards, so workers never contend on shared state.
    """
    global _MEMO
    if _MEMO is None:  # pragma: no cover - spawn-context safety net
        _MEMO = _Memo()


def _run_job(job) -> tuple[SimulationResult, float]:
    """Run one job with memoized inputs; returns (result, sim CPU secs).

    Identical to ``job.run()`` bit for bit — the memo only changes *when*
    traces and configs are built, never their contents.  The returned CPU
    time covers exactly the simulation (``run_workload``), excluding trace
    generation and config construction, so the executor can report true
    engine overhead (wall minus simulation CPU).
    """
    config, traces = _MEMO.materialize(job)
    cpu_start = time.process_time()
    result = run_workload(config, traces, job.workload_name)
    return result, time.process_time() - cpu_start


def _run_chunk(chunk: Sequence[tuple[int, SimJob, int, float]],
               plan: FaultPlan | None = None):
    """Worker entry point: run a chunk of (index, job, attempt, delay)
    items.

    ``delay_s`` is the retry backoff (slept in the worker so the parent's
    drain loop never blocks); ``attempt`` feeds the fault-injection plan
    so transient faults can clear on the retry.  Returns
    ``(worker_pid, done, failure)`` where ``done`` is a list of
    ``(index, result, sim_cpu_s)`` for every job that finished and
    ``failure`` is ``None`` or ``(index, exception_repr, traceback_text)``
    for the first job that raised.  Exceptions are shipped as text —
    never pickled — so arbitrary worker failures survive the IPC
    boundary; the parent retries or reports with the job's full
    description.
    """
    done = []
    for index, job, attempt, delay_s in chunk:
        try:
            if delay_s > 0:
                time.sleep(delay_s)
            apply_worker_fault(plan, index, attempt)
            result, sim_cpu = _run_job(job)
        except BaseException as exc:
            return os.getpid(), done, (index, repr(exc),
                                       traceback.format_exc())
        done.append((index, result, sim_cpu))
    return os.getpid(), done, None


def _execute_job(job: SimJob) -> SimulationResult:
    """Single-job worker entry point (kept for API compatibility)."""
    return job.run()


def resolve_jobs(jobs: int | None = None) -> int:
    """Resolve the worker count from an argument or ``REPRO_JOBS``."""
    if jobs is None:
        jobs = int(os.environ.get(JOBS_ENV, "1"))
    if jobs < 1:
        raise ValueError(f"worker count must be >= 1, got {jobs}")
    return jobs


def resolve_failure_policy(policy: str | None) -> str:
    """Validate a ``failure_policy`` name (``None`` -> ``fail_fast``)."""
    if policy is None:
        return "fail_fast"
    if policy not in FAILURE_POLICIES:
        raise ValueError(f"unknown failure policy {policy!r} "
                         f"(expected one of {FAILURE_POLICIES})")
    return policy


def _chunked(items: list, chunks: int) -> list[list]:
    """Split ``items`` into at most ``chunks`` contiguous, even pieces."""
    chunks = max(1, min(chunks, len(items)))
    size, extra = divmod(len(items), chunks)
    out = []
    start = 0
    for i in range(chunks):
        end = start + size + (1 if i < extra else 0)
        out.append(items[start:end])
        start = end
    return out


def _kill_pool_processes(pool: ProcessPoolExecutor) -> None:
    """Best-effort SIGTERM to a pool's workers (a hung worker never
    returns, so a graceful shutdown would wait forever)."""
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except Exception:  # pragma: no cover - already-dead process
            pass


class JobExecutor:
    """Runs simulation-job batches through a cache and a warm worker pool."""

    def __init__(self, cache: ResultCache | None = None,
                 jobs: int | None = None,
                 progress: ProgressSink | None = None,
                 failure_policy: str | None = None,
                 retry: RetryPolicy | None = None,
                 watchdog: WatchdogPolicy | None = None,
                 fault_plan: FaultPlan | None = None,
                 pool_respawn_budget: int = 3):
        self.cache = cache if cache is not None else ResultCache()
        self.jobs = resolve_jobs(jobs)
        #: Optional progress sink; every batch emits lifecycle events to
        #: it (see :mod:`repro.experiments.engine.progress`).  Assignable
        #: after construction — the CLI attaches sinks that way.
        self.progress = progress
        #: Default failure policy for :meth:`run` (overridable per call).
        self.failure_policy = resolve_failure_policy(failure_policy)
        self.retry = retry if retry is not None else RetryPolicy()
        self.watchdog = watchdog if watchdog is not None \
            else WatchdogPolicy()
        #: Explicit fault plan; ``None`` falls back to the process-wide
        #: plan (``REPRO_FAULT_PLAN`` / :func:`faults.install_plan`).
        self.fault_plan = fault_plan
        #: Pools the executor may respawn per batch after worker deaths
        #: or watchdog kills before giving up.
        self.pool_respawn_budget = pool_respawn_budget
        #: Simulations actually executed (cache misses) over the lifetime.
        self.simulations_executed = 0
        #: Jobs answered straight from the cache over the lifetime.
        self.cache_hits = 0
        #: Retry attempts performed over the lifetime.
        self.retries = 0
        #: Jobs skipped (``retry_then_skip``) over the lifetime.
        self.jobs_skipped = 0
        #: Jobs that exhausted every attempt over the lifetime.
        self.jobs_failed = 0
        #: Chunks the watchdog timed out over the lifetime.
        self.chunk_timeouts = 0
        #: Worker pools respawned mid-batch over the lifetime.
        self.pool_respawns = 0
        #: CPU seconds spent inside ``run_workload`` (summed over workers)
        #: for every simulation this executor ran.  ``wall - sim_cpu_s``
        #: is the engine's own overhead: trace generation, config builds,
        #: pickling, scheduling, and cache writes.
        self.sim_cpu_s = 0.0
        #: Worker PIDs that produced results in the most recent parallel
        #: batch (the parent PID for serial batches).  Lets tests — and
        #: the bench — verify the pool stays warm across batches.
        self.last_worker_pids: frozenset[int] = frozenset()
        #: Structured outcome of the most recent :meth:`run` batch.
        self.last_report: BatchReport | None = None
        #: Per-job EWMA of observed simulation seconds (watchdog input).
        self._job_ewma_s: float | None = None
        self._pool: ProcessPoolExecutor | None = None

    # ------------------------------------------------------------------
    # Warm-pool lifecycle.
    # ------------------------------------------------------------------
    @property
    def pool_active(self) -> bool:
        """Whether a warm worker pool is currently alive."""
        return self._pool is not None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs,
                                             initializer=_init_worker)
        return self._pool

    def _discard_pool(self, kill: bool = False) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            if kill:
                _kill_pool_processes(pool)
            pool.shutdown(wait=False, cancel_futures=True)

    def close(self) -> None:
        """Shut the warm worker pool down (idempotent).

        The executor stays usable: the next parallel batch lazily spins a
        fresh pool up again.
        """
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "JobExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Batch execution.
    # ------------------------------------------------------------------
    def run(self, jobs: Iterable[SimJob],
            failure_policy: str | None = None
            ) -> dict[SimJob, SimulationResult]:
        """Run a batch of jobs; returns one result per *distinct* job.

        Duplicate jobs (equal specs) are deduplicated before execution, and
        jobs whose content-addressed key is already cached are not run at
        all.  Results land in the cache in completion order (so partial
        sweeps are resumable) but are returned in submission order, so the
        mapping — and everything derived from it — is independent of
        worker scheduling.

        ``failure_policy`` overrides the executor default for this batch;
        under ``retry_then_skip`` jobs that exhaust their attempts are
        simply absent from the returned mapping (their keys are listed in
        :attr:`last_report`).
        """
        policy = resolve_failure_policy(
            failure_policy if failure_policy is not None
            else self.failure_policy)
        plan = self.fault_plan if self.fault_plan is not None \
            else faults_mod.active_plan()

        ordered: list[tuple[SimJob, str]] = []
        seen: set[SimJob] = set()
        for job in jobs:
            if job not in seen:
                seen.add(job)
                ordered.append((job, job.key()))

        results: dict[SimJob, SimulationResult] = {}
        pending: list[tuple[SimJob, str]] = []
        batch_hits = 0
        for job, key in ordered:
            cached = self.cache.get(key)
            if cached is not None:
                self.cache_hits += 1
                batch_hits += 1
                results[job] = cached
            else:
                pending.append((job, key))

        report = BatchReport(total=len(ordered), cache_hits=batch_hits,
                             policy=policy)
        self.last_report = report
        tracker = None
        if self.progress is not None:
            tracker = BatchProgress(self.progress, total=len(ordered),
                                    cache_hits=batch_hits,
                                    workers=self.jobs)
            tracker.batch_start()
        try:
            if pending:
                if self.jobs > 1 and len(pending) > 1:
                    self._run_parallel(pending, results, tracker,
                                       policy, report, plan)
                else:
                    self._run_serial(pending, results, tracker,
                                     policy, report, plan)
        finally:
            if tracker is not None:
                tracker.batch_end()
        self._finish_report(report, tracker)
        # Submission order, independent of completion order.
        return {job: results[job] for job, _ in ordered if job in results}

    def run_one(self, job: SimJob) -> SimulationResult:
        """Run a single job through the cache (always serial)."""
        return self.run([job])[job]

    def _finish_report(self, report: BatchReport,
                       tracker: BatchProgress | None) -> None:
        """Fold the finished batch into lifetime counters; raise if the
        policy says failures are fatal."""
        if not report.failures:
            return
        if report.policy == "retry_then_skip":
            for failure in report.failures:
                report.skipped_keys.append(failure.key)
                self.jobs_skipped += 1
                if tracker is not None:
                    tracker.job_skipped(failure.error, failure.description)
            return
        raise JobExecutionError.from_report(report)

    # ------------------------------------------------------------------
    # Shared attempt bookkeeping.
    # ------------------------------------------------------------------
    def _record_success(self, job, key, result, sim_cpu, results) -> None:
        self.simulations_executed += 1
        self.sim_cpu_s += sim_cpu
        results[job] = result
        alpha = self.watchdog.ewma_alpha
        self._job_ewma_s = sim_cpu if self._job_ewma_s is None \
            else alpha * sim_cpu + (1.0 - alpha) * self._job_ewma_s

    def _record_failure(self, report: BatchReport, job, key, attempts: int,
                        error: str, tb_text: str) -> None:
        self.jobs_failed += 1
        report.failures.append(JobFailure(
            description=_describe(job), key=key, attempts=attempts,
            error=error, traceback=tb_text))

    # ------------------------------------------------------------------
    # Serial execution.
    # ------------------------------------------------------------------
    def _run_serial(self, pending: Sequence[tuple[SimJob, str]],
                    results: dict,
                    tracker: BatchProgress | None,
                    policy: str, report: BatchReport,
                    plan: FaultPlan | None) -> None:
        self.last_worker_pids = frozenset((os.getpid(),))
        max_attempts = 1 if policy == "fail_fast" \
            else self.retry.max_attempts
        for index, (job, key) in enumerate(pending):
            attempt = 1
            while True:
                try:
                    # The serial path runs in this very process, so an
                    # injected "exit" fault raises instead of killing us.
                    apply_worker_fault(plan, index, attempt,
                                       allow_exit=False)
                    result, sim_cpu = _run_job(job)
                except Exception as exc:
                    if attempt < max_attempts:
                        delay = self.retry.delay_s(key, attempt)
                        self.retries += 1
                        report.retries += 1
                        if tracker is not None:
                            tracker.job_retried(repr(exc), _describe(job),
                                                attempt + 1)
                        if delay > 0:
                            time.sleep(delay)
                        attempt += 1
                        continue
                    if policy == "fail_fast":
                        if tracker is not None:
                            tracker.job_failed(repr(exc), _describe(job))
                        raise JobExecutionError(
                            f"job failed: {_describe(job)}\n"
                            f"cause: {exc!r}", job=job,
                            report=report) from exc
                    if tracker is not None:
                        tracker.job_failed(repr(exc), _describe(job))
                    self._record_failure(report, job, key, attempt,
                                         repr(exc),
                                         traceback.format_exc())
                    break
                self._record_success(job, key, result, sim_cpu, results)
                report.executed += 1
                self.cache.put(key, result)
                if tracker is not None:
                    tracker.job_completed()
                break

    # ------------------------------------------------------------------
    # Parallel execution.
    # ------------------------------------------------------------------
    def _run_parallel(self, pending: Sequence[tuple[SimJob, str]],
                      results: dict,
                      tracker: BatchProgress | None,
                      policy: str, report: BatchReport,
                      plan: FaultPlan | None) -> None:
        # Group same-trace jobs into the same chunk so each worker builds
        # (or memo-hits) as few distinct traces as possible, then split
        # into ~CHUNKS_PER_WORKER x workers chunks.  The grouping is a
        # deterministic reorder of *execution*; returned results are
        # reassembled by index, so output order never changes.
        indexed = list(enumerate(pending))
        indexed.sort(key=lambda item: (_sort_token(item[1][0]), item[0]))
        tasks = [(index, job) for index, (job, _) in indexed]
        chunks = _chunked(tasks, CHUNKS_PER_WORKER * self.jobs)

        max_attempts = 1 if policy == "fail_fast" \
            else self.retry.max_attempts
        attempts = {index: 1 for index, _ in tasks}
        delays = {index: 0.0 for index, _ in tasks}
        #: In-flight future -> the (index, job) items it is running.
        in_flight: dict = {}
        #: Watchdog allowance per in-flight future (seconds).
        allowance: dict = {}
        pids: set[int] = set()
        fail_fast_tripped = False
        last_progress = time.monotonic()

        spawned = self._pool is None
        pool = self._ensure_pool()
        if spawned and tracker is not None:
            tracker.pool_spawned()

        #: Items whose submission hit an already-broken pool; picked up
        #: (and resubmitted to the respawned pool) by handle_broken_pool.
        orphans: list = []

        def submit(items) -> None:
            payload = [(index, job, attempts[index], delays[index])
                       for index, job in items]
            try:
                future = pool.submit(_run_chunk, payload, plan)
            except BrokenProcessPool:
                orphans.extend(items)
                return
            in_flight[future] = list(items)
            allowance[future] = self.watchdog.allowance_s(
                len(items), self._job_ewma_s)
            if tracker is not None:
                tracker.chunk_dispatched(len(items))

        def drain(items, chunk_result) -> list[list]:
            """Fold one finished chunk into results/cache/report.

            Returns the chunks that now need resubmitting (a retried
            failure, plus any items the chunk never reached).  The caller
            submits them — never this function, because after a pool
            break the resubmission target is a *new* pool.
            """
            nonlocal fail_fast_tripped, last_progress
            pid, done, failure = chunk_result
            pids.add(pid)
            last_progress = time.monotonic()
            stored = []
            for index, result, sim_cpu in done:
                job, key = pending[index]
                self._record_success(job, key, result, sim_cpu, results)
                report.executed += 1
                stored.append((key, result))
            self.cache.put_many(stored)
            if tracker is not None and done:
                tracker.chunk_completed(len(done), pid)
            if failure is None:
                return []
            failed_index, exc_repr, tb_text = failure
            job, key = pending[failed_index]
            # Items after the failed one never ran; they carry no blame.
            position = next(i for i, (index, _) in enumerate(items)
                            if index == failed_index)
            unrun = items[position + 1:]
            if policy == "fail_fast":
                fail_fast_tripped = True
                if tracker is not None:
                    tracker.job_failed(exc_repr, _describe(job))
                self._record_failure(report, job, key,
                                     attempts[failed_index],
                                     exc_repr, tb_text)
                # Don't start work that can no longer matter; chunks
                # already running finish and are drained normally.
                for other in in_flight:
                    other.cancel()
                return []
            resubmit: list[list] = []
            if attempts[failed_index] < max_attempts:
                delays[failed_index] = self.retry.delay_s(
                    key, attempts[failed_index])
                attempts[failed_index] += 1
                self.retries += 1
                report.retries += 1
                if tracker is not None:
                    tracker.job_retried(exc_repr, _describe(job),
                                        attempts[failed_index])
                # The retried job gets its own chunk: its backoff sleep
                # must not delay the innocent unrun items behind it.
                resubmit.append([(failed_index, job)])
            else:
                if tracker is not None:
                    tracker.job_failed(exc_repr, _describe(job))
                self._record_failure(report, job, key,
                                     attempts[failed_index],
                                     exc_repr, tb_text)
            if unrun:
                resubmit.append(unrun)
            return resubmit

        def fail_lost(lost, cause: str, tb_text: str) -> None:
            for index, job in lost:
                self._record_failure(report, job, pending[index][1],
                                     attempts[index], cause, tb_text)
                if tracker is not None:
                    tracker.job_failed(cause, _describe(job))

        def handle_broken_pool(exc: BaseException) -> None:
            """Drain what survived, then respawn (or re-raise) per policy.

            When a worker dies the pool marks *every* outstanding future
            broken, so in-flight chunks split cleanly into those that
            returned a result before the death and those whose work is
            lost.  Lost jobs are resubmitted one per chunk, so a repeat
            offender only takes itself down next time.
            """
            lost: list = list(orphans)
            orphans.clear()
            resubmit: list[list] = []
            for future, items in list(in_flight.items()):
                del in_flight[future]
                allowance.pop(future, None)
                if future.cancelled():
                    continue
                try:
                    chunk_result = future.result(timeout=0)
                except Exception:
                    lost.extend(items)
                    continue
                resubmit.extend(drain(items, chunk_result))
            self._discard_pool()
            if tracker is not None:
                tracker.pool_broken()
            if policy == "fail_fast":
                # Everything drained so far is already in the cache —
                # that is the resumability guarantee — but the pool is
                # unusable; the next run() starts a fresh one.
                self.last_worker_pids = frozenset(pids)
                raise exc
            if report.pool_respawns >= self.pool_respawn_budget:
                cause = "worker pool respawn budget exhausted"
                fail_lost(lost + [item for chunk in resubmit
                                  for item in chunk],
                          cause, cause + "; no worker-side traceback "
                          "is available\n")
                return
            self.pool_respawns += 1
            report.pool_respawns += 1
            nonlocal pool
            pool = self._ensure_pool()
            if tracker is not None:
                tracker.pool_respawned()
            for chunk_items in resubmit:
                submit(chunk_items)
            cause = "worker process died (pool respawned)"
            for index, job in lost:
                key = pending[index][1]
                if attempts[index] < max_attempts:
                    delays[index] = self.retry.delay_s(key,
                                                       attempts[index])
                    attempts[index] += 1
                    self.retries += 1
                    report.retries += 1
                    if tracker is not None:
                        tracker.job_retried(cause, _describe(job),
                                            attempts[index])
                    submit([(index, job)])
                else:
                    fail_lost([(index, job)], cause,
                              cause + "; no worker-side traceback is "
                              "available for a dead worker\n")

        def handle_watchdog() -> None:
            """Kill the stalled pool; resubmit every in-flight chunk —
            timed-out ones with a bumped attempt."""
            now = time.monotonic()
            overdue, healthy = [], []
            resubmit: list[list] = []
            for future, items in list(in_flight.items()):
                fut_allowance = allowance.pop(
                    future, self.watchdog.ceiling_s)
                del in_flight[future]
                if future.done() and not future.cancelled():
                    # Completed in the window between wait() and here.
                    try:
                        resubmit.extend(
                            drain(items, future.result(timeout=0)))
                        continue
                    except Exception:
                        pass  # fall through: treat as lost work
                stalled = now - last_progress >= fut_allowance
                (overdue if stalled else healthy).append(items)
            self._discard_pool(kill=True)
            for items in overdue:
                self.chunk_timeouts += 1
                report.chunk_timeouts += 1
                if tracker is not None:
                    tracker.chunk_timeout(len(items))
            self.pool_respawns += 1
            report.pool_respawns += 1
            nonlocal pool
            pool = self._ensure_pool()
            if tracker is not None:
                tracker.pool_respawned()
            for items in healthy:
                submit(items)
            for chunk_items in resubmit:
                submit(chunk_items)
            cause = "chunk exceeded the watchdog deadline"
            for items in overdue:
                for index, job in items:
                    if attempts[index] < max_attempts:
                        attempts[index] += 1
                        submit([(index, job)])
                    else:
                        fail_lost([(index, job)], cause,
                                  cause + "; the worker was killed\n")

        for chunk in chunks:
            submit(chunk)
        try:
            while in_flight or orphans:
                if not in_flight:
                    # Submissions bounced off a broken pool and nothing
                    # is left to drain: respawn and resubmit them.
                    handle_broken_pool(
                        BrokenProcessPool("pool broke during resubmission"))
                    continue
                timeout = None
                if self.watchdog.enabled:
                    now = time.monotonic()
                    next_deadline = min(
                        last_progress
                        + allowance.get(future, self.watchdog.ceiling_s)
                        for future in in_flight)
                    timeout = max(0.05, next_deadline - now)
                done, _ = wait(set(in_flight), timeout=timeout,
                               return_when=FIRST_COMPLETED)
                broken: BaseException | None = None
                for future in done:
                    items = in_flight.pop(future)
                    allowance.pop(future, None)
                    if future.cancelled():
                        continue
                    try:
                        for chunk_items in drain(items, future.result()):
                            submit(chunk_items)
                    except BrokenProcessPool as exc:
                        # A worker died (OOM-kill, crash, os._exit); the
                        # sibling futures are doomed too — handle them
                        # all at once.
                        in_flight[future] = items  # hand back for triage
                        broken = exc
                        break
                if broken is not None:
                    handle_broken_pool(broken)
                    continue
                if not done and self.watchdog.enabled:
                    now = time.monotonic()
                    if any(now - last_progress
                           >= allowance.get(future,
                                            self.watchdog.ceiling_s)
                           for future in in_flight):
                        if report.pool_respawns >= self.pool_respawn_budget:
                            for future, items in list(in_flight.items()):
                                del in_flight[future]
                                allowance.pop(future, None)
                                future.cancel()
                                for index, job in items:
                                    self._record_failure(
                                        report, job, pending[index][1],
                                        attempts[index],
                                        "worker pool respawn budget "
                                        "exhausted (watchdog)",
                                        "worker pool respawn budget "
                                        "exhausted after repeated "
                                        "watchdog kills\n")
                            self._discard_pool(kill=True)
                        else:
                            handle_watchdog()
        finally:
            self.last_worker_pids = frozenset(pids)

        if fail_fast_tripped and report.failures:
            # Raised here (not in _finish_report) to preserve the classic
            # single-failure message shape plus the full failure list.
            raise JobExecutionError.from_report(
                report, job=_job_of_first_failure(report, pending))


def _job_of_first_failure(report: BatchReport, pending) -> object | None:
    """The job object behind the report's first failure (for
    ``JobExecutionError.job``)."""
    first_key = report.failures[0].key
    for job, key in pending:
        if key == first_key:
            return job
    return None


def _describe(job) -> str:
    """Best-effort one-line description of a job for error messages."""
    try:
        return repr(job.describe())
    except Exception:  # pragma: no cover - describe() itself failing
        return repr(job)


def _sort_token(job) -> str:
    """Deterministic grouping token: jobs sharing traces sort together."""
    try:
        return repr(job.trace_signature())
    except Exception:
        return repr(job)
