"""Parallel job execution with a warm worker pool and cache-aware batching.

:class:`JobExecutor` takes batches of :class:`~repro.experiments.engine.spec.SimJob`
descriptions, answers every job it can from the :class:`ResultCache`, and
fans the remaining simulations across worker processes with
``concurrent.futures.ProcessPoolExecutor``.  ``jobs=1`` (the default) is a
deterministic serial fallback that never spawns processes, and the two
paths are bit-identical: every simulation is seeded and self-contained, so
only wall-clock time changes with the worker count.

Throughput machinery (what makes sustained sweeps fast):

* **Warm persistent pool** — the executor owns one long-lived
  ``ProcessPoolExecutor``, created lazily on the first parallel batch and
  reused across every subsequent :meth:`JobExecutor.run` call, so a
  session of figure batches pays pool spin-up once instead of per batch.
  ``close()`` (or using the executor as a context manager) shuts it down.
* **Per-worker memo** — a process-local cache installed by the worker
  initializer memoizes trace generation and ``SystemConfig`` construction
  by the job's :meth:`~SimJob.trace_signature` /
  :meth:`~SimJob.config_signature`, so evaluating six configurations on
  one benchmark generates the benchmark's trace once per worker, not six
  times.  The serial path shares the same memo in the parent process.
* **Chunked dispatch** — pending jobs are grouped (same-trace jobs
  adjacent) into roughly ``4 x workers`` chunks per batch, amortizing
  pickling and IPC round-trips over many jobs.
* **Completion-order draining** — chunk results are consumed with
  ``as_completed`` and written to the cache the moment they land, so a
  crash mid-sweep loses only in-flight chunks: re-running the same sweep
  against a persistent cache simulates only the jobs that never finished.
  The *returned* mapping is still in deterministic submission order.

The worker count resolves as: explicit ``jobs=`` argument, else the
``REPRO_JOBS`` environment variable, else 1 (serial).
"""

from __future__ import annotations

import os
import time
import traceback
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from typing import Iterable, Sequence

from repro.experiments.engine.cache import ResultCache
from repro.experiments.engine.progress import BatchProgress, ProgressSink
from repro.experiments.engine.spec import SimJob
from repro.sim.metrics import SimulationResult
from repro.sim.system import run_workload

#: Environment variable selecting the default worker-process count.
JOBS_ENV = "REPRO_JOBS"

#: Chunks created per worker and batch: enough that a slow chunk cannot
#: leave workers idle for long, few enough that pickling/IPC is amortized
#: over several jobs per round-trip.
CHUNKS_PER_WORKER = 4

#: Per-worker memo capacities.  Traces are the big entries (tens of
#: thousands of records at paper scale), so their cap is small; built
#: ``SystemConfig`` objects are tiny.
TRACE_MEMO_ENTRIES = 32
CONFIG_MEMO_ENTRIES = 256


class JobExecutionError(RuntimeError):
    """A job failed inside a worker (or the serial path).

    The message embeds the failing job's :meth:`~SimJob.describe` output
    and the worker-side traceback, so a poisoned point of a large sweep is
    identifiable without re-running anything.
    """

    def __init__(self, message: str, job=None):
        super().__init__(message)
        self.job = job


class _Memo:
    """Bounded FIFO memo for built traces and system configurations."""

    __slots__ = ("traces", "configs")

    def __init__(self):
        self.traces: OrderedDict = OrderedDict()
        self.configs: OrderedDict = OrderedDict()

    @staticmethod
    def _get(store: OrderedDict, key, build, cap: int):
        try:
            return store[key]
        except (KeyError, TypeError):
            # TypeError: unhashable signature from a duck-typed job —
            # fall back to building without memoization.
            value = build()
            try:
                store[key] = value
            except TypeError:
                return value
            while len(store) > cap:
                store.popitem(last=False)
            return value

    def materialize(self, job):
        """The (config, traces) pair for ``job``, memoized by signature."""
        config = self._get(self.configs, job.config_signature(),
                           job.build_config, CONFIG_MEMO_ENTRIES)
        traces = self._get(self.traces, job.trace_signature(),
                           job.build_traces, TRACE_MEMO_ENTRIES)
        return config, traces


#: The process-local memo.  In the parent process it serves the serial
#: path; in workers it is (re-)installed by :func:`_init_worker`.
_MEMO = _Memo()


def _init_worker() -> None:
    """Worker initializer: install a fresh process-local memo.

    With the default ``fork`` start method the worker inherits the
    parent's memo contents at pool-creation time (a free warm start); a
    ``spawn`` context starts empty.  Either way the memo is per-process
    afterwards, so workers never contend on shared state.
    """
    global _MEMO
    if _MEMO is None:  # pragma: no cover - spawn-context safety net
        _MEMO = _Memo()


def _run_job(job) -> tuple[SimulationResult, float]:
    """Run one job with memoized inputs; returns (result, sim CPU secs).

    Identical to ``job.run()`` bit for bit — the memo only changes *when*
    traces and configs are built, never their contents.  The returned CPU
    time covers exactly the simulation (``run_workload``), excluding trace
    generation and config construction, so the executor can report true
    engine overhead (wall minus simulation CPU).
    """
    config, traces = _MEMO.materialize(job)
    cpu_start = time.process_time()
    result = run_workload(config, traces, job.workload_name)
    return result, time.process_time() - cpu_start


def _run_chunk(chunk: Sequence[tuple[int, SimJob]]):
    """Worker entry point: run a chunk of (index, job) pairs.

    Returns ``(worker_pid, done, failure)`` where ``done`` is a list of
    ``(index, result, sim_cpu_s)`` for every job that finished and
    ``failure`` is ``None`` or ``(index, exception_repr, traceback_text)``
    for the first job that raised.  Exceptions are shipped as text —
    never pickled — so arbitrary worker failures survive the IPC
    boundary; the parent re-raises with the job's full description.
    """
    done = []
    for index, job in chunk:
        try:
            result, sim_cpu = _run_job(job)
        except BaseException as exc:
            return os.getpid(), done, (index, repr(exc),
                                       traceback.format_exc())
        done.append((index, result, sim_cpu))
    return os.getpid(), done, None


def _execute_job(job: SimJob) -> SimulationResult:
    """Single-job worker entry point (kept for API compatibility)."""
    return job.run()


def resolve_jobs(jobs: int | None = None) -> int:
    """Resolve the worker count from an argument or ``REPRO_JOBS``."""
    if jobs is None:
        jobs = int(os.environ.get(JOBS_ENV, "1"))
    if jobs < 1:
        raise ValueError(f"worker count must be >= 1, got {jobs}")
    return jobs


def _chunked(items: list, chunks: int) -> list[list]:
    """Split ``items`` into at most ``chunks`` contiguous, even pieces."""
    chunks = max(1, min(chunks, len(items)))
    size, extra = divmod(len(items), chunks)
    out = []
    start = 0
    for i in range(chunks):
        end = start + size + (1 if i < extra else 0)
        out.append(items[start:end])
        start = end
    return out


class JobExecutor:
    """Runs simulation-job batches through a cache and a warm worker pool."""

    def __init__(self, cache: ResultCache | None = None,
                 jobs: int | None = None,
                 progress: ProgressSink | None = None):
        self.cache = cache if cache is not None else ResultCache()
        self.jobs = resolve_jobs(jobs)
        #: Optional progress sink; every batch emits lifecycle events to
        #: it (see :mod:`repro.experiments.engine.progress`).  Assignable
        #: after construction — the CLI attaches sinks that way.
        self.progress = progress
        #: Simulations actually executed (cache misses) over the lifetime.
        self.simulations_executed = 0
        #: Jobs answered straight from the cache over the lifetime.
        self.cache_hits = 0
        #: CPU seconds spent inside ``run_workload`` (summed over workers)
        #: for every simulation this executor ran.  ``wall - sim_cpu_s``
        #: is the engine's own overhead: trace generation, config builds,
        #: pickling, scheduling, and cache writes.
        self.sim_cpu_s = 0.0
        #: Worker PIDs that produced results in the most recent parallel
        #: batch (the parent PID for serial batches).  Lets tests — and
        #: the bench — verify the pool stays warm across batches.
        self.last_worker_pids: frozenset[int] = frozenset()
        self._pool: ProcessPoolExecutor | None = None

    # ------------------------------------------------------------------
    # Warm-pool lifecycle.
    # ------------------------------------------------------------------
    @property
    def pool_active(self) -> bool:
        """Whether a warm worker pool is currently alive."""
        return self._pool is not None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs,
                                             initializer=_init_worker)
        return self._pool

    def _discard_pool(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def close(self) -> None:
        """Shut the warm worker pool down (idempotent).

        The executor stays usable: the next parallel batch lazily spins a
        fresh pool up again.
        """
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "JobExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Batch execution.
    # ------------------------------------------------------------------
    def run(self, jobs: Iterable[SimJob]) -> dict[SimJob, SimulationResult]:
        """Run a batch of jobs; returns one result per *distinct* job.

        Duplicate jobs (equal specs) are deduplicated before execution, and
        jobs whose content-addressed key is already cached are not run at
        all.  Results land in the cache in completion order (so partial
        sweeps are resumable) but are returned in submission order, so the
        mapping — and everything derived from it — is independent of
        worker scheduling.
        """
        ordered: list[tuple[SimJob, str]] = []
        seen: set[SimJob] = set()
        for job in jobs:
            if job not in seen:
                seen.add(job)
                ordered.append((job, job.key()))

        results: dict[SimJob, SimulationResult] = {}
        pending: list[tuple[SimJob, str]] = []
        batch_hits = 0
        for job, key in ordered:
            cached = self.cache.get(key)
            if cached is not None:
                self.cache_hits += 1
                batch_hits += 1
                results[job] = cached
            else:
                pending.append((job, key))

        tracker = None
        if self.progress is not None:
            tracker = BatchProgress(self.progress, total=len(ordered),
                                    cache_hits=batch_hits,
                                    workers=self.jobs)
            tracker.batch_start()
        try:
            if pending:
                if self.jobs > 1 and len(pending) > 1:
                    self._run_parallel(pending, results, tracker)
                else:
                    self._run_serial(pending, results, tracker)
        finally:
            if tracker is not None:
                tracker.batch_end()
        # Submission order, independent of completion order.
        return {job: results[job] for job, _ in ordered}

    def run_one(self, job: SimJob) -> SimulationResult:
        """Run a single job through the cache (always serial)."""
        return self.run([job])[job]

    # ------------------------------------------------------------------
    # Execution strategies.
    # ------------------------------------------------------------------
    def _run_serial(self, pending: Sequence[tuple[SimJob, str]],
                    results: dict,
                    tracker: BatchProgress | None = None) -> None:
        self.last_worker_pids = frozenset((os.getpid(),))
        for job, key in pending:
            try:
                result, sim_cpu = _run_job(job)
            except Exception as exc:
                if tracker is not None:
                    tracker.job_failed(repr(exc), _describe(job))
                raise JobExecutionError(
                    f"job failed: {_describe(job)}\n"
                    f"cause: {exc!r}", job=job) from exc
            self.simulations_executed += 1
            self.sim_cpu_s += sim_cpu
            self.cache.put(key, result)
            results[job] = result
            if tracker is not None:
                tracker.job_completed()

    def _run_parallel(self, pending: Sequence[tuple[SimJob, str]],
                      results: dict,
                      tracker: BatchProgress | None = None) -> None:
        # Group same-trace jobs into the same chunk so each worker builds
        # (or memo-hits) as few distinct traces as possible, then split
        # into ~CHUNKS_PER_WORKER x workers chunks.  The grouping is a
        # deterministic reorder of *execution*; returned results are
        # reassembled by index, so output order never changes.
        indexed = list(enumerate(pending))
        indexed.sort(key=lambda item: (_sort_token(item[1][0]), item[0]))
        tasks = [(index, job) for index, (job, _) in indexed]
        chunks = _chunked(tasks, CHUNKS_PER_WORKER * self.jobs)

        spawned = self._pool is None
        pool = self._ensure_pool()
        if spawned and tracker is not None:
            tracker.pool_spawned()
        futures = []
        for chunk in chunks:
            futures.append(pool.submit(_run_chunk, chunk))
            if tracker is not None:
                tracker.chunk_dispatched(len(chunk))
        pids = set()
        failure = None
        failed_job = None
        try:
            # Completion-order draining: every finished chunk's results
            # are cached immediately — even when another chunk failed —
            # so a crash or poison job loses only in-flight work.
            for future in as_completed(futures):
                if future.cancelled():
                    continue
                pid, done, chunk_failure = future.result()
                pids.add(pid)
                stored = []
                for index, result, sim_cpu in done:
                    job, key = pending[index]
                    self.simulations_executed += 1
                    self.sim_cpu_s += sim_cpu
                    stored.append((key, result))
                    results[job] = result
                self.cache.put_many(stored)
                if tracker is not None and done:
                    tracker.chunk_completed(len(done), pid)
                if chunk_failure is not None and failure is None:
                    failure = chunk_failure
                    failed_job = pending[chunk_failure[0]][0]
                    # Don't start work that can no longer matter; chunks
                    # already running finish and are drained normally.
                    for other in futures:
                        other.cancel()
        except BrokenProcessPool:
            # A worker died (OOM-kill, crash, os._exit).  Everything
            # drained so far is already in the cache — that is the
            # resumability guarantee — but the pool is unusable: discard
            # it so the next run() starts a fresh one.
            self._discard_pool()
            if tracker is not None:
                tracker.pool_broken()
            raise
        finally:
            self.last_worker_pids = frozenset(pids)

        if failure is not None:
            index, exc_repr, tb_text = failure
            if tracker is not None:
                tracker.job_failed(exc_repr, _describe(failed_job))
            raise JobExecutionError(
                f"job failed in worker: {_describe(failed_job)}\n"
                f"cause: {exc_repr}\n{tb_text}", job=failed_job)


def _describe(job) -> str:
    """Best-effort one-line description of a job for error messages."""
    try:
        return repr(job.describe())
    except Exception:  # pragma: no cover - describe() itself failing
        return repr(job)


def _sort_token(job) -> str:
    """Deterministic grouping token: jobs sharing traces sort together."""
    try:
        return repr(job.trace_signature())
    except Exception:
        return repr(job)
