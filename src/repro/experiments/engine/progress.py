"""Structured progress and failure telemetry for the experiment engine.

The PR 7 sweep engine runs thousands of jobs through a warm worker pool,
but until now the only signs of life were the final results (or a raised
:class:`~repro.experiments.engine.executor.JobExecutionError`).  This
module adds a small event protocol the :class:`JobExecutor` emits while a
batch runs, with pluggable sinks:

* :class:`StderrLineSink` — a live single-line status on stderr
  (``--progress`` on the CLI);
* :class:`JsonlFileSink` — one JSON object per event, appended to a file
  (``--progress-file``), for machine consumption and post-mortems;
* :class:`CallbackSink` — hands each event to a callable, the
  subscription point for a future sweep coordinator;
* :class:`TeeSink` — fans one event stream out to several sinks.

Event kinds (the ``kind`` field of every :class:`ProgressEvent`):

``batch-start``
    A batch entered the executor: ``total`` distinct jobs, of which
    ``cache_hits`` were answered from the result cache and ``pending``
    will actually simulate.
``chunk-dispatched``
    A chunk of jobs was submitted to the worker pool (parallel path).
``chunk-completed`` / ``job-completed``
    Work finished and its results were written to the cache: a whole
    chunk (parallel, carries ``worker_pid``) or one job (serial path).
``job-failed``
    A job raised and exhausted its attempts; ``error`` carries the
    exception repr and ``job`` the failing job's description.  Emitted
    *before* the executor raises :class:`JobExecutionError`, so sinks
    always see the failure.
``job-retried``
    A job failed and is being retried under a retry failure policy;
    ``attempt`` is the upcoming attempt number (2 for the first retry).
``job-skipped``
    A job exhausted its attempts under ``retry_then_skip`` and is being
    dropped from the batch's results.
``chunk-timeout``
    The hung-worker watchdog timed a chunk out; its jobs are being
    resubmitted to a fresh pool (``chunk_size`` jobs affected).
``pool-spawned`` / ``pool-broken`` / ``pool-respawned``
    Worker-pool lifecycle: a fresh pool came up (``workers`` count), the
    pool died underneath a batch (a worker was killed), or a replacement
    pool was spun up mid-batch to carry on after a death/timeout.
``batch-end``
    The batch finished; ``done`` equals ``pending`` unless it failed.

Throughput fields (``jobs_per_sec``, ``eta_s``) are derived from the
batch-local monotonic clock and count only actually-simulated jobs, so a
fully cached batch reports no rate rather than an absurd one.
"""

from __future__ import annotations

import json
import sys
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable

#: Bump when event fields or kinds change incompatibly.
PROGRESS_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class ProgressEvent:
    """One engine progress event (see the module docstring for kinds)."""

    kind: str
    #: Distinct jobs in the batch (after dedup).
    total: int
    #: Jobs simulated so far in this batch.
    done: int
    #: Jobs answered from the result cache in this batch.
    cache_hits: int
    #: Jobs that entered the execution path (total - cache_hits).
    pending: int
    #: Seconds since the batch started (monotonic).
    elapsed_s: float
    #: Simulated-jobs throughput so far (None until work completes).
    jobs_per_sec: float | None = None
    #: Estimated seconds to batch completion (None when unknowable).
    eta_s: float | None = None
    #: Worker-process count of the executor.
    workers: int = 1
    #: Chunk ordinal (dispatch/completion events on the parallel path).
    chunk: int | None = None
    #: Jobs in the chunk (chunk events) or completed job count delta.
    chunk_size: int | None = None
    #: PID of the worker that produced a completed chunk.
    worker_pid: int | None = None
    #: Exception repr for ``job-failed``/``job-retried``/``job-skipped``.
    error: str | None = None
    #: Description of the job a failure event refers to.
    job: str | None = None
    #: Upcoming attempt number for ``job-retried`` events.
    attempt: int | None = None

    def to_dict(self) -> dict:
        """The event as a JSON-ready dict, ``None`` fields dropped."""
        return {key: value for key, value in asdict(self).items()
                if value is not None}


# ----------------------------------------------------------------------
# Sinks.
# ----------------------------------------------------------------------
class ProgressSink:
    """Receives :class:`ProgressEvent` objects; base class does nothing."""

    def emit(self, event: ProgressEvent) -> None:
        """Handle one event.  Must not raise into the engine."""

    def close(self) -> None:
        """Release any resources; called by the CLI after a run."""


class StderrLineSink(ProgressSink):
    """Live one-line progress display on stderr.

    Rewrites a single ``\\r``-terminated line per event and finishes it
    with a newline on ``batch-end``/``job-failed``, so interleaved
    regular output stays readable.
    """

    def __init__(self, stream=None):
        self._stream = stream if stream is not None else sys.stderr
        self._dirty = False

    def emit(self, event: ProgressEvent) -> None:
        if event.kind in ("pool-spawned", "chunk-dispatched"):
            return
        parts = [f"[engine] {event.done}/{event.pending} jobs"]
        if event.cache_hits:
            parts.append(f"{event.cache_hits} cached")
        if event.jobs_per_sec is not None:
            parts.append(f"{event.jobs_per_sec:.1f} jobs/s")
        if event.eta_s is not None:
            parts.append(f"eta {event.eta_s:.0f}s")
        if event.kind == "job-failed":
            parts.append(f"FAILED: {event.error}")
        elif event.kind == "job-retried":
            parts.append(f"retry #{event.attempt}: {event.error}")
        elif event.kind == "job-skipped":
            parts.append(f"SKIPPED: {event.error}")
        elif event.kind == "chunk-timeout":
            parts.append(f"watchdog: chunk of {event.chunk_size} timed out")
        elif event.kind == "pool-broken":
            parts.append("worker pool broken; respawning")
        elif event.kind == "pool-respawned":
            parts.append("worker pool respawned")
        line = " | ".join(parts)
        end = "\n" if event.kind in ("batch-end", "job-failed",
                                     "job-skipped", "chunk-timeout",
                                     "pool-broken") else ""
        try:
            self._stream.write(f"\r{line:<78}{end}")
            self._stream.flush()
        except (OSError, ValueError):  # pragma: no cover - closed stream
            return
        self._dirty = not end

    def close(self) -> None:
        if self._dirty:
            try:
                self._stream.write("\n")
                self._stream.flush()
            except (OSError, ValueError):  # pragma: no cover
                pass
            self._dirty = False


class JsonlFileSink(ProgressSink):
    """Append one JSON object per event to a file (JSON Lines)."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._handle = self.path.open("w", encoding="utf-8")

    def emit(self, event: ProgressEvent) -> None:
        if self._handle.closed:  # pragma: no cover - post-close emit
            return
        record = {"schema": PROGRESS_SCHEMA_VERSION, **event.to_dict()}
        self._handle.write(json.dumps(record) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()


class CallbackSink(ProgressSink):
    """Forward every event to a callable (the coordinator hook)."""

    def __init__(self, callback: Callable[[ProgressEvent], None]):
        self._callback = callback

    def emit(self, event: ProgressEvent) -> None:
        self._callback(event)


class TeeSink(ProgressSink):
    """Fan events out to several sinks; closes them all."""

    def __init__(self, *sinks: ProgressSink):
        self.sinks = list(sinks)

    def emit(self, event: ProgressEvent) -> None:
        for sink in self.sinks:
            sink.emit(event)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


# ----------------------------------------------------------------------
# Batch tracker (used by the executor).
# ----------------------------------------------------------------------
class BatchProgress:
    """Per-batch bookkeeping that turns executor milestones into events.

    Owned by :meth:`JobExecutor.run` for the duration of one batch; all
    rate/ETA arithmetic lives here so the executor only reports *what*
    happened, never how to present it.
    """

    def __init__(self, sink: ProgressSink, total: int, cache_hits: int,
                 workers: int):
        self._sink = sink
        self.total = total
        self.cache_hits = cache_hits
        self.pending = total - cache_hits
        self.done = 0
        self.workers = workers
        self._start = time.perf_counter()
        self._chunks = 0

    def _emit(self, kind: str, **extra) -> None:
        elapsed = time.perf_counter() - self._start
        rate = self.done / elapsed if self.done and elapsed > 0 else None
        eta = None
        if rate:
            remaining = self.pending - self.done
            if remaining >= 0:
                eta = remaining / rate
        event = ProgressEvent(kind=kind, total=self.total, done=self.done,
                              cache_hits=self.cache_hits,
                              pending=self.pending, elapsed_s=elapsed,
                              jobs_per_sec=rate, eta_s=eta,
                              workers=self.workers, **extra)
        self._sink.emit(event)

    def batch_start(self) -> None:
        self._emit("batch-start")

    def chunk_dispatched(self, size: int) -> None:
        self._chunks += 1
        self._emit("chunk-dispatched", chunk=self._chunks, chunk_size=size)

    def chunk_completed(self, size: int, worker_pid: int) -> None:
        self.done += size
        self._emit("chunk-completed", chunk_size=size, worker_pid=worker_pid)

    def job_completed(self) -> None:
        self.done += 1
        self._emit("job-completed", chunk_size=1)

    def job_failed(self, error: str, job_description: str) -> None:
        self._emit("job-failed", error=error, job=job_description)

    def job_retried(self, error: str, job_description: str,
                    attempt: int) -> None:
        self._emit("job-retried", error=error, job=job_description,
                   attempt=attempt)

    def job_skipped(self, error: str, job_description: str) -> None:
        self._emit("job-skipped", error=error, job=job_description)

    def chunk_timeout(self, size: int) -> None:
        self._emit("chunk-timeout", chunk_size=size)

    def pool_spawned(self) -> None:
        self._emit("pool-spawned")

    def pool_broken(self) -> None:
        self._emit("pool-broken")

    def pool_respawned(self) -> None:
        self._emit("pool-respawned")

    def batch_end(self) -> None:
        self._emit("batch-end")
