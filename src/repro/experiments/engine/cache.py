"""Persistent, content-addressed simulation-result cache.

Layout: one JSON file per result under the cache directory, named
``<key>.json`` where ``key`` is the :meth:`SimJob.key` digest.  Each file
records the salt (cache schema version + package version) it was written
with; entries whose salt no longer matches are treated as misses, so a
code upgrade invalidates stale results instead of replaying them.

A :class:`ResultCache` always keeps an in-memory layer.  When constructed
without a directory it is memory-only (the behaviour the test suite wants);
with a directory it also persists every stored result, making repeated
figure runs incremental across processes.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

import repro
from repro.experiments.engine.spec import CACHE_SCHEMA_VERSION
from repro.sim.metrics import SimulationResult

#: Environment variable selecting the default persistent cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def cache_salt() -> str:
    """Salt mixed into every persisted entry (schema + code version)."""
    return f"{CACHE_SCHEMA_VERSION}:{repro.__version__}"


def default_cache_dir() -> Path:
    """The CLI's default persistent cache directory.

    ``$REPRO_CACHE_DIR`` wins; otherwise ``$XDG_CACHE_HOME/repro`` (or
    ``~/.cache/repro``).
    """
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro"


@dataclass
class CacheStats:
    """Observed traffic and current contents of one cache."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    memory_entries: int = 0
    disk_entries: int = 0
    disk_bytes: int = 0


class ResultCache:
    """Two-level (memory + optional disk) cache of simulation results."""

    def __init__(self, directory: str | Path | None = None):
        self.directory = Path(directory) if directory is not None else None
        self._memory: dict[str, SimulationResult] = {}
        self._hits = 0
        self._misses = 0
        self._stores = 0

    @property
    def persistent(self) -> bool:
        """Whether results survive the process (a directory is configured)."""
        return self.directory is not None

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    # ------------------------------------------------------------------
    # Lookup / store.
    # ------------------------------------------------------------------
    def get(self, key: str) -> SimulationResult | None:
        """Return the cached result for ``key``, or ``None`` on a miss."""
        result = self._memory.get(key)
        if result is None and self.directory is not None:
            result = self._load(key)
            if result is not None:
                self._memory[key] = result
        if result is None:
            self._misses += 1
        else:
            self._hits += 1
        return result

    def put(self, key: str, result: SimulationResult) -> None:
        """Store ``result`` under ``key`` (memory, and disk if persistent)."""
        self._memory[key] = result
        self._stores += 1
        if self.directory is None:
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        payload = {"salt": cache_salt(), "key": key,
                   "result": result.to_dict()}
        path = self._path(key)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True))
        tmp.replace(path)

    def _load(self, key: str) -> SimulationResult | None:
        path = self._path(key)
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if payload.get("salt") != cache_salt():
            return None
        try:
            return SimulationResult.from_dict(payload["result"])
        except (KeyError, TypeError):
            return None

    # ------------------------------------------------------------------
    # Maintenance.
    # ------------------------------------------------------------------
    def clear(self) -> int:
        """Drop every entry (memory and disk); returns distinct entries
        removed (an entry present in both layers counts once)."""
        keys = set(self._memory)
        self._memory.clear()
        if self.directory is not None and self.directory.is_dir():
            for path in self.directory.glob("*.json"):
                keys.add(path.stem)
                path.unlink(missing_ok=True)
        return len(keys)

    def stats(self) -> CacheStats:
        """Traffic counters plus current memory/disk occupancy."""
        stats = CacheStats(hits=self._hits, misses=self._misses,
                           stores=self._stores,
                           memory_entries=len(self._memory))
        if self.directory is not None and self.directory.is_dir():
            for path in self.directory.glob("*.json"):
                stats.disk_entries += 1
                stats.disk_bytes += path.stat().st_size
        return stats
