"""Persistent, content-addressed simulation-result cache.

Layout: results fan out over two-level shard directories under the cache
root — ``ab/<key>.json`` (or ``ab/<key>.json.gz`` for large payloads),
where ``ab`` is the first two hex characters of the :meth:`SimJob.key`
digest.  Sharding keeps directories small at million-entry sweeps, and an
in-memory key index — loaded from one directory scan per process — makes
``get()`` misses, ``stats()``, and repeated lookups pure memory
operations instead of per-call filesystem traffic.

Entries written by the original flat layout (``<key>.json`` directly in
the cache root) remain readable: the index scan picks them up, and
re-storing a key migrates its entry into the sharded layout.  ``clear()``
removes both layouts.

Each file records the salt (cache schema version + package version) it was
written with; entries whose salt no longer matches are treated as misses,
so a code upgrade invalidates stale results instead of replaying them.

Integrity: fresh entries carry a checksum envelope — the byte length and
SHA-256 of the canonical result JSON — verified on every load.  An entry
that fails to decode or checksum is *corrupt* (torn write, bit rot), not
merely stale: the file is moved into ``<cache>/quarantine/`` (preserving
the evidence while getting it off the lookup path), counters
(``decode_failures``/``quarantined``) tick in :meth:`ResultCache.stats`,
and the caller sees a plain miss, so the job simply re-executes.
Envelope-less entries written before this scheme remain readable —
the envelope is versioned inside the payload precisely so its
introduction did not salt-invalidate every existing shard.
:meth:`ResultCache.verify` (CLI: ``python -m repro cache verify``) scans
every shard offline and optionally quarantines what it finds.

A :class:`ResultCache` always keeps an in-memory layer.  When constructed
without a directory it is memory-only (the behaviour the test suite wants);
with a directory it also persists every stored result, making repeated
figure runs incremental across processes.
"""

from __future__ import annotations

import gzip
import hashlib
import json
import os
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

import repro
from repro.experiments.engine import faults as faults_mod
from repro.experiments.engine.spec import CACHE_SCHEMA_VERSION
from repro.sim.metrics import SimulationResult

#: Environment variable selecting the default persistent cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Serialized payloads at least this large are gzip-compressed under
#: ``compress="auto"`` (telemetry-bearing results run to megabytes; plain
#: results are under a kilobyte and stay human-readable).
COMPRESS_MIN_BYTES = 32 * 1024

#: Hex characters of the key used as the shard directory name.
_SHARD_CHARS = 2

#: Version of the checksum envelope written into fresh entries.  Lives
#: inside the payload — deliberately *not* part of the cache salt, so
#: introducing (or evolving) the envelope never invalidates old entries.
ENVELOPE_VERSION = 1

#: Directory (under the cache root) corrupt shard files are moved into.
#: Longer than ``_SHARD_CHARS``, so the index scan never looks inside.
QUARANTINE_DIR = "quarantine"


def _canonical_result_bytes(result_dict: dict) -> bytes:
    """The canonical byte form of a result dict the envelope covers."""
    return json.dumps(result_dict, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def cache_salt() -> str:
    """Salt mixed into every persisted entry (schema + code version)."""
    return f"{CACHE_SCHEMA_VERSION}:{repro.__version__}"


def default_cache_dir() -> Path:
    """The CLI's default persistent cache directory.

    ``$REPRO_CACHE_DIR`` wins; otherwise ``$XDG_CACHE_HOME/repro`` (or
    ``~/.cache/repro``).
    """
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro"


@dataclass
class CacheStats:
    """Observed traffic and current contents of one cache."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    memory_entries: int = 0
    disk_entries: int = 0
    disk_bytes: int = 0
    #: Disk entries stored gzip-compressed.
    disk_compressed: int = 0
    #: Disk entries still in the pre-sharding flat layout.
    disk_legacy: int = 0
    #: Loads that failed to decode or checksum (corrupt entries seen).
    decode_failures: int = 0
    #: Corrupt files this cache moved into the quarantine directory.
    quarantined: int = 0
    #: Files currently sitting in ``<cache>/quarantine/``.
    quarantine_entries: int = 0


class CorruptEntryError(Exception):
    """A cache entry is damaged (torn write, bit rot) rather than stale."""


def _is_entry(name: str) -> bool:
    return name.endswith(".json") or name.endswith(".json.gz")


def _entry_key(name: str) -> str:
    return name[:-len(".json.gz")] if name.endswith(".json.gz") \
        else name[:-len(".json")]


class ResultCache:
    """Two-level (memory + optional sharded disk) cache of results."""

    def __init__(self, directory: str | Path | None = None,
                 compress: bool | str = "auto"):
        self.directory = Path(directory) if directory is not None else None
        if compress not in (True, False, "auto"):
            raise ValueError(f"compress must be True, False or 'auto', "
                             f"got {compress!r}")
        self.compress = compress
        self._memory: dict[str, SimulationResult] = {}
        #: key -> (absolute Path, size in bytes); ``None`` until the first
        #: persistent operation triggers the one-time directory scan.
        self._index: dict[str, tuple[Path, int]] | None = None
        self._hits = 0
        self._misses = 0
        self._stores = 0
        self._decode_failures = 0
        self._quarantined = 0

    @property
    def persistent(self) -> bool:
        """Whether results survive the process (a directory is configured)."""
        return self.directory is not None

    # ------------------------------------------------------------------
    # Paths and the key index.
    # ------------------------------------------------------------------
    def _path(self, key: str, compressed: bool = False) -> Path:
        """The sharded path a fresh entry for ``key`` is written to."""
        name = f"{key}.json.gz" if compressed else f"{key}.json"
        return self.directory / key[:_SHARD_CHARS] / name

    def _legacy_path(self, key: str) -> Path:
        """Where the pre-sharding flat layout stored ``key``."""
        return self.directory / f"{key}.json"

    def _scan_index(self) -> dict[str, tuple[Path, int]]:
        """One-time directory scan: every entry in either layout.

        Sharded entries win over a legacy flat duplicate of the same key
        (the flat file is a leftover from before a migration finished).
        """
        index: dict[str, tuple[Path, int]] = {}
        legacy: dict[str, tuple[Path, int]] = {}
        try:
            root_entries = list(os.scandir(self.directory))
        except OSError:
            return index
        for entry in root_entries:
            name = entry.name
            if entry.is_file() and _is_entry(name):
                legacy[_entry_key(name)] = (Path(entry.path),
                                            entry.stat().st_size)
            elif entry.is_dir() and len(name) == _SHARD_CHARS:
                try:
                    shard_entries = list(os.scandir(entry.path))
                except OSError:
                    continue
                for sub in shard_entries:
                    if sub.is_file() and _is_entry(sub.name):
                        index[_entry_key(sub.name)] = (Path(sub.path),
                                                       sub.stat().st_size)
        for key, value in legacy.items():
            index.setdefault(key, value)
        return index

    def index(self) -> dict[str, tuple[Path, int]]:
        """The in-memory key index (loaded on first use)."""
        if self._index is None:
            self._index = self._scan_index() if self.persistent else {}
        return self._index

    def refresh_index(self) -> None:
        """Rescan the directory (e.g. after another process wrote to it)."""
        self._index = None

    # ------------------------------------------------------------------
    # Lookup / store.
    # ------------------------------------------------------------------
    def get(self, key: str) -> SimulationResult | None:
        """Return the cached result for ``key``, or ``None`` on a miss."""
        result = self._memory.get(key)
        if result is None and self.directory is not None:
            result = self._load(key)
            if result is not None:
                self._memory[key] = result
        if result is None:
            self._misses += 1
        else:
            self._hits += 1
        return result

    def put(self, key: str, result: SimulationResult) -> None:
        """Store ``result`` under ``key`` (memory, and disk if persistent)."""
        self._memory[key] = result
        self._stores += 1
        if self.directory is not None:
            self._persist(key, result)

    def put_many(self, items: Iterable[tuple[str, SimulationResult]]) -> None:
        """Store a batch of ``(key, result)`` pairs.

        The executor drains worker chunks through this: one call per
        chunk, so every completed chunk is durable the moment it lands.
        """
        for key, result in items:
            self.put(key, result)

    def _persist(self, key: str, result: SimulationResult) -> None:
        result_dict = result.to_dict()
        canonical = _canonical_result_bytes(result_dict)
        payload = {"salt": cache_salt(), "key": key,
                   "envelope": ENVELOPE_VERSION,
                   "length": len(canonical),
                   "sha256": hashlib.sha256(canonical).hexdigest(),
                   "result": result_dict}
        data = json.dumps(payload, sort_keys=True).encode("utf-8")
        compressed = (self.compress is True
                      or (self.compress == "auto"
                          and len(data) >= COMPRESS_MIN_BYTES))
        if compressed:
            data = gzip.compress(data, compresslevel=6)
        plan = faults_mod.active_plan()
        if plan:
            spec = plan.cache_fault(key, faults_mod.next_cache_write())
            if spec is not None:
                data = faults_mod.corrupt_payload(spec, data)
        path = self._path(key, compressed=compressed)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_bytes(data)
        tmp.replace(path)
        index = self.index()
        old = index.get(key)
        if old is not None and old[0] != path:
            # Migrate: drop the legacy flat file (or a differently
            # compressed sharded sibling) the new entry supersedes.
            old[0].unlink(missing_ok=True)
        index[key] = (path, len(data))

    def _read_payload(self, path: Path) -> dict:
        """Read, decode, and checksum-verify one entry file.

        Raises :class:`CorruptEntryError` for anything that is provably
        damage rather than staleness: undecodable bytes (torn write), a
        non-dict payload, or an envelope whose length/SHA-256 no longer
        matches the result (bit rot).  ``OSError`` propagates — an
        unreadable file is a miss, not corruption.
        """
        data = path.read_bytes()
        try:
            if path.name.endswith(".gz"):
                data = gzip.decompress(data)
            payload = json.loads(data)
        except (json.JSONDecodeError, gzip.BadGzipFile, EOFError,
                UnicodeDecodeError, zlib.error) as exc:
            raise CorruptEntryError(f"undecodable entry: {exc}") from exc
        if not isinstance(payload, dict):
            raise CorruptEntryError("entry payload is not an object")
        if payload.get("envelope") is not None:
            try:
                canonical = _canonical_result_bytes(payload["result"])
            except (KeyError, TypeError) as exc:
                raise CorruptEntryError(
                    f"enveloped entry has no result: {exc!r}") from exc
            if (payload.get("length") != len(canonical)
                    or payload.get("sha256")
                    != hashlib.sha256(canonical).hexdigest()):
                raise CorruptEntryError("checksum mismatch")
        return payload

    def _quarantine(self, key: str, path: Path) -> None:
        """Move a corrupt entry into ``<cache>/quarantine/`` and drop it
        from the index (preserving the evidence, clearing the lookup
        path).  Best-effort: an unwritable filesystem leaves the file in
        place, and lookups keep treating it as a miss."""
        quarantine = self.directory / QUARANTINE_DIR
        try:
            quarantine.mkdir(parents=True, exist_ok=True)
            dest = quarantine / path.name
            serial = 0
            while dest.exists():
                serial += 1
                dest = quarantine / f"{path.name}.{serial}"
            path.replace(dest)
        except FileNotFoundError:
            pass  # the corrupt file vanished; nothing left to preserve
        except OSError:
            return
        self._quarantined += 1
        self.index().pop(key, None)

    def _load(self, key: str) -> SimulationResult | None:
        entry = self.index().get(key)
        if entry is None:
            return None
        path, _ = entry
        try:
            payload = self._read_payload(path)
        except OSError:
            return None
        except CorruptEntryError:
            self._decode_failures += 1
            self._quarantine(key, path)
            return None
        if payload.get("salt") != cache_salt():
            # Stale, not damaged: a plain miss (the entry is re-stored
            # with the current salt the next time the job runs).
            return None
        try:
            return SimulationResult.from_dict(payload["result"])
        except (KeyError, TypeError):
            # Current salt but unreconstructable: structural damage.
            self._decode_failures += 1
            self._quarantine(key, path)
            return None

    # ------------------------------------------------------------------
    # Maintenance.
    # ------------------------------------------------------------------
    def clear(self) -> int:
        """Drop every entry (memory and disk, both layouts); returns
        distinct entries removed (an entry present in several layers
        counts once)."""
        keys = set(self._memory)
        self._memory.clear()
        if self.directory is not None and self.directory.is_dir():
            # The scan — not the possibly stale index — drives removal, so
            # entries written by other processes are cleared too.
            self._index = None
            for key, (path, _) in self._scan_index().items():
                keys.add(key)
                path.unlink(missing_ok=True)
            # A finished migration may leave superseded legacy duplicates
            # the index hid; sweep any stragglers and empty shard dirs.
            for path in self.directory.glob("*.json"):
                keys.add(_entry_key(path.name))
                path.unlink(missing_ok=True)
            for shard in self.directory.iterdir():
                if shard.is_dir() and len(shard.name) == _SHARD_CHARS:
                    for path in shard.iterdir():
                        if _is_entry(path.name):
                            keys.add(_entry_key(path.name))
                            path.unlink(missing_ok=True)
                    try:
                        shard.rmdir()
                    except OSError:
                        pass
            self._index = {}
        return len(keys)

    def verify(self, repair: bool = False) -> dict:
        """Scan every disk entry; classify, and optionally quarantine.

        Returns a report dict: ``checked`` (entries examined), ``ok``
        (enveloped and checksum-clean), ``legacy`` (readable but written
        before the checksum envelope), ``stale_salt`` (readable but from
        another schema/code version), ``corrupt`` (list of damaged keys),
        and ``quarantined`` (files moved — nonzero only with
        ``repair=True``; without it corrupt files are left in place so a
        dry run stays side-effect free).
        """
        report: dict = {"checked": 0, "ok": 0, "legacy": 0,
                        "stale_salt": 0, "corrupt": [], "quarantined": 0}
        if not self.persistent:
            return report
        self.refresh_index()
        for key, (path, _) in sorted(self.index().items()):
            report["checked"] += 1
            try:
                payload = self._read_payload(path)
            except OSError:
                continue  # vanished mid-scan (another process cleaning)
            except CorruptEntryError:
                report["corrupt"].append(key)
                if repair:
                    self._decode_failures += 1
                    self._quarantine(key, path)
                    report["quarantined"] += 1
                continue
            if payload.get("salt") != cache_salt():
                report["stale_salt"] += 1
                continue
            try:
                SimulationResult.from_dict(payload["result"])
            except (KeyError, TypeError):
                report["corrupt"].append(key)
                if repair:
                    self._decode_failures += 1
                    self._quarantine(key, path)
                    report["quarantined"] += 1
                continue
            if payload.get("envelope") is None:
                report["legacy"] += 1
            else:
                report["ok"] += 1
        return report

    def stats(self) -> CacheStats:
        """Traffic counters plus current memory/disk occupancy.

        Disk occupancy comes from the in-memory index — no filesystem
        traffic after the initial scan (quarantine occupancy is the one
        exception: corrupt files can arrive from other processes, so it
        is counted live).
        """
        stats = CacheStats(hits=self._hits, misses=self._misses,
                           stores=self._stores,
                           memory_entries=len(self._memory),
                           decode_failures=self._decode_failures,
                           quarantined=self._quarantined)
        if self.persistent:
            for key, (path, size) in self.index().items():
                stats.disk_entries += 1
                stats.disk_bytes += size
                if path.name.endswith(".gz"):
                    stats.disk_compressed += 1
                if path.parent == self.directory:
                    stats.disk_legacy += 1
            quarantine = self.directory / QUARANTINE_DIR
            if quarantine.is_dir():
                stats.quarantine_entries = sum(
                    1 for entry in quarantine.iterdir()
                    if entry.is_file())
        return stats
