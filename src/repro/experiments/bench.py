"""Performance benchmark harness for the simulator itself.

``python -m repro bench`` times the figure-7 workload set (every evaluated
configuration on the single-core benchmark suite, plus one multiprogrammed
mix) end to end through :class:`~repro.sim.system.System` and emits a
``BENCH_<rev>.json`` under ``benchmarks/perf/``.  The JSON records, per job
and in aggregate, simulation wall time, simulations per second, simulator
events per second, and peak RSS — the quantities future PRs regress
against.

The harness deliberately bypasses the experiment engine's result cache:
every job is simulated for real, so the numbers measure the event loop and
not cache lookups.  Traces and configurations are built outside the timed
region; only :meth:`System.run` is timed.

When a baseline file (``--baseline``, default
``benchmarks/perf/BENCH_baseline.json``) exists, the report includes the
per-job and geometric-mean speedup against it, matching jobs by name.
"""

from __future__ import annotations

import cProfile
import io
import json
import platform
import pstats
import resource
import subprocess
import sys
import time
from dataclasses import dataclass, replace
from pathlib import Path

from repro.experiments.engine import ExperimentScale
from repro.experiments.runner import (DEFAULT_CONFIGURATIONS, geometric_mean,
                                      multicore_suite, single_core_benchmarks)
from repro.sim.config import make_system_config
from repro.sim.system import System
from repro.workloads.catalog import get_benchmark

#: Default location of the emitted BENCH_<rev>.json files.
DEFAULT_OUTPUT_DIR = Path("benchmarks") / "perf"

#: Baseline the report compares against when present.
DEFAULT_BASELINE = DEFAULT_OUTPUT_DIR / "BENCH_baseline.json"

#: Configurations timed by ``--quick`` (CI smoke) runs.
QUICK_CONFIGURATIONS = ("Base", "FIGCache-Fast")


@dataclass(frozen=True)
class BenchJob:
    """One timed simulation of the benchmark matrix."""

    #: Stable name used to match jobs across benchmark runs.
    name: str
    #: Configuration name (Base, FIGCache-Fast, ...).
    configuration: str
    #: ``"single-core"`` or ``"multicore"``.
    kind: str
    #: Benchmark or mix name.
    workload: str
    #: Device-catalog standard the simulated system uses.
    standard: str = "DDR4-1600"

    def build(self, scale: ExperimentScale):
        """Build the (config, traces, workload-name) inputs, untimed."""
        if self.kind == "single-core":
            config = make_system_config(self.configuration, channels=1,
                                        standard=self.standard)
            traces = [get_benchmark(self.workload)
                      .make_trace(scale.single_core_records)]
        else:
            config = make_system_config(self.configuration,
                                        channels=scale.multicore_channels,
                                        standard=self.standard)
            suite = {w.name: w for w in multicore_suite(scale)}
            traces = suite[self.workload].make_traces(
                scale.multicore_records)
        return config, traces


def figure7_jobs(scale: ExperimentScale, quick: bool = False) -> list[BenchJob]:
    """The figure-7 workload set: every configuration on every benchmark.

    Full runs add one multiprogrammed mix on Base and FIGCache-Fast so the
    multicore event interleaving (4 channels, 8 cores) is represented.
    Quick (CI) runs add one non-DDR4 job so the per-bank-refresh and
    bank-group-pacing code paths are part of the perf smoke signal.
    """
    configurations = QUICK_CONFIGURATIONS if quick else DEFAULT_CONFIGURATIONS
    categories = single_core_benchmarks(scale)
    benchmarks = [b for group in categories.values() for b in group]
    jobs = [BenchJob(name=f"single:{configuration}:{benchmark}",
                     configuration=configuration, kind="single-core",
                     workload=benchmark)
            for configuration in configurations for benchmark in benchmarks]
    if quick:
        jobs.append(BenchJob(name="single:FIGCache-Fast:lbm@HBM2",
                             configuration="FIGCache-Fast",
                             kind="single-core", workload="lbm",
                             standard="HBM2"))
    mixes = multicore_suite(scale)[:1]
    for mix in mixes:
        for configuration in QUICK_CONFIGURATIONS:
            jobs.append(BenchJob(name=f"multi:{configuration}:{mix.name}",
                                 configuration=configuration,
                                 kind="multicore", workload=mix.name))
    return jobs


def current_revision() -> str:
    """Short git revision of the working tree, or ``unknown``."""
    try:
        out = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                             capture_output=True, text=True, check=True,
                             timeout=10)
        return out.stdout.strip() or "unknown"
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def peak_rss_bytes() -> int:
    """Peak resident set size of this process, in bytes."""
    ru_maxrss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is KiB on Linux, bytes on macOS.
    return ru_maxrss * 1024 if sys.platform != "darwin" else ru_maxrss


def resolve_backend_name(backend: str | None) -> str:
    """The backend name a bench run with this ``--backend`` value uses.

    ``None`` resolves through the normal selection chain (environment
    variable, then default), so the recorded name is the backend that
    actually ran — never a guess.  Unknown names raise ``ValueError``
    before any job is timed.
    """
    from repro.sim.backend import resolve_backend
    return resolve_backend(backend).name


def run_bench(scale: ExperimentScale | None = None, quick: bool = False,
              repeats: int = 1, backend: str | None = None) -> dict:
    """Time the benchmark matrix; returns the report dictionary.

    ``repeats`` re-runs every job and keeps the fastest wall time per job,
    which damps scheduler/allocator noise on busy machines.  ``backend``
    pins every job to one simulation backend; ``None`` uses the normal
    selection chain.  The resolved name is recorded in the report so
    cross-backend comparisons are detectable later.
    """
    scale = scale or ExperimentScale.bench()
    if quick:
        scale = ExperimentScale.tiny()
    backend_name = resolve_backend_name(backend)
    jobs = figure7_jobs(scale, quick=quick)

    # Build every job's inputs up front (untimed), then time ``repeats``
    # full passes over the matrix and keep each job's fastest time.
    # Interleaving the passes — rather than repeating one job back to back —
    # means a transient machine-load spike lands on different jobs in each
    # pass, so the per-job minimum filters it out.
    inputs = [(job, replace(config, backend=backend_name), traces)
              for job in jobs
              for config, traces in (job.build(scale),)]
    best_wall: dict[str, float] = {}
    best_cpu: dict[str, float] = {}
    events_by_job: dict[str, int] = {}
    cycles_by_job: dict[str, int] = {}
    for _ in range(max(repeats, 1)):
        for job, config, traces in inputs:
            system = System(config, traces)
            wall_start = time.perf_counter()
            cpu_start = time.process_time()
            result = system.run(job.workload)
            cpu = time.process_time() - cpu_start
            wall = time.perf_counter() - wall_start
            name = job.name
            if name not in best_wall or wall < best_wall[name]:
                best_wall[name] = wall
            if name not in best_cpu or cpu < best_cpu[name]:
                best_cpu[name] = cpu
            events_by_job[name] = system.processed_events
            cycles_by_job[name] = result.total_cycles

    job_reports = []
    total_wall = 0.0
    total_cpu = 0.0
    total_events = 0
    total_cycles = 0
    for job in jobs:
        name = job.name
        wall = best_wall[name]
        cpu = best_cpu[name]
        events = events_by_job[name]
        total_wall += wall
        total_cpu += cpu
        total_events += events
        total_cycles += cycles_by_job[name]
        job_reports.append({
            "name": name,
            "configuration": job.configuration,
            "kind": job.kind,
            "workload": job.workload,
            "wall_s": wall,
            # CPU seconds (time.process_time) — the headline metric: the
            # simulator is single-threaded, and CPU time is far less
            # sensitive to machine load than wall time.
            "cpu_s": cpu,
            "events": events,
            "events_per_sec": events / cpu if cpu else 0.0,
            "simulated_cycles": cycles_by_job[name],
        })

    return {
        "schema": 1,
        "rev": current_revision(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "quick": quick,
        "repeats": max(repeats, 1),
        "backend": backend_name,
        "scale": {
            "single_core_records": scale.single_core_records,
            "multicore_records": scale.multicore_records,
            "num_cores": scale.num_cores,
            "multicore_channels": scale.multicore_channels,
        },
        "jobs": job_reports,
        "totals": {
            "simulations": len(job_reports),
            "wall_s": total_wall,
            "cpu_s": total_cpu,
            "sims_per_sec": len(job_reports) / total_cpu if total_cpu
            else 0.0,
            "events": total_events,
            "events_per_sec": total_events / total_cpu if total_cpu
            else 0.0,
            "simulated_cycles": total_cycles,
            "peak_rss_bytes": peak_rss_bytes(),
        },
    }


def compare_to_baseline(report: dict, baseline: dict) -> dict | None:
    """Per-job and aggregate speedup of ``report`` over ``baseline``.

    Jobs are matched by name; unmatched jobs are ignored.  Returns None
    when no jobs match (e.g. quick run against a full baseline).
    """
    if report.get("scale") != baseline.get("scale"):
        # Different trace lengths / core counts: job names may match but
        # the work does not, so a speedup would be meaningless.
        return None
    base_jobs = {job["name"]: job for job in baseline.get("jobs", [])}
    speedups = []
    per_job = {}
    # Compare CPU seconds when both sides recorded them (the simulator is
    # single-threaded, and CPU time is robust against machine load);
    # otherwise fall back to wall time.
    for job in report["jobs"]:
        base = base_jobs.get(job["name"])
        if base is None:
            continue
        metric = "cpu_s" if job.get("cpu_s") and base.get("cpu_s") \
            else "wall_s"
        if not job.get(metric) or not base.get(metric):
            continue
        speedup = base[metric] / job[metric]
        per_job[job["name"]] = speedup
        speedups.append(speedup)
    if not speedups:
        return None
    # Reports written before the backend field existed compare as the
    # implicit reference backend.
    backend = report.get("backend", "python")
    baseline_backend = baseline.get("backend", "python")
    return {
        "baseline_rev": baseline.get("rev", "unknown"),
        "jobs_compared": len(speedups),
        "geomean_speedup": geometric_mean(speedups),
        "min_speedup": min(speedups),
        "max_speedup": max(speedups),
        "per_job": per_job,
        "backend": backend,
        "baseline_backend": baseline_backend,
        # Cross-backend comparisons are sometimes the point (turbo vs
        # python) and sometimes an accident (regressing turbo numbers
        # against a python baseline); the flag lets the CLI warn either
        # way without refusing the comparison.
        "backend_mismatch": backend != baseline_backend,
    }


def profile_job(job_name: str | None = None,
                scale: ExperimentScale | None = None,
                backend: str | None = None, top: int = 25) -> str:
    """cProfile one bench job; returns the top-``top`` cumulative table.

    The profiled region is exactly the timed region of :func:`run_bench`
    (``System.run`` — trace and system construction excluded), so the
    table explains the numbers the bench emits.  ``job_name`` defaults to
    the first job of the full matrix; unknown names raise ``ValueError``
    listing the available jobs.
    """
    scale = scale or ExperimentScale.bench()
    backend_name = resolve_backend_name(backend)
    jobs = figure7_jobs(scale)
    by_name = {job.name: job for job in jobs}
    if job_name is None:
        job_name = jobs[0].name
    job = by_name.get(job_name)
    if job is None:
        raise ValueError(f"unknown bench job {job_name!r}; choose one of "
                         f"{sorted(by_name)}")
    config, traces = job.build(scale)
    system = System(replace(config, backend=backend_name), traces)
    profiler = cProfile.Profile()
    profiler.enable()
    system.run(job.workload)
    profiler.disable()
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats(top)
    header = (f"cProfile of bench job {job.name} "
              f"(backend {backend_name}, "
              f"{scale.single_core_records if job.kind == 'single-core' else scale.multicore_records} "
              f"records/core), top {top} by cumulative time")
    return header + "\n" + buffer.getvalue()


def write_report(report: dict, output_dir: Path) -> Path:
    """Write ``BENCH_<rev>.json``; returns the path."""
    output_dir.mkdir(parents=True, exist_ok=True)
    path = output_dir / f"BENCH_{report['rev']}.json"
    with path.open("w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return path


def format_report(report: dict, comparison: dict | None) -> str:
    """Human-readable summary printed by the CLI."""
    totals = report["totals"]
    lines = [f"perf bench @ {report['rev']} "
             f"(python {report['python']}, "
             f"backend {report.get('backend', 'python')}, "
             f"quick={report['quick']})"]
    for job in report["jobs"]:
        lines.append(f"  {job['name']:<44s} {job['cpu_s']:8.3f}s cpu "
                     f"{job['events_per_sec']:12,.0f} events/s")
    lines.append(f"  {'TOTAL':<44s} {totals['cpu_s']:8.3f}s cpu "
                 f"({totals['wall_s']:.3f}s wall) "
                 f"{totals['events_per_sec']:12,.0f} events/s")
    lines.append(f"  {totals['simulations']} simulations, "
                 f"{totals['sims_per_sec']:.2f} sims/s, peak RSS "
                 f"{totals['peak_rss_bytes'] / (1 << 20):.1f} MiB")
    if comparison:
        lines.append(f"  vs baseline {comparison['baseline_rev']}: "
                     f"geomean speedup {comparison['geomean_speedup']:.2f}x "
                     f"(min {comparison['min_speedup']:.2f}x, "
                     f"max {comparison['max_speedup']:.2f}x over "
                     f"{comparison['jobs_compared']} jobs)")
        if comparison.get("backend_mismatch"):
            lines.append(
                f"  WARNING: comparing across simulation backends "
                f"({comparison['backend']} report vs "
                f"{comparison['baseline_backend']} baseline) — the "
                f"speedup mixes backend choice with code changes")
    return "\n".join(lines)
