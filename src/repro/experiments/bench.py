"""Performance benchmark harness for the simulator itself.

``python -m repro bench`` times the figure-7 workload set (every evaluated
configuration on the single-core benchmark suite, plus one multiprogrammed
mix) end to end through :class:`~repro.sim.system.System` and emits a
``BENCH_<rev>.json`` under ``benchmarks/perf/``.  The JSON records, per job
and in aggregate, simulation wall time, simulations per second, simulator
events per second, and peak RSS — the quantities future PRs regress
against.

The harness deliberately bypasses the experiment engine's result cache:
every job is simulated for real, so the numbers measure the event loop and
not cache lookups.  Traces and configurations are built outside the timed
region; only :meth:`System.run` is timed.

When a baseline file (``--baseline``, default
``benchmarks/perf/BENCH_baseline.json``) exists, the report includes the
per-job and geometric-mean speedup against it, matching jobs by name.
"""

from __future__ import annotations

import json
import platform
import resource
import subprocess
import sys
import time
from dataclasses import dataclass
from pathlib import Path

from repro.experiments.engine import ExperimentScale
from repro.experiments.runner import (DEFAULT_CONFIGURATIONS, geometric_mean,
                                      multicore_suite, single_core_benchmarks)
from repro.sim.config import make_system_config
from repro.sim.system import System
from repro.workloads.catalog import get_benchmark

#: Default location of the emitted BENCH_<rev>.json files.
DEFAULT_OUTPUT_DIR = Path("benchmarks") / "perf"

#: Baseline the report compares against when present.
DEFAULT_BASELINE = DEFAULT_OUTPUT_DIR / "BENCH_baseline.json"

#: Configurations timed by ``--quick`` (CI smoke) runs.
QUICK_CONFIGURATIONS = ("Base", "FIGCache-Fast")


@dataclass(frozen=True)
class BenchJob:
    """One timed simulation of the benchmark matrix."""

    #: Stable name used to match jobs across benchmark runs.
    name: str
    #: Configuration name (Base, FIGCache-Fast, ...).
    configuration: str
    #: ``"single-core"`` or ``"multicore"``.
    kind: str
    #: Benchmark or mix name.
    workload: str
    #: Device-catalog standard the simulated system uses.
    standard: str = "DDR4-1600"

    def build(self, scale: ExperimentScale):
        """Build the (config, traces, workload-name) inputs, untimed."""
        if self.kind == "single-core":
            config = make_system_config(self.configuration, channels=1,
                                        standard=self.standard)
            traces = [get_benchmark(self.workload)
                      .make_trace(scale.single_core_records)]
        else:
            config = make_system_config(self.configuration,
                                        channels=scale.multicore_channels,
                                        standard=self.standard)
            suite = {w.name: w for w in multicore_suite(scale)}
            traces = suite[self.workload].make_traces(
                scale.multicore_records)
        return config, traces


def figure7_jobs(scale: ExperimentScale, quick: bool = False) -> list[BenchJob]:
    """The figure-7 workload set: every configuration on every benchmark.

    Full runs add one multiprogrammed mix on Base and FIGCache-Fast so the
    multicore event interleaving (4 channels, 8 cores) is represented.
    Quick (CI) runs add one non-DDR4 job so the per-bank-refresh and
    bank-group-pacing code paths are part of the perf smoke signal.
    """
    configurations = QUICK_CONFIGURATIONS if quick else DEFAULT_CONFIGURATIONS
    categories = single_core_benchmarks(scale)
    benchmarks = [b for group in categories.values() for b in group]
    jobs = [BenchJob(name=f"single:{configuration}:{benchmark}",
                     configuration=configuration, kind="single-core",
                     workload=benchmark)
            for configuration in configurations for benchmark in benchmarks]
    if quick:
        jobs.append(BenchJob(name="single:FIGCache-Fast:lbm@HBM2",
                             configuration="FIGCache-Fast",
                             kind="single-core", workload="lbm",
                             standard="HBM2"))
    mixes = multicore_suite(scale)[:1]
    for mix in mixes:
        for configuration in QUICK_CONFIGURATIONS:
            jobs.append(BenchJob(name=f"multi:{configuration}:{mix.name}",
                                 configuration=configuration,
                                 kind="multicore", workload=mix.name))
    return jobs


def current_revision() -> str:
    """Short git revision of the working tree, or ``unknown``."""
    try:
        out = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                             capture_output=True, text=True, check=True,
                             timeout=10)
        return out.stdout.strip() or "unknown"
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def peak_rss_bytes() -> int:
    """Peak resident set size of this process, in bytes."""
    ru_maxrss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is KiB on Linux, bytes on macOS.
    return ru_maxrss * 1024 if sys.platform != "darwin" else ru_maxrss


def run_bench(scale: ExperimentScale | None = None, quick: bool = False,
              repeats: int = 1) -> dict:
    """Time the benchmark matrix; returns the report dictionary.

    ``repeats`` re-runs every job and keeps the fastest wall time per job,
    which damps scheduler/allocator noise on busy machines.
    """
    scale = scale or ExperimentScale.bench()
    if quick:
        scale = ExperimentScale.tiny()
    jobs = figure7_jobs(scale, quick=quick)

    # Build every job's inputs up front (untimed), then time ``repeats``
    # full passes over the matrix and keep each job's fastest time.
    # Interleaving the passes — rather than repeating one job back to back —
    # means a transient machine-load spike lands on different jobs in each
    # pass, so the per-job minimum filters it out.
    inputs = [(job, *job.build(scale)) for job in jobs]
    best_wall: dict[str, float] = {}
    best_cpu: dict[str, float] = {}
    events_by_job: dict[str, int] = {}
    cycles_by_job: dict[str, int] = {}
    for _ in range(max(repeats, 1)):
        for job, config, traces in inputs:
            system = System(config, traces)
            wall_start = time.perf_counter()
            cpu_start = time.process_time()
            result = system.run(job.workload)
            cpu = time.process_time() - cpu_start
            wall = time.perf_counter() - wall_start
            name = job.name
            if name not in best_wall or wall < best_wall[name]:
                best_wall[name] = wall
            if name not in best_cpu or cpu < best_cpu[name]:
                best_cpu[name] = cpu
            events_by_job[name] = system.processed_events
            cycles_by_job[name] = result.total_cycles

    job_reports = []
    total_wall = 0.0
    total_cpu = 0.0
    total_events = 0
    total_cycles = 0
    for job in jobs:
        name = job.name
        wall = best_wall[name]
        cpu = best_cpu[name]
        events = events_by_job[name]
        total_wall += wall
        total_cpu += cpu
        total_events += events
        total_cycles += cycles_by_job[name]
        job_reports.append({
            "name": name,
            "configuration": job.configuration,
            "kind": job.kind,
            "workload": job.workload,
            "wall_s": wall,
            # CPU seconds (time.process_time) — the headline metric: the
            # simulator is single-threaded, and CPU time is far less
            # sensitive to machine load than wall time.
            "cpu_s": cpu,
            "events": events,
            "events_per_sec": events / cpu if cpu else 0.0,
            "simulated_cycles": cycles_by_job[name],
        })

    return {
        "schema": 1,
        "rev": current_revision(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "quick": quick,
        "repeats": max(repeats, 1),
        "scale": {
            "single_core_records": scale.single_core_records,
            "multicore_records": scale.multicore_records,
            "num_cores": scale.num_cores,
            "multicore_channels": scale.multicore_channels,
        },
        "jobs": job_reports,
        "totals": {
            "simulations": len(job_reports),
            "wall_s": total_wall,
            "cpu_s": total_cpu,
            "sims_per_sec": len(job_reports) / total_cpu if total_cpu
            else 0.0,
            "events": total_events,
            "events_per_sec": total_events / total_cpu if total_cpu
            else 0.0,
            "simulated_cycles": total_cycles,
            "peak_rss_bytes": peak_rss_bytes(),
        },
    }


def compare_to_baseline(report: dict, baseline: dict) -> dict | None:
    """Per-job and aggregate speedup of ``report`` over ``baseline``.

    Jobs are matched by name; unmatched jobs are ignored.  Returns None
    when no jobs match (e.g. quick run against a full baseline).
    """
    if report.get("scale") != baseline.get("scale"):
        # Different trace lengths / core counts: job names may match but
        # the work does not, so a speedup would be meaningless.
        return None
    base_jobs = {job["name"]: job for job in baseline.get("jobs", [])}
    speedups = []
    per_job = {}
    # Compare CPU seconds when both sides recorded them (the simulator is
    # single-threaded, and CPU time is robust against machine load);
    # otherwise fall back to wall time.
    for job in report["jobs"]:
        base = base_jobs.get(job["name"])
        if base is None:
            continue
        metric = "cpu_s" if job.get("cpu_s") and base.get("cpu_s") \
            else "wall_s"
        if not job.get(metric) or not base.get(metric):
            continue
        speedup = base[metric] / job[metric]
        per_job[job["name"]] = speedup
        speedups.append(speedup)
    if not speedups:
        return None
    return {
        "baseline_rev": baseline.get("rev", "unknown"),
        "jobs_compared": len(speedups),
        "geomean_speedup": geometric_mean(speedups),
        "min_speedup": min(speedups),
        "max_speedup": max(speedups),
        "per_job": per_job,
    }


def write_report(report: dict, output_dir: Path) -> Path:
    """Write ``BENCH_<rev>.json``; returns the path."""
    output_dir.mkdir(parents=True, exist_ok=True)
    path = output_dir / f"BENCH_{report['rev']}.json"
    with path.open("w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return path


def format_report(report: dict, comparison: dict | None) -> str:
    """Human-readable summary printed by the CLI."""
    totals = report["totals"]
    lines = [f"perf bench @ {report['rev']} "
             f"(python {report['python']}, quick={report['quick']})"]
    for job in report["jobs"]:
        lines.append(f"  {job['name']:<44s} {job['cpu_s']:8.3f}s cpu "
                     f"{job['events_per_sec']:12,.0f} events/s")
    lines.append(f"  {'TOTAL':<44s} {totals['cpu_s']:8.3f}s cpu "
                 f"({totals['wall_s']:.3f}s wall) "
                 f"{totals['events_per_sec']:12,.0f} events/s")
    lines.append(f"  {totals['simulations']} simulations, "
                 f"{totals['sims_per_sec']:.2f} sims/s, peak RSS "
                 f"{totals['peak_rss_bytes'] / (1 << 20):.1f} MiB")
    if comparison:
        lines.append(f"  vs baseline {comparison['baseline_rev']}: "
                     f"geomean speedup {comparison['geomean_speedup']:.2f}x "
                     f"(min {comparison['min_speedup']:.2f}x, "
                     f"max {comparison['max_speedup']:.2f}x over "
                     f"{comparison['jobs_compared']} jobs)")
    return "\n".join(lines)
