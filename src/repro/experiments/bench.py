"""Performance benchmark harness for the simulator itself.

``python -m repro bench`` times the figure-7 workload set (every evaluated
configuration on the single-core benchmark suite, plus one multiprogrammed
mix) end to end through :class:`~repro.sim.system.System` and emits a
``BENCH_<rev>.json`` under ``benchmarks/perf/``.  The JSON records, per job
and in aggregate, simulation wall time, simulations per second, simulator
events per second, and peak RSS — the quantities future PRs regress
against.

The harness deliberately bypasses the experiment engine's result cache:
every job is simulated for real, so the numbers measure the event loop and
not cache lookups.  Traces and configurations are built outside the timed
region; only :meth:`System.run` is timed.

When a baseline file (``--baseline``, default
``benchmarks/perf/BENCH_baseline.json``) exists, the report includes the
per-job and geometric-mean speedup against it, matching jobs by name.
"""

from __future__ import annotations

import cProfile
import io
import json
import os
import platform
import pstats
import resource
import subprocess
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Sequence

from repro.experiments.engine import ExperimentScale, ResultCache
from repro.experiments.runner import (DEFAULT_CONFIGURATIONS, geometric_mean,
                                      multicore_suite, single_core_benchmarks)
from repro.sim.config import make_system_config
from repro.sim.system import System, run_workload
from repro.workloads.catalog import get_benchmark

#: Default location of the emitted BENCH_<rev>.json files.
DEFAULT_OUTPUT_DIR = Path("benchmarks") / "perf"

#: Baseline the report compares against when present.
DEFAULT_BASELINE = DEFAULT_OUTPUT_DIR / "BENCH_baseline.json"

#: Configurations timed by ``--quick`` (CI smoke) runs.
QUICK_CONFIGURATIONS = ("Base", "FIGCache-Fast")


@dataclass(frozen=True)
class BenchJob:
    """One timed simulation of the benchmark matrix."""

    #: Stable name used to match jobs across benchmark runs.
    name: str
    #: Configuration name (Base, FIGCache-Fast, ...).
    configuration: str
    #: ``"single-core"`` or ``"multicore"``.
    kind: str
    #: Benchmark or mix name.
    workload: str
    #: Device-catalog standard the simulated system uses.
    standard: str = "DDR4-1600"
    #: Core-count override for multicore jobs (0 = the scale's default).
    cores: int = 0
    #: Channel-count override (0 = one channel for single-core jobs, the
    #: scale's ``multicore_channels`` for multicore jobs).
    channels: int = 0

    def build(self, scale: ExperimentScale):
        """Build the (config, traces, workload-name) inputs, untimed."""
        if self.kind == "single-core":
            config = make_system_config(self.configuration,
                                        channels=self.channels or 1,
                                        standard=self.standard)
            traces = [get_benchmark(self.workload)
                      .make_trace(scale.single_core_records)]
        else:
            config = make_system_config(
                self.configuration,
                channels=self.channels or scale.multicore_channels,
                standard=self.standard)
            if self.cores:
                from repro.workloads.multiprogram import make_workload_suite
                mixes = make_workload_suite(
                    num_cores=self.cores,
                    mixes_per_category=scale.mixes_per_category)
            else:
                mixes = multicore_suite(scale)
            suite = {w.name: w for w in mixes}
            traces = suite[self.workload].make_traces(
                scale.multicore_records)
        return config, traces


#: Configurations timed on the multicore mixes by full runs: the three
#: mechanism families the paper's headline studies sweep.
MULTICORE_CONFIGURATIONS = ("Base", "FIGCache-Fast", "LISA-VILLA")


def figure7_jobs(scale: ExperimentScale, quick: bool = False) -> list[BenchJob]:
    """The figure-7 workload set: every configuration on every benchmark.

    The multicore portion covers the batch-stepped multi-core engine's
    moving parts: 8-core/4-channel mixes across the three mechanism
    families (``multi:*``), a 4-core/2-channel suite (``multi4:*``), and
    an 8-core/2-channel job (``multi2ch:*``) so channel-count scaling is
    tracked separately from core-count scaling.  Quick (CI) runs keep one
    job per multicore shape, and add one non-DDR4 single-core job so the
    per-bank-refresh and bank-group-pacing code paths are part of the
    perf smoke signal.
    """
    configurations = QUICK_CONFIGURATIONS if quick else DEFAULT_CONFIGURATIONS
    categories = single_core_benchmarks(scale)
    benchmarks = [b for group in categories.values() for b in group]
    jobs = [BenchJob(name=f"single:{configuration}:{benchmark}",
                     configuration=configuration, kind="single-core",
                     workload=benchmark)
            for configuration in configurations for benchmark in benchmarks]
    if quick:
        jobs.append(BenchJob(name="single:FIGCache-Fast:lbm@HBM2",
                             configuration="FIGCache-Fast",
                             kind="single-core", workload="lbm",
                             standard="HBM2"))
    multi_configurations = QUICK_CONFIGURATIONS if quick \
        else MULTICORE_CONFIGURATIONS
    mix = multicore_suite(scale)[0]
    for configuration in multi_configurations:
        jobs.append(BenchJob(name=f"multi:{configuration}:{mix.name}",
                             configuration=configuration,
                             kind="multicore", workload=mix.name))
    # 4-core mixes on 2 channels: mix-50pct-0 keeps the per-channel load
    # comparable to the 8-core jobs' mix-25pct-0.
    for configuration in (("Base",) if quick else multi_configurations):
        jobs.append(BenchJob(name=f"multi4:{configuration}:mix-50pct-0",
                             configuration=configuration,
                             kind="multicore", workload="mix-50pct-0",
                             cores=4, channels=2))
    jobs.append(BenchJob(name=f"multi2ch:Base:{mix.name}",
                         configuration="Base", kind="multicore",
                         workload=mix.name, channels=2))
    return jobs


def current_revision() -> str:
    """Short git revision of the working tree, or ``unknown``."""
    try:
        out = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                             capture_output=True, text=True, check=True,
                             timeout=10)
        return out.stdout.strip() or "unknown"
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def peak_rss_bytes() -> int:
    """Peak resident set size of this process, in bytes."""
    ru_maxrss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is KiB on Linux, bytes on macOS.
    return ru_maxrss * 1024 if sys.platform != "darwin" else ru_maxrss


def host_metadata() -> dict:
    """Uniform host identity recorded by every bench report.

    One place so the simulator bench and the sweep bench (and anything
    added later) can never drift on which fields they record.
    """
    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
    }


def measure_tracing_overhead(scale: ExperimentScale | None = None,
                             backend: str | None = None,
                             repeats: int = 3) -> dict:
    """Paired tracing-off-vs-on timing of one representative job.

    Times the same (config, traces) with no tracer installed and with an
    :class:`~repro.sim.tracing.EventTracer` attached, interleaved over
    ``repeats`` passes keeping the fastest CPU time of each side.  The
    job is a FIGCache-Fast single-core run, so command, request, and
    mechanism hooks all fire.  ``off_cpu_s`` is the number the golden
    zero-overhead-when-off contract protects; ``overhead_ratio`` is the
    cost of turning tracing on (on the turbo backend this includes
    falling back from the fused single-channel loop to the generic one).
    """
    from repro.sim.tracing import EventTracer

    scale = scale or ExperimentScale.tiny()
    backend_name = resolve_backend_name(backend)
    job = next(job for job in figure7_jobs(scale, quick=True)
               if job.configuration == "FIGCache-Fast")
    config, traces = job.build(scale)
    config = replace(config, backend=backend_name)
    best: dict[str, float | None] = {"off": None, "on": None}
    events = dropped = 0
    for _ in range(max(repeats, 1)):
        for mode in ("off", "on"):
            tracer = EventTracer() if mode == "on" else None
            system = System(config, traces, tracer=tracer)
            cpu_start = time.process_time()
            system.run(job.workload)
            cpu = time.process_time() - cpu_start
            if best[mode] is None or cpu < best[mode]:
                best[mode] = cpu
            if tracer is not None:
                events = tracer.total_events
                dropped = tracer.dropped_events
    off_cpu = best["off"] or 0.0
    on_cpu = best["on"] or 0.0
    return {
        "job": job.name,
        "backend": backend_name,
        "repeats": max(repeats, 1),
        "off_cpu_s": off_cpu,
        "on_cpu_s": on_cpu,
        "overhead_ratio": on_cpu / off_cpu if off_cpu else 0.0,
        "events": events,
        "dropped_events": dropped,
    }


def resolve_backend_name(backend: str | None) -> str:
    """The backend name a bench run with this ``--backend`` value uses.

    ``None`` resolves through the normal selection chain (environment
    variable, then default), so the recorded name is the backend that
    actually ran — never a guess.  Unknown names raise ``ValueError``
    before any job is timed.
    """
    from repro.sim.backend import resolve_backend
    return resolve_backend(backend).name


def backend_build_info(backend: str | None) -> dict:
    """Build-mode record (interpreted vs AOT-compiled) for bench reports."""
    from repro.sim.backend import backend_build_info as build_info
    return build_info(backend)


def _plan_cache_snapshot() -> dict:
    """Current compiled-plan-cache counters (see repro.sim.turbo)."""
    from repro.sim.turbo import plan_cache_stats
    return plan_cache_stats()


def _plan_cache_report(before: dict) -> dict:
    """Plan-cache state plus the counter deltas attributable to this run.

    Bench reports record both the process-wide cache state and how many
    hits/compiles *this* run contributed, so warm-cache effects (e.g.
    repeats 2+ reusing plans compiled by repeat 1) are visible in the
    pinned numbers.
    """
    after = _plan_cache_snapshot()
    report = dict(after)
    for key in ("hits", "misses", "evictions", "compiles", "bypasses"):
        report[f"run_{key}"] = after[key] - before.get(key, 0)
    return report


def run_paired_bench(scale: ExperimentScale | None = None,
                     quick: bool = False, repeats: int = 3,
                     backend: str | None = "turbo",
                     baseline_backend: str = "python") -> dict:
    """Paired same-process A/B timing of two backends over the bench matrix.

    Every job is timed on both backends inside one process, interleaved
    (baseline then candidate, job by job, ``repeats`` full passes) and
    keeping each side's fastest CPU time — the measurement protocol behind
    the pinned ``BENCH_pr*.json`` speedup numbers.  Returns a
    :func:`run_bench`-shaped report for the candidate ``backend`` whose
    ``comparisons`` block records per-job and aggregate speedups over
    ``baseline_backend``, split by job kind (the multicore geomean is the
    number the turbo engine's acceptance criteria pin).
    """
    scale = scale or ExperimentScale.bench()
    if quick:
        scale = ExperimentScale.tiny()
    backend_name = resolve_backend_name(backend)
    baseline_name = resolve_backend_name(baseline_backend)
    jobs = figure7_jobs(scale, quick=quick)
    plan_cache_before = _plan_cache_snapshot()

    inputs = []
    for job in jobs:
        config, traces = job.build(scale)
        inputs.append((job,
                       replace(config, backend=baseline_name),
                       replace(config, backend=backend_name), traces))
    best: dict[str, dict[str, float]] = \
        {job.name: {} for job in jobs}
    events_by_job: dict[str, int] = {}
    cycles_by_job: dict[str, int] = {}
    wall_by_job: dict[str, float] = {}
    for _ in range(max(repeats, 1)):
        for job, base_config, cand_config, traces in inputs:
            sides = best[job.name]
            for side, config in (("baseline", base_config),
                                 ("candidate", cand_config)):
                system = System(config, traces)
                wall_start = time.perf_counter()
                cpu_start = time.process_time()
                result = system.run(job.workload)
                cpu = time.process_time() - cpu_start
                wall = time.perf_counter() - wall_start
                if side not in sides or cpu < sides[side]:
                    sides[side] = cpu
                if side == "candidate":
                    name = job.name
                    events_by_job[name] = system.processed_events
                    cycles_by_job[name] = result.total_cycles
                    if name not in wall_by_job or wall < wall_by_job[name]:
                        wall_by_job[name] = wall

    job_reports = []
    per_job = {}
    baseline_cpu = {}
    speedups_by_kind: dict[str, list[float]] = {}
    total_wall = total_cpu = 0.0
    total_events = total_cycles = 0
    for job in jobs:
        name = job.name
        sides = best[name]
        cpu = sides["candidate"]
        base = sides["baseline"]
        events = events_by_job[name]
        speedup = base / cpu if cpu else 0.0
        per_job[name] = speedup
        baseline_cpu[name] = base
        speedups_by_kind.setdefault(job.kind, []).append(speedup)
        total_wall += wall_by_job[name]
        total_cpu += cpu
        total_events += events
        total_cycles += cycles_by_job[name]
        job_reports.append({
            "name": name,
            "configuration": job.configuration,
            "kind": job.kind,
            "workload": job.workload,
            "wall_s": wall_by_job[name],
            "cpu_s": cpu,
            "baseline_cpu_s": base,
            "speedup": speedup,
            "events": events,
            "events_per_sec": events / cpu if cpu else 0.0,
            "simulated_cycles": cycles_by_job[name],
        })

    speedups = list(per_job.values())
    comparison_key = f"{backend_name}_vs_{baseline_name}_paired"
    return {
        "schema": 1,
        "rev": current_revision(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        **host_metadata(),
        "quick": quick,
        "repeats": max(repeats, 1),
        "backend": backend_name,
        "build": backend_build_info(backend_name),
        "plan_cache": _plan_cache_report(plan_cache_before),
        "scale": {
            "single_core_records": scale.single_core_records,
            "multicore_records": scale.multicore_records,
            "num_cores": scale.num_cores,
            "multicore_channels": scale.multicore_channels,
        },
        "jobs": job_reports,
        "totals": {
            "simulations": len(job_reports),
            "wall_s": total_wall,
            "cpu_s": total_cpu,
            "sims_per_sec": len(job_reports) / total_cpu if total_cpu
            else 0.0,
            "events": total_events,
            "events_per_sec": total_events / total_cpu if total_cpu
            else 0.0,
            "simulated_cycles": total_cycles,
            "peak_rss_bytes": peak_rss_bytes(),
        },
        "comparisons": {
            comparison_key: {
                "note": "same process, same host, interleaved "
                        f"min-of-{max(repeats, 1)} CPU time",
                "baseline_backend": baseline_name,
                "geomean_speedup": geometric_mean(speedups),
                "min_speedup": min(speedups),
                "max_speedup": max(speedups),
                **{f"geomean_speedup_{kind.replace('-', '_')}":
                   geometric_mean(values)
                   for kind, values in sorted(speedups_by_kind.items())},
                "per_job": per_job,
                "baseline_cpu_s": baseline_cpu,
            },
        },
    }


def format_paired_report(report: dict) -> str:
    """Human-readable summary of a paired A/B bench report."""
    (comparison_key, comparison), = report["comparisons"].items()
    lines = [f"paired bench @ {report['rev']} "
             f"(python {report['python']}, {comparison_key}, "
             f"compiled={report['build']['compiled']}, "
             f"quick={report['quick']})"]
    for job in report["jobs"]:
        lines.append(f"  {job['name']:<44s} {job['baseline_cpu_s']:8.3f}s -> "
                     f"{job['cpu_s']:8.3f}s cpu  {job['speedup']:5.2f}x")
    lines.append(f"  geomean speedup {comparison['geomean_speedup']:.3f}x "
                 f"(min {comparison['min_speedup']:.2f}x, "
                 f"max {comparison['max_speedup']:.2f}x)")
    for key in sorted(comparison):
        if key.startswith("geomean_speedup_"):
            lines.append(f"  {key[len('geomean_speedup_'):]}: "
                         f"{comparison[key]:.3f}x")
    cache = report.get("plan_cache") or {}
    if cache:
        lines.append(f"  plan cache: {cache.get('run_hits', 0)} hits, "
                     f"{cache.get('run_compiles', 0)} compiles this run "
                     f"(size {cache.get('size', 0)}/"
                     f"{cache.get('capacity', 0)}, "
                     f"enabled={cache.get('enabled')})")
    return "\n".join(lines)


def run_bench(scale: ExperimentScale | None = None, quick: bool = False,
              repeats: int = 1, backend: str | None = None) -> dict:
    """Time the benchmark matrix; returns the report dictionary.

    ``repeats`` re-runs every job and keeps the fastest wall time per job,
    which damps scheduler/allocator noise on busy machines.  ``backend``
    pins every job to one simulation backend; ``None`` uses the normal
    selection chain.  The resolved name is recorded in the report so
    cross-backend comparisons are detectable later.
    """
    scale = scale or ExperimentScale.bench()
    if quick:
        scale = ExperimentScale.tiny()
    backend_name = resolve_backend_name(backend)
    jobs = figure7_jobs(scale, quick=quick)
    plan_cache_before = _plan_cache_snapshot()

    # Build every job's inputs up front (untimed), then time ``repeats``
    # full passes over the matrix and keep each job's fastest time.
    # Interleaving the passes — rather than repeating one job back to back —
    # means a transient machine-load spike lands on different jobs in each
    # pass, so the per-job minimum filters it out.
    inputs = [(job, replace(config, backend=backend_name), traces)
              for job in jobs
              for config, traces in (job.build(scale),)]
    best_wall: dict[str, float] = {}
    best_cpu: dict[str, float] = {}
    events_by_job: dict[str, int] = {}
    cycles_by_job: dict[str, int] = {}
    for _ in range(max(repeats, 1)):
        for job, config, traces in inputs:
            system = System(config, traces)
            wall_start = time.perf_counter()
            cpu_start = time.process_time()
            result = system.run(job.workload)
            cpu = time.process_time() - cpu_start
            wall = time.perf_counter() - wall_start
            name = job.name
            if name not in best_wall or wall < best_wall[name]:
                best_wall[name] = wall
            if name not in best_cpu or cpu < best_cpu[name]:
                best_cpu[name] = cpu
            events_by_job[name] = system.processed_events
            cycles_by_job[name] = result.total_cycles

    job_reports = []
    total_wall = 0.0
    total_cpu = 0.0
    total_events = 0
    total_cycles = 0
    for job in jobs:
        name = job.name
        wall = best_wall[name]
        cpu = best_cpu[name]
        events = events_by_job[name]
        total_wall += wall
        total_cpu += cpu
        total_events += events
        total_cycles += cycles_by_job[name]
        job_reports.append({
            "name": name,
            "configuration": job.configuration,
            "kind": job.kind,
            "workload": job.workload,
            "wall_s": wall,
            # CPU seconds (time.process_time) — the headline metric: the
            # simulator is single-threaded, and CPU time is far less
            # sensitive to machine load than wall time.
            "cpu_s": cpu,
            "events": events,
            "events_per_sec": events / cpu if cpu else 0.0,
            "simulated_cycles": cycles_by_job[name],
        })

    return {
        "schema": 1,
        "rev": current_revision(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        **host_metadata(),
        "quick": quick,
        "repeats": max(repeats, 1),
        "backend": backend_name,
        "build": backend_build_info(backend_name),
        "plan_cache": _plan_cache_report(plan_cache_before),
        "tracing": measure_tracing_overhead(scale=scale, backend=backend_name,
                                            repeats=max(repeats, 1)),
        "scale": {
            "single_core_records": scale.single_core_records,
            "multicore_records": scale.multicore_records,
            "num_cores": scale.num_cores,
            "multicore_channels": scale.multicore_channels,
        },
        "jobs": job_reports,
        "totals": {
            "simulations": len(job_reports),
            "wall_s": total_wall,
            "cpu_s": total_cpu,
            "sims_per_sec": len(job_reports) / total_cpu if total_cpu
            else 0.0,
            "events": total_events,
            "events_per_sec": total_events / total_cpu if total_cpu
            else 0.0,
            "simulated_cycles": total_cycles,
            "peak_rss_bytes": peak_rss_bytes(),
        },
    }


def compare_to_baseline(report: dict, baseline: dict) -> dict | None:
    """Per-job and aggregate speedup of ``report`` over ``baseline``.

    Jobs are matched by name; unmatched jobs are ignored.  Returns None
    when no jobs match (e.g. quick run against a full baseline).
    """
    if report.get("scale") != baseline.get("scale"):
        # Different trace lengths / core counts: job names may match but
        # the work does not, so a speedup would be meaningless.
        return None
    base_jobs = {job["name"]: job for job in baseline.get("jobs", [])}
    speedups = []
    per_job = {}
    # Compare CPU seconds when both sides recorded them (the simulator is
    # single-threaded, and CPU time is robust against machine load);
    # otherwise fall back to wall time.
    for job in report["jobs"]:
        base = base_jobs.get(job["name"])
        if base is None:
            continue
        metric = "cpu_s" if job.get("cpu_s") and base.get("cpu_s") \
            else "wall_s"
        if not job.get(metric) or not base.get(metric):
            continue
        speedup = base[metric] / job[metric]
        per_job[job["name"]] = speedup
        speedups.append(speedup)
    if not speedups:
        return None
    # Reports written before the backend field existed compare as the
    # implicit reference backend.
    backend = report.get("backend", "python")
    baseline_backend = baseline.get("backend", "python")
    return {
        "baseline_rev": baseline.get("rev", "unknown"),
        "jobs_compared": len(speedups),
        "geomean_speedup": geometric_mean(speedups),
        "min_speedup": min(speedups),
        "max_speedup": max(speedups),
        "per_job": per_job,
        "backend": backend,
        "baseline_backend": baseline_backend,
        # Cross-backend comparisons are sometimes the point (turbo vs
        # python) and sometimes an accident (regressing turbo numbers
        # against a python baseline); the flag lets the CLI warn either
        # way without refusing the comparison.
        "backend_mismatch": backend != baseline_backend,
    }


def profile_job(job_name: str | None = None,
                scale: ExperimentScale | None = None,
                backend: str | None = None, top: int = 25) -> str:
    """cProfile one bench job; returns the top-``top`` cumulative table.

    The profiled region is exactly the timed region of :func:`run_bench`
    (``System.run`` — trace and system construction excluded), so the
    table explains the numbers the bench emits.  ``job_name`` defaults to
    the first job of the full matrix and accepts any job of the full OR
    quick matrix — including every multicore job (``multi:*``,
    ``multi4:*``, ``multi2ch:*``); unknown names raise ``ValueError``
    listing the available jobs.
    """
    scale = scale or ExperimentScale.bench()
    backend_name = resolve_backend_name(backend)
    jobs = figure7_jobs(scale)
    by_name = {job.name: job for job in jobs}
    for extra in figure7_jobs(scale, quick=True):
        # Quick-only jobs (e.g. the HBM2 smoke job) are profilable too.
        by_name.setdefault(extra.name, extra)
    if job_name is None:
        job_name = jobs[0].name
    job = by_name.get(job_name)
    if job is None:
        raise ValueError(f"unknown bench job {job_name!r}; choose one of "
                         f"{sorted(by_name)}")
    config, traces = job.build(scale)
    system = System(replace(config, backend=backend_name), traces)
    profiler = cProfile.Profile()
    profiler.enable()
    system.run(job.workload)
    profiler.disable()
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats(top)
    header = (f"cProfile of bench job {job.name} "
              f"(backend {backend_name}, "
              f"{scale.single_core_records if job.kind == 'single-core' else scale.multicore_records} "
              f"records/core), top {top} by cumulative time")
    return header + "\n" + buffer.getvalue()


def write_report(report: dict, output_dir: Path,
                 stem: str | None = None) -> Path:
    """Write ``<stem>.json`` (default ``BENCH_<rev>``); returns the path."""
    output_dir.mkdir(parents=True, exist_ok=True)
    path = output_dir / f"{stem or 'BENCH_' + report['rev']}.json"
    with path.open("w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return path


# ----------------------------------------------------------------------
# Sweep throughput bench: the experiment *engine* as the measured system.
# ----------------------------------------------------------------------

def _pr1_job(job):
    """Worker entry point replicating the PR-1 engine's per-job cost.

    Config and traces are rebuilt from scratch for every job — exactly
    what ``SimJob.run()`` did before the worker memo existed — while the
    returned CPU time covers only the simulation proper, so engine
    overhead (wall minus simulation CPU) is measured identically for both
    executor strategies.
    """
    config = job.build_config()
    traces = job.build_traces()
    cpu_start = time.process_time()
    result = run_workload(config, traces, job.workload_name)
    return result, time.process_time() - cpu_start


class Pr1Executor:
    """The PR-1 dispatch strategy, preserved as the sweep-bench baseline.

    Fresh ``ProcessPoolExecutor`` per batch, one pickled job per IPC round
    trip, submission-order draining, per-job trace/config rebuilds in the
    workers (no memo).  Kept so ``BENCH_sweep`` reports compare the warm
    engine against the strategy it replaced on the same machine and
    commit — not against numbers from another checkout.
    """

    def __init__(self, cache: ResultCache, jobs: int = 1):
        self.cache = cache
        self.jobs = jobs
        self.simulations_executed = 0
        self.cache_hits = 0
        self.sim_cpu_s = 0.0

    def run(self, jobs):
        ordered = []
        seen = set()
        for job in jobs:
            if job not in seen:
                seen.add(job)
                ordered.append((job, job.key()))
        results = {}
        pending = []
        for job, key in ordered:
            cached = self.cache.get(key)
            if cached is not None:
                self.cache_hits += 1
                results[job] = cached
            else:
                pending.append((job, key))
        for job, key, (result, sim_cpu) in self._execute(pending):
            self.simulations_executed += 1
            self.sim_cpu_s += sim_cpu
            self.cache.put(key, result)
            results[job] = result
        return results

    def _execute(self, pending):
        if not pending:
            return
        if self.jobs > 1 and len(pending) > 1:
            workers = min(self.jobs, len(pending))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [(job, key, pool.submit(_pr1_job, job))
                           for job, key in pending]
                for job, key, future in futures:
                    yield job, key, future.result()
        else:
            for job, key in pending:
                yield job, key, _pr1_job(job)

    def close(self):
        """No warm pool to shut down (each batch owned its own)."""


#: Executor strategies the sweep bench compares.
SWEEP_ENGINES = ("pr1", "warm")


def _sweep_matrix(scale: ExperimentScale, quick: bool):
    """The job matrix, grouped into per-configuration batches.

    Batching per configuration models real engine traffic — each figure
    or study submits its own batch — which is precisely where a warm pool
    beats a spin-up-per-batch strategy.
    """
    from repro.experiments.figures import figure7_matrix_jobs
    configurations = QUICK_CONFIGURATIONS if quick else DEFAULT_CONFIGURATIONS
    mix_configurations = ("FIGCache-Fast",) if quick \
        else ("Base", "FIGCache-Fast")
    jobs = figure7_matrix_jobs(scale, configurations=configurations,
                               mix_configurations=mix_configurations)
    batches: dict[str, list] = {}
    for job in jobs:
        batches.setdefault(job.configuration, []).append(job)
    return jobs, list(batches.values())


def run_sweep_bench(scale: ExperimentScale | None = None,
                    quick: bool = False,
                    jobs_levels: Sequence[int] = (1, 2, 4),
                    repeats: int = 2) -> dict:
    """Benchmark sweep throughput: jobs/sec through the engine itself.

    Runs a cold-cache figure-7-style matrix through two executor
    strategies — the PR-1 dispatch replica and the current warm-pool
    engine — at every requested worker count, and reports wall time,
    jobs/sec, summed simulation CPU, and engine overhead
    (``wall - sim CPU``) for each.  Every measurement starts from a cold
    memory-only cache, so the numbers measure dispatch, trace/config
    building, scheduling, and cache writes — never cache hits.  Each
    measurement repeats ``repeats`` times keeping the fastest wall clock.

    Bit-identity across strategies and worker counts is asserted while
    measuring (``results_identical`` in the report): the optimization
    target is jobs/second, never the numbers.
    """
    from repro.experiments.engine import JobExecutor

    scale = ExperimentScale.tiny() if quick \
        else (scale or ExperimentScale.bench())
    matrix, batches = _sweep_matrix(scale, quick)
    reference = None
    runs = []
    for jobs_level in jobs_levels:
        for engine_name in SWEEP_ENGINES:
            best = None
            for _ in range(max(repeats, 1)):
                cache = ResultCache()  # memory-only: always cold
                if engine_name == "pr1":
                    executor = Pr1Executor(cache, jobs=jobs_level)
                else:
                    executor = JobExecutor(cache=cache, jobs=jobs_level)
                results = {}
                wall_start = time.perf_counter()
                for batch in batches:
                    results.update(executor.run(batch))
                wall = time.perf_counter() - wall_start
                executor.close()  # pool teardown excluded from the clock
                rows = [results[job].to_dict() for job in matrix]
                if reference is None:
                    reference = rows
                identical = rows == reference
                measurement = {
                    "engine": engine_name,
                    "jobs": jobs_level,
                    "wall_s": wall,
                    "jobs_per_sec": len(matrix) / wall,
                    "sim_cpu_s": executor.sim_cpu_s,
                    "overhead_s": wall - executor.sim_cpu_s,
                    "overhead_per_job_s":
                        (wall - executor.sim_cpu_s) / len(matrix),
                    "simulations": executor.simulations_executed,
                    "results_identical": identical,
                    # Reliability counters (getattr: the PR-1 replica
                    # predates them).  All zero in a healthy perf run —
                    # nonzero means the numbers absorbed retry/respawn
                    # time and silent corruption can't hide in a report.
                    "retries": getattr(executor, "retries", 0),
                    "chunk_timeouts":
                        getattr(executor, "chunk_timeouts", 0),
                    "pool_respawns":
                        getattr(executor, "pool_respawns", 0),
                    "cache_decode_failures":
                        cache.stats().decode_failures,
                    "cache_quarantined": cache.stats().quarantined,
                }
                if best is None or wall < best["wall_s"]:
                    best = measurement
                else:
                    best["results_identical"] &= identical
            runs.append(best)

    by_key = {(run["engine"], run["jobs"]): run for run in runs}
    comparison = {}
    for jobs_level in jobs_levels:
        pr1 = by_key[("pr1", jobs_level)]
        warm = by_key[("warm", jobs_level)]
        comparison[str(jobs_level)] = {
            "pr1_jobs_per_sec": pr1["jobs_per_sec"],
            "warm_jobs_per_sec": warm["jobs_per_sec"],
            "throughput_speedup": warm["jobs_per_sec"] / pr1["jobs_per_sec"],
            "pr1_overhead_per_job_s": pr1["overhead_per_job_s"],
            "warm_overhead_per_job_s": warm["overhead_per_job_s"],
            # Engine overhead is only well-defined where workers cannot
            # overlap the parent (sim CPU can exceed wall at jobs > 1);
            # the reduction ratio is the jobs=1 criterion metric.
            "overhead_reduction":
                (pr1["overhead_per_job_s"] / warm["overhead_per_job_s"])
                if warm["overhead_per_job_s"] > 0 else None,
        }

    return {
        "schema": 1,
        "mode": "sweep",
        "rev": current_revision(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        **host_metadata(),
        "quick": quick,
        "repeats": max(repeats, 1),
        "backend": resolve_backend_name(None),
        "matrix_jobs": len(matrix),
        "batches": len(batches),
        "scale": {
            "single_core_records": scale.single_core_records,
            "multicore_records": scale.multicore_records,
            "num_cores": scale.num_cores,
            "multicore_channels": scale.multicore_channels,
        },
        "runs": runs,
        "comparison": comparison,
        "results_identical": all(run["results_identical"] for run in runs),
        # Worker counts beyond the container's CPUs timeshare one core:
        # parallel dispatch cannot add throughput there, so the speedup
        # reduces to pure engine-overhead savings.  On hosts with >= N
        # CPUs the jobs=N gap widens by the parallel-efficiency delta.
        "cpus_saturated": (os.cpu_count() or 1) < max(jobs_levels),
    }


def format_sweep_report(report: dict) -> str:
    """Human-readable summary of a sweep-throughput report."""
    lines = [f"sweep bench @ {report['rev']} "
             f"(python {report['python']}, {report['cpu_count']} CPU(s), "
             f"backend {report['backend']}, quick={report['quick']}): "
             f"{report['matrix_jobs']} jobs over {report['batches']} "
             f"batches, cold cache"]
    lines.append(f"  {'engine':<6s} {'jobs':>4s} {'wall_s':>8s} "
                 f"{'jobs/s':>8s} {'sim_cpu_s':>10s} {'ovh/job_ms':>11s}")
    for run in report["runs"]:
        lines.append(f"  {run['engine']:<6s} {run['jobs']:>4d} "
                     f"{run['wall_s']:>8.3f} {run['jobs_per_sec']:>8.2f} "
                     f"{run['sim_cpu_s']:>10.3f} "
                     f"{run['overhead_per_job_s'] * 1e3:>11.2f}")
    for jobs_level, cmp in report["comparison"].items():
        reduction = cmp["overhead_reduction"]
        lines.append(
            f"  jobs={jobs_level}: warm vs pr1 throughput "
            f"{cmp['throughput_speedup']:.2f}x"
            + (f", engine overhead/job {reduction:.1f}x lower"
               if reduction else ""))
    lines.append("  results bit-identical across engines and worker "
                 "counts: " + ("yes" if report["results_identical"]
                               else "NO - INVESTIGATE"))
    return "\n".join(lines)


def format_report(report: dict, comparison: dict | None) -> str:
    """Human-readable summary printed by the CLI."""
    totals = report["totals"]
    lines = [f"perf bench @ {report['rev']} "
             f"(python {report['python']}, "
             f"backend {report.get('backend', 'python')}, "
             f"quick={report['quick']})"]
    for job in report["jobs"]:
        lines.append(f"  {job['name']:<44s} {job['cpu_s']:8.3f}s cpu "
                     f"{job['events_per_sec']:12,.0f} events/s")
    lines.append(f"  {'TOTAL':<44s} {totals['cpu_s']:8.3f}s cpu "
                 f"({totals['wall_s']:.3f}s wall) "
                 f"{totals['events_per_sec']:12,.0f} events/s")
    lines.append(f"  {totals['simulations']} simulations, "
                 f"{totals['sims_per_sec']:.2f} sims/s, peak RSS "
                 f"{totals['peak_rss_bytes'] / (1 << 20):.1f} MiB")
    tracing = report.get("tracing")
    if tracing:
        lines.append(f"  tracing overhead ({tracing['job']}): "
                     f"{tracing['off_cpu_s']:.3f}s off vs "
                     f"{tracing['on_cpu_s']:.3f}s on cpu "
                     f"({tracing['overhead_ratio']:.2f}x, "
                     f"{tracing['events']:,} events)")
    if comparison:
        lines.append(f"  vs baseline {comparison['baseline_rev']}: "
                     f"geomean speedup {comparison['geomean_speedup']:.2f}x "
                     f"(min {comparison['min_speedup']:.2f}x, "
                     f"max {comparison['max_speedup']:.2f}x over "
                     f"{comparison['jobs_compared']} jobs)")
        if comparison.get("backend_mismatch"):
            lines.append(
                f"  WARNING: comparing across simulation backends "
                f"({comparison['backend']} report vs "
                f"{comparison['baseline_backend']} baseline) — the "
                f"speedup mixes backend choice with code changes")
    return "\n".join(lines)
