"""repro: a reproduction of FIGARO / FIGCache (MICRO 2020).

The package is organised as:

* :mod:`repro.dram` -- DRAM device/timing substrate, including the FIGARO
  ``RELOC`` command, and the multi-standard device catalog
  (:mod:`repro.dram.standards`: DDR4 speed grades, LPDDR4, HBM2, DDR5 —
  see ``docs/standards.md``).
* :mod:`repro.controller` -- memory controller substrate (queues, FR-FCFS).
* :mod:`repro.core` -- the paper's primary contribution: the FIGARO
  relocation engine and the FIGCache fine-grained in-DRAM cache.
* :mod:`repro.baselines` -- Base (no in-DRAM cache), LISA-VILLA, LL-DRAM.
* :mod:`repro.cpu` -- trace-driven cores and the cache hierarchy.
* :mod:`repro.workloads` -- synthetic workload/trace generators and the
  benchmark catalog.
* :mod:`repro.energy` -- DRAM and system energy models.
* :mod:`repro.circuit` -- lumped-RC analysis of the RELOC operation.
* :mod:`repro.analysis` -- hardware (area/power/storage) overhead models.
* :mod:`repro.sim` -- system assembly, the event-driven simulation loop,
  result metrics, and the unified telemetry pipeline
  (:mod:`repro.sim.telemetry`: per-request latency distributions and
  epoch-sampled time series — see ``docs/telemetry.md``).
* :mod:`repro.experiments` -- declarative runners, one per paper
  table/figure, on top of the experiment engine
  (:mod:`repro.experiments.engine`): parallel job execution plus a
  persistent content-addressed result cache.  ``python -m repro`` runs
  them from the command line (see ``docs/experiments.md``).
"""

__version__ = "1.2.0"

__all__ = ["__version__"]
