"""Per-core cache hierarchy (L1 / L2 / LLC).

The hierarchy filters the core's memory instructions: only LLC misses and
dirty LLC writebacks reach the memory controller.  Latency at each level is
charged to the core as a (small) exposed hit cost; out-of-order execution is
assumed to hide the rest, which is the usual first-order approximation for
trace-driven memory-system studies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cpu.cache import CacheConfig, SetAssociativeCache


@dataclass(frozen=True)
class HierarchyConfig:
    """Cache hierarchy configuration.

    The paper's Table 1 uses a 64 kB 4-way L1, a 256 kB 8-way L2, and a
    2 MB/core 16-way LLC.  The reproduction's default scales each level down
    (the synthetic traces are correspondingly smaller than the paper's
    billion-instruction traces); the paper-sized hierarchy is available via
    :meth:`paper_table1`.
    """

    l1: CacheConfig = field(default_factory=lambda: CacheConfig(
        size_bytes=16 * 1024, associativity=4, hit_latency_cycles=0))
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(
        size_bytes=64 * 1024, associativity=8, hit_latency_cycles=3))
    llc: CacheConfig = field(default_factory=lambda: CacheConfig(
        size_bytes=256 * 1024, associativity=16, hit_latency_cycles=8))

    @classmethod
    def paper_table1(cls) -> "HierarchyConfig":
        """The paper's full-size per-core hierarchy."""
        return cls(
            l1=CacheConfig(size_bytes=64 * 1024, associativity=4,
                           hit_latency_cycles=0),
            l2=CacheConfig(size_bytes=256 * 1024, associativity=8,
                           hit_latency_cycles=3),
            llc=CacheConfig(size_bytes=2 * 1024 * 1024, associativity=16,
                            hit_latency_cycles=8),
        )


@dataclass(frozen=True)
class HierarchyAccess:
    """Outcome of pushing one memory instruction through the hierarchy."""

    #: Level that served the access: ``L1``, ``L2``, ``LLC``, or ``memory``.
    level: str
    #: Exposed latency charged to the core for cache hits (cycles).
    exposed_latency: int
    #: True when a request must be sent to the memory controller.
    needs_memory: bool
    #: Block-aligned addresses of dirty LLC blocks evicted by this access.
    writebacks: tuple[int, ...] = ()


class CacheHierarchy:
    """Three-level private cache hierarchy for one core."""

    def __init__(self, config: HierarchyConfig | None = None):
        self._config = config or HierarchyConfig()
        self.l1 = SetAssociativeCache(self._config.l1)
        self.l2 = SetAssociativeCache(self._config.l2)
        self.llc = SetAssociativeCache(self._config.llc)
        self.accesses = 0
        self.llc_misses = 0

    @property
    def config(self) -> HierarchyConfig:
        """The hierarchy configuration."""
        return self._config

    def access(self, address: int, is_write: bool) -> HierarchyAccess:
        """Push one memory instruction through L1, L2, and the LLC."""
        self.accesses += 1
        config = self._config

        l1_result = self.l1.access(address, is_write)
        if l1_result.hit:
            return HierarchyAccess(level="L1",
                                   exposed_latency=config.l1.hit_latency_cycles,
                                   needs_memory=False)

        # L1 victim writebacks are absorbed by L2 (modelled as L2 writes).
        writebacks: list[int] = []
        if l1_result.writeback_address is not None:
            self._fill_lower(self.l2, l1_result.writeback_address,
                             dirty=True, writebacks=writebacks)

        l2_result = self.l2.access(address, is_write)
        if l2_result.hit:
            return HierarchyAccess(level="L2",
                                   exposed_latency=config.l2.hit_latency_cycles,
                                   needs_memory=False)
        if l2_result.writeback_address is not None:
            self._fill_lower(self.llc, l2_result.writeback_address,
                             dirty=True, writebacks=writebacks)

        llc_result = self.llc.access(address, is_write)
        if llc_result.writeback_address is not None:
            writebacks.append(llc_result.writeback_address)
        if llc_result.hit:
            return HierarchyAccess(level="LLC",
                                   exposed_latency=config.llc.hit_latency_cycles,
                                   needs_memory=False,
                                   writebacks=tuple(writebacks))

        self.llc_misses += 1
        return HierarchyAccess(level="memory",
                               exposed_latency=config.llc.hit_latency_cycles,
                               needs_memory=True,
                               writebacks=tuple(writebacks))

    def _fill_lower(self, cache: SetAssociativeCache, address: int,
                    dirty: bool, writebacks: list[int]) -> None:
        """Install a victim block into the next lower level."""
        result = cache.access(address, dirty)
        if result.writeback_address is not None:
            if cache is self.l2:
                self._fill_lower(self.llc, result.writeback_address,
                                 dirty=True, writebacks=writebacks)
            else:
                writebacks.append(result.writeback_address)

    @property
    def llc_mpki_denominator(self) -> int:
        """Total hierarchy accesses (used to sanity-check workload MPKI)."""
        return self.accesses

    def miss_rates(self) -> dict[str, float]:
        """Hit/miss summary per level."""
        return {
            "L1": 1.0 - self.l1.hit_rate,
            "L2": 1.0 - self.l2.hit_rate,
            "LLC": 1.0 - self.llc.hit_rate,
        }
