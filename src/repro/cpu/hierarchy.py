"""Per-core cache hierarchy (L1 / L2 / LLC).

The hierarchy filters the core's memory instructions: only LLC misses and
dirty LLC writebacks reach the memory controller.  Latency at each level is
charged to the core as a (small) exposed hit cost; out-of-order execution is
assumed to hide the rest, which is the usual first-order approximation for
trace-driven memory-system studies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cpu.cache import CacheConfig, SetAssociativeCache
from repro.cpu.cache import _ABSENT


@dataclass(frozen=True)
class HierarchyConfig:
    """Cache hierarchy configuration.

    The paper's Table 1 uses a 64 kB 4-way L1, a 256 kB 8-way L2, and a
    2 MB/core 16-way LLC.  The reproduction's default scales each level down
    (the synthetic traces are correspondingly smaller than the paper's
    billion-instruction traces); the paper-sized hierarchy is available via
    :meth:`paper_table1`.
    """

    l1: CacheConfig = field(default_factory=lambda: CacheConfig(
        size_bytes=16 * 1024, associativity=4, hit_latency_cycles=0))
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(
        size_bytes=64 * 1024, associativity=8, hit_latency_cycles=3))
    llc: CacheConfig = field(default_factory=lambda: CacheConfig(
        size_bytes=256 * 1024, associativity=16, hit_latency_cycles=8))

    @classmethod
    def paper_table1(cls) -> "HierarchyConfig":
        """The paper's full-size per-core hierarchy."""
        return cls(
            l1=CacheConfig(size_bytes=64 * 1024, associativity=4,
                           hit_latency_cycles=0),
            l2=CacheConfig(size_bytes=256 * 1024, associativity=8,
                           hit_latency_cycles=3),
            llc=CacheConfig(size_bytes=2 * 1024 * 1024, associativity=16,
                            hit_latency_cycles=8),
        )


@dataclass(frozen=True, slots=True)
class HierarchyAccess:
    """Outcome of pushing one memory instruction through the hierarchy.

    Immutable — the hierarchy returns shared instances for the common
    no-writeback outcomes.
    """

    #: Level that served the access: ``L1``, ``L2``, ``LLC``, or ``memory``.
    level: str
    #: Exposed latency charged to the core for cache hits (cycles).
    exposed_latency: int
    #: True when a request must be sent to the memory controller.
    needs_memory: bool
    #: Block-aligned addresses of dirty LLC blocks evicted by this access.
    writebacks: tuple[int, ...] = ()


class CacheHierarchy:
    """Three-level private cache hierarchy for one core."""

    __slots__ = ('_config', 'l1', 'l2', 'llc', 'accesses', 'llc_misses',
                 '_l1_hit', '_l2_hit', '_llc_hit', '_memory_miss')

    def __init__(self, config: HierarchyConfig | None = None):
        self._config = config or HierarchyConfig()
        self.l1 = SetAssociativeCache(self._config.l1)
        self.l2 = SetAssociativeCache(self._config.l2)
        self.llc = SetAssociativeCache(self._config.llc)
        self.accesses = 0
        self.llc_misses = 0
        # Shared results for the writeback-free outcomes (the vast majority
        # of accesses): one immutable instance per (level, latency) pair.
        config = self._config
        self._l1_hit = HierarchyAccess(
            level="L1", exposed_latency=config.l1.hit_latency_cycles,
            needs_memory=False)
        self._l2_hit = HierarchyAccess(
            level="L2", exposed_latency=config.l2.hit_latency_cycles,
            needs_memory=False)
        self._llc_hit = HierarchyAccess(
            level="LLC", exposed_latency=config.llc.hit_latency_cycles,
            needs_memory=False)
        self._memory_miss = HierarchyAccess(
            level="memory", exposed_latency=config.llc.hit_latency_cycles,
            needs_memory=True)

    @property
    def config(self) -> HierarchyConfig:
        """The hierarchy configuration."""
        return self._config

    def access(self, address: int, is_write: bool) -> HierarchyAccess:
        """Push one memory instruction through L1, L2, and the LLC.

        The three per-level lookups are fused into one function: the
        synthetic traces are dominated by full misses, so the common path
        pays all three, and a ``SetAssociativeCache.access`` call per level
        is the single largest per-record cost of the core model.  Each
        level's inline block mirrors ``SetAssociativeCache.access``
        exactly; victim fills between levels still go through
        :meth:`_fill_lower` (dirty victims only, a minority of misses).
        """
        self.accesses += 1

        # --- L1 -----------------------------------------------------------
        l1 = self.l1
        offset_bits = l1._offset_bits
        block = address >> offset_bits
        mask = l1._set_mask
        cache_set = l1._sets[block & mask if mask is not None
                             else block % l1._num_sets]
        dirty = cache_set.get(block, _ABSENT)
        if dirty is not _ABSENT:
            l1.hits += 1
            if next(reversed(cache_set)) == block:
                if is_write and not dirty:
                    cache_set[block] = True
            else:
                del cache_set[block]
                cache_set[block] = dirty or is_write
            return self._l1_hit
        l1.misses += 1
        l1_writeback = None
        if len(cache_set) >= l1._associativity:
            victim_block = next(iter(cache_set))
            if cache_set.pop(victim_block):
                l1.writebacks += 1
                l1_writeback = victim_block << offset_bits
        cache_set[block] = is_write

        # L1 victim writebacks are absorbed by L2 (modelled as L2 writes).
        writebacks: list[int] = []
        if l1_writeback is not None:
            self._fill_lower(self.l2, l1_writeback, dirty=True,
                             writebacks=writebacks)

        # --- L2 -----------------------------------------------------------
        l2 = self.l2
        offset_bits = l2._offset_bits
        block = address >> offset_bits
        mask = l2._set_mask
        cache_set = l2._sets[block & mask if mask is not None
                             else block % l2._num_sets]
        dirty = cache_set.get(block, _ABSENT)
        if dirty is not _ABSENT:
            l2.hits += 1
            if next(reversed(cache_set)) == block:
                if is_write and not dirty:
                    cache_set[block] = True
            else:
                del cache_set[block]
                cache_set[block] = dirty or is_write
            # Writebacks triggered by the L1-victim fill are absorbed here,
            # matching the original model: an L2 hit never surfaces them.
            return self._l2_hit
        l2.misses += 1
        l2_writeback = None
        if len(cache_set) >= l2._associativity:
            victim_block = next(iter(cache_set))
            if cache_set.pop(victim_block):
                l2.writebacks += 1
                l2_writeback = victim_block << offset_bits
        cache_set[block] = is_write
        if l2_writeback is not None:
            self._fill_lower(self.llc, l2_writeback, dirty=True,
                             writebacks=writebacks)

        # --- LLC ----------------------------------------------------------
        llc = self.llc
        offset_bits = llc._offset_bits
        block = address >> offset_bits
        mask = llc._set_mask
        cache_set = llc._sets[block & mask if mask is not None
                              else block % llc._num_sets]
        dirty = cache_set.get(block, _ABSENT)
        if dirty is not _ABSENT:
            llc.hits += 1
            if next(reversed(cache_set)) == block:
                if is_write and not dirty:
                    cache_set[block] = True
            else:
                del cache_set[block]
                cache_set[block] = dirty or is_write
            if not writebacks:
                return self._llc_hit
            return HierarchyAccess(
                level="LLC",
                exposed_latency=self._config.llc.hit_latency_cycles,
                needs_memory=False, writebacks=tuple(writebacks))
        llc.misses += 1
        if len(cache_set) >= llc._associativity:
            victim_block = next(iter(cache_set))
            if cache_set.pop(victim_block):
                llc.writebacks += 1
                writebacks.append(victim_block << offset_bits)
        cache_set[block] = is_write

        self.llc_misses += 1
        if not writebacks:
            return self._memory_miss
        return HierarchyAccess(
            level="memory",
            exposed_latency=self._config.llc.hit_latency_cycles,
            needs_memory=True, writebacks=tuple(writebacks))

    def _fill_lower(self, cache: SetAssociativeCache, address: int,
                    dirty: bool, writebacks: list[int]) -> None:
        """Install a victim block into the next lower level."""
        result = cache.access(address, dirty)
        if result.writeback_address is not None:
            if cache is self.l2:
                self._fill_lower(self.llc, result.writeback_address,
                                 dirty=True, writebacks=writebacks)
            else:
                writebacks.append(result.writeback_address)

    @property
    def llc_mpki_denominator(self) -> int:
        """Total hierarchy accesses (used to sanity-check workload MPKI)."""
        return self.accesses

    def miss_rates(self) -> dict[str, float]:
        """Hit/miss summary per level."""
        return {
            "L1": 1.0 - self.l1.hit_rate,
            "L2": 1.0 - self.l2.hit_rate,
            "LLC": 1.0 - self.llc.hit_rate,
        }
