"""Trace-driven core model.

Each core replays a trace of :class:`~repro.workloads.trace.TraceRecord`
entries.  A record describes a burst of non-memory instructions (``bubbles``)
followed by one memory instruction.  The core model enforces the paper's
Table 1 front-end constraints:

* up to ``issue_width`` instructions issue per cycle;
* at most ``window_size`` instructions may be in flight past the oldest
  unresolved LLC load miss (the 256-entry instruction window);
* at most ``mshr_entries`` cache-block misses may be outstanding at once.

Cache hits are (mostly) hidden by out-of-order execution; only LLC misses
interact with the memory system.  The model is event-driven: the simulator
calls :meth:`TraceCore.run` to let the core issue work until it must stall
or finishes, and :meth:`TraceCore.notify_completion` when one of its memory
requests completes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import NamedTuple

from repro.cpu.hierarchy import CacheHierarchy, HierarchyConfig
from repro.cpu.mshr import MSHRFile
from repro.workloads.trace import TraceRecord


@dataclass(frozen=True)
class CoreConfig:
    """Core front-end parameters (paper Table 1 defaults)."""

    issue_width: int = 3
    window_size: int = 256
    mshr_entries: int = 8
    hierarchy: HierarchyConfig = field(default_factory=HierarchyConfig)


@dataclass(slots=True)
class CoreStats:
    """Per-core statistics gathered during simulation."""

    instructions: int = 0
    memory_instructions: int = 0
    llc_miss_loads: int = 0
    llc_miss_stores: int = 0
    writebacks: int = 0
    stall_cycles_window: int = 0
    stall_cycles_mshr: int = 0
    finish_cycle: int = 0

    def ipc(self) -> float:
        """Instructions per cycle over the whole run."""
        if self.finish_cycle <= 0:
            return 0.0
        return self.instructions / self.finish_cycle

    def telemetry_counters(self) -> dict[str, int]:
        """Cumulative counters for the telemetry epoch sampler.

        Uniform stats-producer protocol (see :mod:`repro.sim.telemetry`).
        """
        return {
            "instructions": self.instructions,
            "memory_instructions": self.memory_instructions,
            "llc_miss_loads": self.llc_miss_loads,
            "llc_miss_stores": self.llc_miss_stores,
            "writebacks": self.writebacks,
            "stall_cycles_window": self.stall_cycles_window,
            "stall_cycles_mshr": self.stall_cycles_mshr,
        }


@dataclass(slots=True)
class _OutstandingMiss:
    """A load miss the core is still waiting on."""

    address: int
    #: Instruction count (position in program order) at which it was issued.
    instruction_position: int
    #: True when the window cannot retire past this miss (demand loads).
    blocks_window: bool
    #: ``address`` masked to its cache block (``address & _block_mask``).
    #: The reference loop matches completions by masking ``address`` on the
    #: fly; the turbo backend precomputes the block at allocation so its
    #: completion scan is a single field compare.  Defaults to -1 (unset)
    #: for entries built by the reference path, which never reads it.
    block: int = -1


class IssuedRequest(NamedTuple):
    """A memory request the core wants to send, with its issue time.

    A named tuple: one is created per memory request on the issue hot
    path, and the simulator unpacks it positionally.
    """

    issue_cycle: int
    address: int
    is_write: bool


@dataclass(slots=True)
class CoreRunResult:
    """Outcome of one :meth:`TraceCore.run` call."""

    #: Memory requests issued during this run, in issue order.
    requests: list[IssuedRequest]
    #: True when the core has executed its entire trace.
    finished: bool
    #: True when the core stopped because it is waiting for a completion.
    stalled: bool


class TraceCore:
    """One trace-driven core."""

    __slots__ = ('core_id', '_trace', '_config', 'hierarchy', 'mshrs',
                 'stats', '_issue_width', '_window_size', '_block_mask',
                 '_mshr_entries', '_mshr_capacity', '_mshr_shift',
                 '_hierarchy_access', '_run_hot',
                 '_trace_fast', '_trace_length', '_core_cycle',
                 '_next_record', '_issued_instructions', '_outstanding',
                 '_finished')

    def __init__(self, core_id: int, trace: list[TraceRecord],
                 config: CoreConfig | None = None):
        self.core_id = core_id
        self._trace = trace
        self._config = config or CoreConfig()
        self.hierarchy = CacheHierarchy(self._config.hierarchy)
        self.mshrs = MSHRFile(self._config.mshr_entries)
        self.stats = CoreStats()
        # Hot-path constants hoisted out of the per-record loop.
        self._issue_width = self._config.issue_width
        self._window_size = self._config.window_size
        self._block_mask = ~(self.hierarchy.l1.config.block_size_bytes - 1)
        self._mshr_entries = self.mshrs.entries
        self._mshr_capacity = self.mshrs.num_entries
        self._mshr_shift = self.mshrs._offset_bits
        self._hierarchy_access = self.hierarchy.access
        #: The trace flattened to (issue_cycles, instructions, address,
        #: is_write) tuples: the issue loop needs the issue-bandwidth cost
        #: and instruction count of each record, and precomputing them here
        #: replaces a ceiling division plus three attribute loads per record
        #: with one tuple unpack.
        issue_width = self._issue_width
        self._trace_fast = [
            (max((record.bubbles + 1 + issue_width - 1) // issue_width, 1),
             record.bubbles + 1, record.address, record.is_write)
            for record in trace]
        self._trace_length = len(trace)
        #: Core-local clock: the cycle up to which the core has issued work.
        self._core_cycle = 0
        #: Index of the next trace record to execute.
        self._next_record = 0
        #: Instructions issued so far (program-order position).
        self._issued_instructions = 0
        #: Outstanding LLC load misses, in program order.
        self._outstanding: list[_OutstandingMiss] = []
        self._finished = False
        #: Everything the issue loop needs, as one tuple: :meth:`run` is
        #: called once per unblocking completion and often issues only a
        #: couple of records, so its fixed setup cost (a dozen attribute
        #: loads) matters; one load plus an unpack is cheaper.
        self._run_hot = (self._trace_fast, self._trace_length,
                         self._mshr_entries, self._mshr_capacity,
                         self._outstanding, self._window_size,
                         self._issue_width, self._hierarchy_access,
                         self.mshrs, self._mshr_shift, self.stats)

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    @property
    def config(self) -> CoreConfig:
        """Core front-end configuration."""
        return self._config

    @property
    def finished(self) -> bool:
        """True when the whole trace has been executed."""
        return self._finished

    @property
    def core_cycle(self) -> int:
        """The core's local clock (cycles of issued work)."""
        return self._core_cycle

    @property
    def outstanding_misses(self) -> int:
        """Number of LLC load misses still waiting for data."""
        return len(self._outstanding)

    @property
    def trace_length(self) -> int:
        """Number of records in the core's trace."""
        return len(self._trace)

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------
    def run(self, now: int) -> CoreRunResult:
        """Issue work starting at cycle ``now`` until a stall or completion.

        The returned requests carry their own issue cycles (all >= ``now``);
        the caller is responsible for delivering them to the memory
        controller at those times and for calling :meth:`notify_completion`
        when each read completes.
        """
        requests = self.run_requests(now)
        if self._finished:
            return CoreRunResult(requests=requests, finished=True,
                                 stalled=False)
        return CoreRunResult(requests=requests, finished=False, stalled=True)

    def run_requests(self, now: int) -> list[IssuedRequest]:
        """Hot-path variant of :meth:`run`: returns only the issued requests.

        The simulator needs nothing else per core-run event — whether the
        core finished or stalled is observable via :attr:`finished` — so
        the ``CoreRunResult`` wrapper is built only for :meth:`run` callers.
        """
        if self._finished:
            return []
        if now > self._core_cycle:
            self._core_cycle = now
        requests: list[IssuedRequest] = []

        # The whole issue loop runs on locals (written back before every
        # return): it executes once per trace record, and both a method
        # call per record and repeated attribute loads are measurable.  The
        # stall conditions mirror :meth:`_stall_reason`; the record
        # execution mirrors the former ``_execute_record``.
        (trace, trace_length, mshr_entries, mshr_capacity, outstanding,
         window_size, issue_width, hierarchy_access, mshrs, mshr_shift,
         run_stats) = self._run_hot
        next_record = self._next_record
        core_cycle = self._core_cycle
        issued_instructions = self._issued_instructions
        # Statistics accumulate in locals and flush once after the loop.
        new_instructions = 0
        new_memory_instructions = 0
        new_writebacks = 0
        new_miss_loads = 0
        new_miss_stores = 0
        stalled = False
        while next_record < trace_length:
            if len(mshr_entries) >= mshr_capacity:
                stalled = True
                break
            if outstanding:
                oldest = outstanding[0]
                if oldest.blocks_window \
                        and (issued_instructions
                             - oldest.instruction_position) >= window_size:
                    stalled = True
                    break
            issue_cycles, instructions, address, is_write = \
                trace[next_record]
            next_record += 1

            core_cycle += issue_cycles
            issued_instructions += instructions
            new_instructions += instructions
            new_memory_instructions += 1

            access = hierarchy_access(address, is_write)
            core_cycle += access.exposed_latency

            for writeback_address in access.writebacks:
                new_writebacks += 1
                requests.append(IssuedRequest(core_cycle, writeback_address,
                                              True))
            if not access.needs_memory:
                continue

            # Inline MSHRFile.allocate: the loop head guarantees a free
            # entry, so the full-file error path cannot trigger here.
            block = address >> mshr_shift
            merged_count = mshr_entries.get(block)
            if merged_count is None:
                mshr_entries[block] = 1
                mshrs.allocations += 1
                new_entry = True
            else:
                mshr_entries[block] = merged_count + 1
                mshrs.merges += 1
                new_entry = False
            if is_write:
                new_miss_stores += 1
            else:
                new_miss_loads += 1
            if new_entry:
                requests.append(IssuedRequest(core_cycle, address, False))
                outstanding.append(_OutstandingMiss(address,
                                                    issued_instructions,
                                                    not is_write))
            elif not is_write:
                # The miss merged into an existing MSHR; the load still
                # blocks the window on the earlier request's completion.
                outstanding.append(_OutstandingMiss(address,
                                                    issued_instructions,
                                                    True))
        self._next_record = next_record
        self._core_cycle = core_cycle
        self._issued_instructions = issued_instructions
        run_stats.instructions += new_instructions
        run_stats.memory_instructions += new_memory_instructions
        run_stats.writebacks += new_writebacks
        run_stats.llc_miss_loads += new_miss_loads
        run_stats.llc_miss_stores += new_miss_stores
        if not stalled and not outstanding:
            self._retire()
        return requests

    def notify_completion(self, address: int, completion_cycle: int) -> bool:
        """A read request issued by this core completed.

        Returns True when the core can now make progress (the caller should
        schedule a :meth:`run` at ``completion_cycle``).  The core's clock is
        only advanced when this completion is what the core was waiting for;
        a younger miss returning early does not release an older window
        stall.
        """
        block_mask = self._block_mask
        block = address & block_mask
        outstanding = self._outstanding
        kept = [miss for miss in outstanding
                if (miss.address & block_mask) != block]
        if len(kept) == len(outstanding):
            return False
        # Stall checks inline (mirroring _stall_reason): once against the
        # state before the completion is applied, once after.
        mshr_entries = self._mshr_entries
        window_size = self._window_size
        oldest = outstanding[0]
        stalled_before = len(mshr_entries) >= self._mshr_capacity \
            or (oldest.blocks_window
                and (self._issued_instructions
                     - oldest.instruction_position) >= window_size)
        # In-place so aliases of the outstanding list stay valid.
        outstanding[:] = kept
        # Inline MSHRFile.release (the entry must exist: an outstanding
        # miss for the block implies a live MSHR).
        del mshr_entries[address >> self._mshr_shift]

        if kept:
            oldest = kept[0]
            can_progress = not (oldest.blocks_window
                                and (self._issued_instructions
                                     - oldest.instruction_position)
                                >= window_size)
        else:
            can_progress = True
        if can_progress and completion_cycle > self._core_cycle:
            # The core could not issue past this point until the data came
            # back; charge the wait as stall time and advance the clock.
            stall = completion_cycle - self._core_cycle
            if stalled_before and self.mshrs.occupancy + 1 >= self.mshrs.capacity:
                self.stats.stall_cycles_mshr += stall
            else:
                self.stats.stall_cycles_window += stall
            self._core_cycle = completion_cycle
        if self._next_record >= self._trace_length and not self._outstanding:
            self._retire()
        return can_progress and not self._finished

    # ------------------------------------------------------------------
    # Internals.
    # ------------------------------------------------------------------
    def _stall_reason(self) -> str | None:
        """Why the core cannot issue the next record right now, if at all."""
        if len(self._mshr_entries) >= self._mshr_capacity:
            return "mshr"
        outstanding = self._outstanding
        if outstanding:
            oldest = outstanding[0]
            if oldest.blocks_window \
                    and (self._issued_instructions
                         - oldest.instruction_position) >= self._window_size:
                return "window"
        return None

    def _retire(self) -> None:
        self._finished = True
        self.stats.finish_cycle = self._core_cycle
