"""Trace-driven core model.

Each core replays a trace of :class:`~repro.workloads.trace.TraceRecord`
entries.  A record describes a burst of non-memory instructions (``bubbles``)
followed by one memory instruction.  The core model enforces the paper's
Table 1 front-end constraints:

* up to ``issue_width`` instructions issue per cycle;
* at most ``window_size`` instructions may be in flight past the oldest
  unresolved LLC load miss (the 256-entry instruction window);
* at most ``mshr_entries`` cache-block misses may be outstanding at once.

Cache hits are (mostly) hidden by out-of-order execution; only LLC misses
interact with the memory system.  The model is event-driven: the simulator
calls :meth:`TraceCore.run` to let the core issue work until it must stall
or finishes, and :meth:`TraceCore.notify_completion` when one of its memory
requests completes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cpu.hierarchy import CacheHierarchy, HierarchyConfig
from repro.cpu.mshr import MSHRFile
from repro.workloads.trace import TraceRecord


@dataclass(frozen=True)
class CoreConfig:
    """Core front-end parameters (paper Table 1 defaults)."""

    issue_width: int = 3
    window_size: int = 256
    mshr_entries: int = 8
    hierarchy: HierarchyConfig = field(default_factory=HierarchyConfig)


@dataclass
class CoreStats:
    """Per-core statistics gathered during simulation."""

    instructions: int = 0
    memory_instructions: int = 0
    llc_miss_loads: int = 0
    llc_miss_stores: int = 0
    writebacks: int = 0
    stall_cycles_window: int = 0
    stall_cycles_mshr: int = 0
    finish_cycle: int = 0

    def ipc(self) -> float:
        """Instructions per cycle over the whole run."""
        if self.finish_cycle <= 0:
            return 0.0
        return self.instructions / self.finish_cycle


@dataclass
class _OutstandingMiss:
    """A load miss the core is still waiting on."""

    address: int
    #: Instruction count (position in program order) at which it was issued.
    instruction_position: int
    #: True when the window cannot retire past this miss (demand loads).
    blocks_window: bool


@dataclass
class IssuedRequest:
    """A memory request the core wants to send, with its issue time."""

    issue_cycle: int
    address: int
    is_write: bool


@dataclass
class CoreRunResult:
    """Outcome of one :meth:`TraceCore.run` call."""

    #: Memory requests issued during this run, in issue order.
    requests: list[IssuedRequest]
    #: True when the core has executed its entire trace.
    finished: bool
    #: True when the core stopped because it is waiting for a completion.
    stalled: bool


class TraceCore:
    """One trace-driven core."""

    def __init__(self, core_id: int, trace: list[TraceRecord],
                 config: CoreConfig | None = None):
        self.core_id = core_id
        self._trace = trace
        self._config = config or CoreConfig()
        self.hierarchy = CacheHierarchy(self._config.hierarchy)
        self.mshrs = MSHRFile(self._config.mshr_entries)
        self.stats = CoreStats()
        #: Core-local clock: the cycle up to which the core has issued work.
        self._core_cycle = 0
        #: Index of the next trace record to execute.
        self._next_record = 0
        #: Instructions issued so far (program-order position).
        self._issued_instructions = 0
        #: Outstanding LLC load misses, in program order.
        self._outstanding: list[_OutstandingMiss] = []
        self._finished = False

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    @property
    def config(self) -> CoreConfig:
        """Core front-end configuration."""
        return self._config

    @property
    def finished(self) -> bool:
        """True when the whole trace has been executed."""
        return self._finished

    @property
    def core_cycle(self) -> int:
        """The core's local clock (cycles of issued work)."""
        return self._core_cycle

    @property
    def outstanding_misses(self) -> int:
        """Number of LLC load misses still waiting for data."""
        return len(self._outstanding)

    @property
    def trace_length(self) -> int:
        """Number of records in the core's trace."""
        return len(self._trace)

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------
    def run(self, now: int) -> CoreRunResult:
        """Issue work starting at cycle ``now`` until a stall or completion.

        The returned requests carry their own issue cycles (all >= ``now``);
        the caller is responsible for delivering them to the memory
        controller at those times and for calling :meth:`notify_completion`
        when each read completes.
        """
        if self._finished:
            return CoreRunResult(requests=[], finished=True, stalled=False)
        self._core_cycle = max(self._core_cycle, now)
        requests: list[IssuedRequest] = []

        while self._next_record < len(self._trace):
            stall_reason = self._stall_reason()
            if stall_reason is not None:
                return CoreRunResult(requests=requests, finished=False,
                                     stalled=True)
            record = self._trace[self._next_record]
            self._next_record += 1
            self._execute_record(record, requests)

        if not self._outstanding:
            self._retire()
            return CoreRunResult(requests=requests, finished=True,
                                 stalled=False)
        return CoreRunResult(requests=requests, finished=False, stalled=True)

    def notify_completion(self, address: int, completion_cycle: int) -> bool:
        """A read request issued by this core completed.

        Returns True when the core can now make progress (the caller should
        schedule a :meth:`run` at ``completion_cycle``).  The core's clock is
        only advanced when this completion is what the core was waiting for;
        a younger miss returning early does not release an older window
        stall.
        """
        block_mask = ~(self.hierarchy.l1.config.block_size_bytes - 1)
        block = address & block_mask
        matched = [miss for miss in self._outstanding
                   if (miss.address & block_mask) == block]
        if not matched:
            return False
        stalled_before = self._stall_reason() is not None
        for miss in matched:
            self._outstanding.remove(miss)
        self.mshrs.release(address)

        can_progress = self._stall_reason() is None
        if can_progress and completion_cycle > self._core_cycle:
            # The core could not issue past this point until the data came
            # back; charge the wait as stall time and advance the clock.
            stall = completion_cycle - self._core_cycle
            if stalled_before and self.mshrs.occupancy + 1 >= self.mshrs.capacity:
                self.stats.stall_cycles_mshr += stall
            else:
                self.stats.stall_cycles_window += stall
            self._core_cycle = completion_cycle
        if self._next_record >= len(self._trace) and not self._outstanding:
            self._retire()
        return can_progress and not self._finished

    # ------------------------------------------------------------------
    # Internals.
    # ------------------------------------------------------------------
    def _stall_reason(self) -> str | None:
        """Why the core cannot issue the next record right now, if at all."""
        if self.mshrs.is_full():
            return "mshr"
        if self._outstanding:
            oldest = self._outstanding[0]
            in_flight = self._issued_instructions - oldest.instruction_position
            if oldest.blocks_window and in_flight >= self._config.window_size:
                return "window"
        return None

    def _execute_record(self, record: TraceRecord,
                        requests: list[IssuedRequest]) -> None:
        """Issue one trace record: its bubbles plus its memory instruction."""
        issue_cycles = (record.bubbles + 1 + self._config.issue_width - 1) \
            // self._config.issue_width
        self._core_cycle += max(issue_cycles, 1)
        self._issued_instructions += record.bubbles + 1
        self.stats.instructions += record.bubbles + 1
        self.stats.memory_instructions += 1

        access = self.hierarchy.access(record.address, record.is_write)
        self._core_cycle += access.exposed_latency

        for writeback_address in access.writebacks:
            self.stats.writebacks += 1
            requests.append(IssuedRequest(issue_cycle=self._core_cycle,
                                          address=writeback_address,
                                          is_write=True))
        if not access.needs_memory:
            return

        new_entry = self.mshrs.allocate(record.address)
        if record.is_write:
            self.stats.llc_miss_stores += 1
        else:
            self.stats.llc_miss_loads += 1
        if new_entry:
            requests.append(IssuedRequest(issue_cycle=self._core_cycle,
                                          address=record.address,
                                          is_write=False))
            self._outstanding.append(_OutstandingMiss(
                address=record.address,
                instruction_position=self._issued_instructions,
                blocks_window=not record.is_write))
        elif not record.is_write:
            # The miss merged into an existing MSHR; the load still blocks
            # the window on the earlier request's completion.
            self._outstanding.append(_OutstandingMiss(
                address=record.address,
                instruction_position=self._issued_instructions,
                blocks_window=True))

    def _retire(self) -> None:
        self._finished = True
        self.stats.finish_cycle = self._core_cycle
