"""Set-associative cache model.

A straightforward write-back, write-allocate, LRU cache used for the L1, L2,
and last-level caches of the simulated cores.  Only hit/miss behaviour and
dirty evictions are modelled — the data itself never exists, because the
simulator only needs addresses and timing.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of one cache level."""

    #: Total capacity in bytes.
    size_bytes: int
    #: Associativity (ways per set).
    associativity: int
    #: Cache block size in bytes.
    block_size_bytes: int = 64
    #: Access latency in CPU cycles charged on a hit at this level.
    hit_latency_cycles: int = 0

    @property
    def num_blocks(self) -> int:
        """Total number of blocks the cache can hold."""
        return self.size_bytes // self.block_size_bytes

    @property
    def num_sets(self) -> int:
        """Number of sets."""
        return max(1, self.num_blocks // self.associativity)

    def validate(self) -> None:
        """Raise ``ValueError`` for impossible geometries."""
        if self.size_bytes <= 0 or self.associativity <= 0:
            raise ValueError("cache size and associativity must be positive")
        if self.block_size_bytes <= 0 or \
                self.block_size_bytes & (self.block_size_bytes - 1):
            raise ValueError("block size must be a positive power of two")
        if self.size_bytes % (self.associativity * self.block_size_bytes):
            raise ValueError(
                "cache size must be a multiple of associativity x block size")


@dataclass
class CacheAccessResult:
    """Outcome of one cache access."""

    hit: bool
    #: Block-aligned address of a dirty block evicted by this access, if any.
    writeback_address: int | None = None


class SetAssociativeCache:
    """Write-back, write-allocate, LRU set-associative cache."""

    def __init__(self, config: CacheConfig):
        config.validate()
        self._config = config
        self._offset_bits = config.block_size_bytes.bit_length() - 1
        self._num_sets = config.num_sets
        # Each set is an OrderedDict mapping block tag -> dirty flag, ordered
        # from least to most recently used.
        self._sets: list[OrderedDict[int, bool]] = [
            OrderedDict() for _ in range(self._num_sets)]
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    @property
    def config(self) -> CacheConfig:
        """Cache geometry and latency."""
        return self._config

    def _locate(self, address: int) -> tuple[int, int]:
        block = address >> self._offset_bits
        return block % self._num_sets, block

    def access(self, address: int, is_write: bool) -> CacheAccessResult:
        """Look up (and on a miss, allocate) the block holding ``address``."""
        set_index, block = self._locate(address)
        cache_set = self._sets[set_index]
        if block in cache_set:
            self.hits += 1
            dirty = cache_set.pop(block)
            cache_set[block] = dirty or is_write
            return CacheAccessResult(hit=True)

        self.misses += 1
        writeback: int | None = None
        if len(cache_set) >= self._config.associativity:
            victim_block, victim_dirty = cache_set.popitem(last=False)
            if victim_dirty:
                self.writebacks += 1
                writeback = victim_block << self._offset_bits
        cache_set[block] = is_write
        return CacheAccessResult(hit=False, writeback_address=writeback)

    def contains(self, address: int) -> bool:
        """Return True when the block holding ``address`` is resident."""
        set_index, block = self._locate(address)
        return block in self._sets[set_index]

    def invalidate(self, address: int) -> bool:
        """Drop the block holding ``address``; returns True if it was dirty."""
        set_index, block = self._locate(address)
        return bool(self._sets[set_index].pop(block, False))

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses that hit."""
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.hits / total

    def occupancy(self) -> int:
        """Number of resident blocks."""
        return sum(len(cache_set) for cache_set in self._sets)
