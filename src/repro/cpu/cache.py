"""Set-associative cache model.

A straightforward write-back, write-allocate, LRU cache used for the L1, L2,
and last-level caches of the simulated cores.  Only hit/miss behaviour and
dirty evictions are modelled — the data itself never exists, because the
simulator only needs addresses and timing.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of one cache level."""

    #: Total capacity in bytes.
    size_bytes: int
    #: Associativity (ways per set).
    associativity: int
    #: Cache block size in bytes.
    block_size_bytes: int = 64
    #: Access latency in CPU cycles charged on a hit at this level.
    hit_latency_cycles: int = 0

    @property
    def num_blocks(self) -> int:
        """Total number of blocks the cache can hold."""
        return self.size_bytes // self.block_size_bytes

    @property
    def num_sets(self) -> int:
        """Number of sets."""
        return max(1, self.num_blocks // self.associativity)

    def validate(self) -> None:
        """Raise ``ValueError`` for impossible geometries."""
        if self.size_bytes <= 0 or self.associativity <= 0:
            raise ValueError("cache size and associativity must be positive")
        if self.block_size_bytes <= 0 or \
                self.block_size_bytes & (self.block_size_bytes - 1):
            raise ValueError("block size must be a positive power of two")
        if self.size_bytes % (self.associativity * self.block_size_bytes):
            raise ValueError(
                "cache size must be a multiple of associativity x block size")


@dataclass(frozen=True, slots=True)
class CacheAccessResult:
    """Outcome of one cache access.

    Frozen so the shared hit/clean-miss singletons below cannot be
    corrupted by a caller; fresh instances are only built on the rare
    dirty-writeback miss, where the frozen-init cost is irrelevant.
    """

    hit: bool
    #: Block-aligned address of a dirty block evicted by this access, if any.
    writeback_address: int | None = None


#: Shared results for the two outcomes that carry no per-access data (every
#: hit, and every miss without a dirty eviction).  Callers treat access
#: results as read-only, so one instance each serves the whole simulation
#: instead of allocating an object per cache lookup.
_HIT = CacheAccessResult(hit=True)
_CLEAN_MISS = CacheAccessResult(hit=False)

#: Sentinel distinguishing "absent" from a stored False dirty flag.
_ABSENT = object()


class SetAssociativeCache:
    """Write-back, write-allocate, LRU set-associative cache."""

    __slots__ = ('_config', '_offset_bits', '_num_sets', '_associativity',
                 '_set_mask', '_sets', 'hits', 'misses', 'writebacks')

    def __init__(self, config: CacheConfig):
        config.validate()
        self._config = config
        self._offset_bits = config.block_size_bytes.bit_length() - 1
        self._num_sets = config.num_sets
        self._associativity = config.associativity
        #: Bit mask for the set index when the set count is a power of two
        #: (an AND is cheaper than the general modulo), else None.
        self._set_mask = self._num_sets - 1 \
            if self._num_sets & (self._num_sets - 1) == 0 else None
        # Each set is a plain dict mapping block tag -> dirty flag, ordered
        # from least to most recently used.  Plain dicts preserve insertion
        # order and their pop/reinsert (LRU bump) and first-key eviction are
        # measurably faster than OrderedDict's linked-list maintenance on
        # this, the single hottest call site of the CPU model.
        self._sets: list[dict[int, bool]] = [
            {} for _ in range(self._num_sets)]
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    @property
    def config(self) -> CacheConfig:
        """Cache geometry and latency."""
        return self._config

    def _locate(self, address: int) -> tuple[int, int]:
        block = address >> self._offset_bits
        return block % self._num_sets, block

    def access(self, address: int, is_write: bool) -> CacheAccessResult:
        """Look up (and on a miss, allocate) the block holding ``address``.

        The returned result is shared for hits and clean misses — treat it
        as read-only.  KEEP IN SYNC with the fused per-level copies in
        :meth:`repro.cpu.hierarchy.CacheHierarchy.access`, which inline
        this algorithm for L1/L2/LLC on the full-miss hot path.
        """
        block = address >> self._offset_bits
        set_mask = self._set_mask
        cache_set = self._sets[block & set_mask if set_mask is not None
                               else block % self._num_sets]
        dirty = cache_set.get(block, _ABSENT)
        if dirty is not _ABSENT:
            self.hits += 1
            # LRU bump: skip the pop/reinsert when the block is already the
            # most recently used (assignment to an existing key does not
            # change dict order, so the dirty update stays in place).
            if next(reversed(cache_set)) == block:
                if is_write and not dirty:
                    cache_set[block] = True
            else:
                del cache_set[block]
                cache_set[block] = dirty or is_write
            return _HIT

        self.misses += 1
        writeback: int | None = None
        if len(cache_set) >= self._associativity:
            victim_block = next(iter(cache_set))
            victim_dirty = cache_set.pop(victim_block)
            if victim_dirty:
                self.writebacks += 1
                writeback = victim_block << self._offset_bits
        cache_set[block] = is_write
        if writeback is None:
            return _CLEAN_MISS
        return CacheAccessResult(hit=False, writeback_address=writeback)

    def contains(self, address: int) -> bool:
        """Return True when the block holding ``address`` is resident."""
        set_index, block = self._locate(address)
        return block in self._sets[set_index]

    def invalidate(self, address: int) -> bool:
        """Drop the block holding ``address``; returns True if it was dirty."""
        set_index, block = self._locate(address)
        return bool(self._sets[set_index].pop(block, False))

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses that hit."""
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.hits / total

    def occupancy(self) -> int:
        """Number of resident blocks."""
        return sum(len(cache_set) for cache_set in self._sets)
