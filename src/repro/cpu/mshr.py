"""Miss-status holding registers (MSHRs).

Each core has a small number of MSHRs (8 in the paper's Table 1) limiting
how many cache-block misses can be outstanding to the memory system at once.
Misses to a block that already has an MSHR allocated are merged into the
existing entry rather than consuming a new one.
"""

from __future__ import annotations


class MSHRFile:
    """Outstanding-miss tracking for one core."""

    __slots__ = ('num_entries', '_offset_bits', 'entries', 'allocations', 'merges')

    def __init__(self, num_entries: int, block_size_bytes: int = 64):
        if num_entries <= 0:
            raise ValueError("an MSHR file needs at least one entry")
        if block_size_bytes <= 0 or block_size_bytes & (block_size_bytes - 1):
            raise ValueError("block size must be a positive power of two")
        self.num_entries = num_entries
        self._offset_bits = block_size_bytes.bit_length() - 1
        #: Map from block address to the number of merged misses.  Public so
        #: the core's stall check can test fullness inline without a method
        #: call per issued record; treat as read-only outside this class.
        self.entries: dict[int, int] = {}
        self.allocations = 0
        self.merges = 0

    @property
    def capacity(self) -> int:
        """Number of MSHR entries."""
        return self.num_entries

    @property
    def occupancy(self) -> int:
        """Entries currently allocated."""
        return len(self.entries)

    def is_full(self) -> bool:
        """True when no new block miss can be tracked."""
        return len(self.entries) >= self.num_entries

    def _block(self, address: int) -> int:
        return address >> self._offset_bits

    def has_entry(self, address: int) -> bool:
        """True when a miss to this block is already outstanding."""
        return self._block(address) in self.entries

    def allocate(self, address: int) -> bool:
        """Track a miss to ``address``.

        Returns True when a new entry was allocated (a new memory request
        must be issued) and False when the miss merged into an existing
        entry.  Raises ``RuntimeError`` when a new entry is needed but the
        MSHR file is full — callers must check :meth:`is_full` first.
        """
        block = self._block(address)
        if block in self.entries:
            self.entries[block] += 1
            self.merges += 1
            return False
        if self.is_full():
            raise RuntimeError("MSHR file is full")
        self.entries[block] = 1
        self.allocations += 1
        return True

    def release(self, address: int) -> int:
        """Free the entry for ``address``; returns the merged miss count."""
        block = self._block(address)
        if block not in self.entries:
            raise KeyError(f"no MSHR entry for block {block:#x}")
        return self.entries.pop(block)
