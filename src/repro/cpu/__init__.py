"""Processor-side substrate: cores, MSHRs, and the cache hierarchy.

The paper drives its DRAM simulator with Pin-collected application traces
fed through an in-house processor model (3-wide cores, 256-entry instruction
windows, 8 MSHRs per core, and a three-level cache hierarchy).  This package
provides the equivalent substrate for the reproduction:

* :mod:`repro.cpu.cache` — set-associative, write-back, write-allocate
  caches with LRU replacement.
* :mod:`repro.cpu.hierarchy` — the per-core L1/L2/LLC stack, producing
  memory requests for LLC misses and dirty writebacks.
* :mod:`repro.cpu.mshr` — miss-status holding registers limiting the number
  of outstanding misses per core.
* :mod:`repro.cpu.core` — the trace-driven core model with issue-width and
  instruction-window constraints.
"""

from repro.cpu.cache import CacheConfig, SetAssociativeCache
from repro.cpu.core import CoreConfig, CoreStats, TraceCore
from repro.cpu.hierarchy import CacheHierarchy, HierarchyAccess, HierarchyConfig
from repro.cpu.mshr import MSHRFile

__all__ = [
    "CacheConfig",
    "CacheHierarchy",
    "CoreConfig",
    "CoreStats",
    "HierarchyAccess",
    "HierarchyConfig",
    "MSHRFile",
    "SetAssociativeCache",
    "TraceCore",
]
