"""Circuit-level analysis of the RELOC operation (paper Section 4.2).

The paper determines the RELOC latency with SPICE simulations of the DRAM
cell array (22 nm PTM transistor models, 10^8 Monte-Carlo iterations with a
±5 % parameter margin).  SPICE and the proprietary device models are not
available here, so this package substitutes a lumped-RC charge-sharing model
of the structures RELOC exercises — the source local row buffer driving the
global bitlines and global row buffer, which in turn drive the precharged
destination bitlines and destination sense amplifiers — with the same
Monte-Carlo variation methodology.  The outputs consumed by the rest of the
system are the same as the paper's: a worst-case intrinsic RELOC latency
(sub-nanosecond), a guardbanded timing parameter (1 ns), and the end-to-end
per-block relocation latency (~63.5 ns).
"""

from repro.circuit.bitline import BitlineParams, ChargeSharingModel
from repro.circuit.reloc_timing import (RelocTimingAnalysis,
                                        analyze_reloc_timing)

__all__ = [
    "BitlineParams",
    "ChargeSharingModel",
    "RelocTimingAnalysis",
    "analyze_reloc_timing",
]
