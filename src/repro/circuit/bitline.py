"""Lumped-RC model of the RELOC charge-sharing and sensing path.

The RELOC operation (paper Figure 5) connects a fully-driven source local
row buffer (LRB) column to a precharged destination column through the
global row buffer (GRB).  Three electrical phases determine its latency:

1. charge sharing between the driven source bitlines and the precharged
   destination bitlines through the global bitlines, which perturbs the
   destination bitline voltage away from Vdd/2;
2. the destination sense amplifier detecting the perturbation once it
   exceeds its offset/sensing threshold; and
3. the GRB (a high-gain, high-drive-strength amplifier) and the destination
   sense amplifier restoring the destination bitlines to full rail.

Each phase is modelled with first-order RC dynamics over lumped bitline
capacitances and driver resistances.  The parameter values are representative
of a 22 nm DRAM process; Monte-Carlo variation (±5 % on every parameter, as
in the paper) produces the worst-case latency that the DRAM timing parameter
must cover.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, replace


@dataclass(frozen=True)
class BitlineParams:
    """Electrical parameters of the RELOC path (22 nm-class values)."""

    #: Supply voltage (V).
    vdd: float = 1.2
    #: Local bitline capacitance (F) — long bitline, ~512 cells.
    local_bitline_cap: float = 85e-15
    #: Global bitline capacitance (F) — metal wire spanning the bank.
    global_bitline_cap: float = 45e-15
    #: Global row buffer (sense amplifier) input/output capacitance (F).
    grb_cap: float = 10e-15
    #: Effective resistance of the source LRB driver (ohms).
    lrb_drive_resistance: float = 4.5e3
    #: Effective resistance of the GRB driver (ohms) — higher drive strength
    #: (lower resistance) than an LRB sense amplifier.
    grb_drive_resistance: float = 1.7e3
    #: Resistance of the global bitline wire (ohms).
    global_bitline_resistance: float = 1.5e3
    #: Destination sense amplifier offset: minimum differential voltage (V)
    #: it must see before it can reliably start amplifying.
    sense_threshold: float = 0.05
    #: Fraction of Vdd the destination bitline must reach to be considered
    #: fully restored (stable state that the destination ACTIVATE latches).
    restore_level: float = 0.95

    def perturbed(self, rng: random.Random, margin: float) -> "BitlineParams":
        """Return a copy with every parameter varied uniformly by ±margin."""
        def vary(value: float) -> float:
            return value * (1.0 + rng.uniform(-margin, margin))

        return replace(
            self,
            vdd=vary(self.vdd),
            local_bitline_cap=vary(self.local_bitline_cap),
            global_bitline_cap=vary(self.global_bitline_cap),
            grb_cap=vary(self.grb_cap),
            lrb_drive_resistance=vary(self.lrb_drive_resistance),
            grb_drive_resistance=vary(self.grb_drive_resistance),
            global_bitline_resistance=vary(self.global_bitline_resistance),
            sense_threshold=vary(self.sense_threshold),
            # The restore level is a design constant, not a device parameter.
            restore_level=self.restore_level,
        )


@dataclass(frozen=True)
class RelocPhases:
    """Latency of each electrical phase of one RELOC, in nanoseconds."""

    charge_sharing_ns: float
    sensing_ns: float
    restore_ns: float

    @property
    def total_ns(self) -> float:
        """Total intrinsic RELOC latency."""
        return self.charge_sharing_ns + self.sensing_ns + self.restore_ns


class ChargeSharingModel:
    """First-order RC model of the RELOC data movement."""

    def __init__(self, params: BitlineParams | None = None):
        self._params = params or BitlineParams()

    @property
    def params(self) -> BitlineParams:
        """Electrical parameters of the modelled path."""
        return self._params

    def simulate(self, params: BitlineParams | None = None) -> RelocPhases:
        """Compute the phase latencies for one parameter set."""
        p = params or self._params
        half_vdd = p.vdd / 2.0

        # Phase 1: charge sharing.  The source bitline (at Vdd) shares charge
        # with the destination bitline (precharged to Vdd/2) through the
        # global bitline.  The final shared voltage exceeds Vdd/2 because the
        # source side is driven; the time constant is set by the series
        # resistance of the path and the destination-side capacitance.
        series_resistance = (p.lrb_drive_resistance
                             + p.global_bitline_resistance)
        shared_cap = p.global_bitline_cap + p.grb_cap + p.local_bitline_cap
        tau_share = series_resistance * shared_cap
        source_cap = p.local_bitline_cap
        final_delta = (p.vdd - half_vdd) * source_cap / (source_cap
                                                         + shared_cap)
        if final_delta <= p.sense_threshold:
            # The perturbation can never reach the sensing threshold: the
            # relocation would fail.  Report an effectively infinite latency
            # so that callers notice.
            return RelocPhases(charge_sharing_ns=math.inf, sensing_ns=math.inf,
                               restore_ns=math.inf)
        # Time for the destination perturbation to cross the threshold:
        # delta(t) = final_delta * (1 - exp(-t / tau)).
        t_share = -tau_share * math.log(1.0 - p.sense_threshold / final_delta)

        # Phase 2: sensing.  The destination sense amplifier and the GRB
        # (with its stronger drive) amplify the perturbation from the
        # threshold towards half swing.  Modelled as an RC charge through the
        # GRB driver onto the destination bitline capacitance.
        tau_sense = p.grb_drive_resistance * (p.local_bitline_cap + p.grb_cap)
        t_sense = tau_sense * math.log(half_vdd / p.sense_threshold) * 0.5

        # Phase 3: restore.  Drive the destination bitline from half swing to
        # the restore level so the following ACTIVATE latches a stable value.
        tau_restore = p.grb_drive_resistance * p.local_bitline_cap
        t_restore = -tau_restore * math.log(1.0 - p.restore_level) * 0.25

        to_ns = 1e9
        return RelocPhases(charge_sharing_ns=t_share * to_ns,
                           sensing_ns=t_sense * to_ns,
                           restore_ns=t_restore * to_ns)

    def monte_carlo(self, iterations: int, margin: float = 0.05,
                    seed: int = 0) -> list[RelocPhases]:
        """Run a Monte-Carlo sweep with ±``margin`` parameter variation."""
        if iterations <= 0:
            raise ValueError("iterations must be positive")
        rng = random.Random(seed)
        return [self.simulate(self._params.perturbed(rng, margin))
                for _ in range(iterations)]
