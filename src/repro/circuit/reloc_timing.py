"""RELOC timing analysis (the reproduction of paper Section 4.2).

Combines the lumped-RC charge-sharing model with the Monte-Carlo variation
methodology of the paper to produce:

* the worst-case intrinsic RELOC latency across parameter variation,
* the guardbanded RELOC timing parameter (worst case x (1 + guardband),
  rounded up to the next 0.25 ns, matching how vendors quantise timing
  parameters), and
* the end-to-end latency of relocating one cache block, which adds the
  surrounding ACTIVATE / ACTIVATE / PRECHARGE commands exactly as the
  paper's 63.5 ns accounting does.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.circuit.bitline import BitlineParams, ChargeSharingModel
from repro.dram.timings import DRAMTimings, derive_fast_timings

#: Guardband applied on top of the worst-case simulated latency (the paper
#: adds a conservative 43 %).
DEFAULT_GUARDBAND = 0.43


@dataclass(frozen=True)
class RelocTimingAnalysis:
    """Results of the RELOC timing study."""

    #: Mean intrinsic RELOC latency across Monte-Carlo iterations (ns).
    mean_latency_ns: float
    #: Worst-case intrinsic RELOC latency across iterations (ns).
    worst_case_latency_ns: float
    #: Guardband fraction applied.
    guardband: float
    #: The guardbanded RELOC timing parameter (ns).
    guardbanded_latency_ns: float
    #: End-to-end latency of relocating one block: ACTIVATE(source, tRAS) +
    #: RELOC + ACTIVATE(destination, tRCD) + PRECHARGE (ns).
    end_to_end_block_ns: float
    #: Same, but with the source row already open (the FIGCache miss path).
    end_to_end_block_open_row_ns: float
    #: Number of Monte-Carlo iterations analysed.
    iterations: int
    #: Fraction of iterations in which RELOC completed correctly (the
    #: perturbation reached the destination sense threshold).
    success_rate: float


def _quantise_up(value_ns: float, step_ns: float = 0.25) -> float:
    """Round a latency up to the next timing-parameter quantum."""
    return math.ceil(value_ns / step_ns) * step_ns


def analyze_reloc_timing(iterations: int = 2000,
                         margin: float = 0.05,
                         guardband: float = DEFAULT_GUARDBAND,
                         params: BitlineParams | None = None,
                         timings: DRAMTimings | None = None,
                         seed: int = 0) -> RelocTimingAnalysis:
    """Run the Monte-Carlo RELOC timing study.

    ``iterations`` defaults to a laptop-friendly count; the paper runs 10^8
    SPICE iterations, which a pure-Python RC model does not need because its
    worst case over the ±``margin`` uniform variation converges much faster.
    """
    model = ChargeSharingModel(params)
    results = model.monte_carlo(iterations, margin=margin, seed=seed)
    finite = [phases.total_ns for phases in results
              if math.isfinite(phases.total_ns)]
    if not finite:
        raise ValueError("RELOC failed in every Monte-Carlo iteration; "
                         "the electrical parameters are not viable")
    worst = max(finite)
    mean = sum(finite) / len(finite)
    guardbanded = _quantise_up(worst * (1.0 + guardband))

    base_timings = timings or DRAMTimings()
    fast = derive_fast_timings(base_timings)
    # End-to-end accounting per Section 4.2: the destination is a fast
    # subarray in FIGCache-Fast; with slow source and destination this is
    # tRAS + tRELOC + tRCD + tRP = 35 + 1 + 13.75 + 13.75 = 63.5 ns.
    end_to_end = (base_timings.tras_ns + guardbanded
                  + base_timings.trcd_ns + base_timings.trp_ns)
    end_to_end_open = guardbanded + fast.trcd_ns + fast.trp_ns

    return RelocTimingAnalysis(
        mean_latency_ns=mean,
        worst_case_latency_ns=worst,
        guardband=guardband,
        guardbanded_latency_ns=guardbanded,
        end_to_end_block_ns=end_to_end,
        end_to_end_block_open_row_ns=end_to_end_open,
        iterations=iterations,
        success_rate=len(finite) / len(results),
    )
