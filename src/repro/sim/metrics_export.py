"""Unified metrics snapshot and Prometheus/JSON export.

Counters that matter for operating the system at scale already exist, but
scattered: the :class:`~repro.controller.channel_controller.ChannelController`
tracks completed requests and latencies, :meth:`ResultCache.stats` knows
cache traffic and disk occupancy, and the
:class:`~repro.experiments.engine.executor.JobExecutor` counts simulations
and CPU time.  This module collects them into one nested snapshot dict —
the health-metrics substrate the ROADMAP's simulation-as-a-service front
door will mount — and renders it two ways:

* ``json.dumps(snapshot)`` — the snapshot is JSON-ready by construction;
* :func:`to_prometheus_text` — Prometheus text exposition format, one
  ``repro_<section>_<name>`` gauge per numeric leaf.

Surfaces: ``python -m repro metrics`` (cache + host health),
``python -m repro sweep --metrics-out`` (adds executor counters from the
run), and ``python -m repro cache stats`` (routes its display through the
same cache section, so humans and scrapers read identical numbers).
"""

from __future__ import annotations

import os
import platform
from pathlib import Path

#: Bump when sections or field names change incompatibly.
METRICS_SCHEMA_VERSION = 1


# ----------------------------------------------------------------------
# Section collectors.  Each returns a flat (or one-level nested) dict of
# JSON-ready values; ``metrics_snapshot`` assembles the selected ones.
# ----------------------------------------------------------------------
def host_metrics() -> dict:
    """Host identity: enough to compare scraped numbers across machines."""
    return {
        "python_version": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count() or 1,
        "pid": os.getpid(),
    }


def cache_metrics(cache) -> dict:
    """Result-cache traffic, occupancy, and shard-layout breakdown."""
    stats = cache.stats()
    shards = 0
    if cache.persistent:
        shards = len({path.parent for path, _ in cache.index().values()
                      if path.parent != cache.directory})
    return {
        "directory": str(cache.directory) if cache.persistent else None,
        "persistent": cache.persistent,
        "hits": stats.hits,
        "misses": stats.misses,
        "stores": stats.stores,
        "memory_entries": stats.memory_entries,
        "disk_entries": stats.disk_entries,
        "disk_bytes": stats.disk_bytes,
        "disk_compressed": stats.disk_compressed,
        "disk_legacy": stats.disk_legacy,
        "decode_failures": stats.decode_failures,
        "quarantined": stats.quarantined,
        "quarantine_entries": stats.quarantine_entries,
        "shards": shards,
    }


def executor_metrics(executor) -> dict:
    """Lifetime counters of one :class:`JobExecutor`.

    Reliability counters are read with ``getattr`` defaults so executor
    replicas (the bench's PR-1 baseline) without them still export.
    """
    return {
        "workers": executor.jobs,
        "simulations_executed": executor.simulations_executed,
        "cache_hits": executor.cache_hits,
        "sim_cpu_s": executor.sim_cpu_s,
        "pool_active": executor.pool_active,
        "retries": getattr(executor, "retries", 0),
        "jobs_skipped": getattr(executor, "jobs_skipped", 0),
        "jobs_failed": getattr(executor, "jobs_failed", 0),
        "chunk_timeouts": getattr(executor, "chunk_timeouts", 0),
        "pool_respawns": getattr(executor, "pool_respawns", 0),
    }


def controller_metrics(memory_controller) -> dict:
    """Aggregated memory-controller counters across every channel."""
    completed_reads = completed_writes = total_read_latency = 0
    read_queue = write_queue = 0
    for controller in memory_controller.channel_controllers:
        counters = controller.telemetry_counters()
        completed_reads += counters["completed_reads"]
        completed_writes += counters["completed_writes"]
        total_read_latency += counters["total_read_latency"]
        read_queue += controller.read_queue_occupancy
        write_queue += controller.write_queue_occupancy
    return {
        "channels": len(memory_controller.channel_controllers),
        "completed_reads": completed_reads,
        "completed_writes": completed_writes,
        "total_read_latency_cycles": total_read_latency,
        "read_queue_occupancy": read_queue,
        "write_queue_occupancy": write_queue,
    }


def dram_metrics(counters) -> dict:
    """DRAM command counters (one :class:`CommandCounters` aggregate)."""
    return dict(counters.telemetry_counters())


def mechanism_metrics(mechanisms) -> dict:
    """Summed mechanism statistics across all channels' mechanisms."""
    totals: dict[str, int] = {}
    for mechanism in mechanisms:
        for name, value in mechanism.stats.telemetry_counters().items():
            totals[name] = totals.get(name, 0) + value
    return totals


def metrics_snapshot(executor=None, cache=None, system=None) -> dict:
    """One nested, JSON-ready snapshot of every available counter source.

    Sections are included only for the sources passed in; ``host`` and the
    schema stamp are always present.  Passing an ``executor`` implies its
    cache (unless a distinct ``cache`` is given).
    """
    snapshot: dict = {"schema": METRICS_SCHEMA_VERSION,
                      "host": host_metrics()}
    if cache is None and executor is not None:
        cache = executor.cache
    if cache is not None:
        snapshot["cache"] = cache_metrics(cache)
    if executor is not None:
        snapshot["executor"] = executor_metrics(executor)
    if system is not None:
        snapshot["controller"] = controller_metrics(system.controller)
        snapshot["dram"] = dram_metrics(system.device.total_counters())
        snapshot["mechanism"] = mechanism_metrics(system.mechanisms)
    return snapshot


# ----------------------------------------------------------------------
# Prometheus text exposition.
# ----------------------------------------------------------------------
def _sanitize(name: str) -> str:
    """Metric-name-safe identifier (Prometheus allows [a-zA-Z0-9_:])."""
    return "".join(ch if ch.isalnum() or ch == "_" else "_"
                   for ch in name)


def to_prometheus_text(snapshot: dict, prefix: str = "repro") -> str:
    """Render a snapshot's numeric leaves in Prometheus text format.

    Every numeric value at ``snapshot[section][name]`` becomes a gauge
    ``<prefix>_<section>_<name>``; booleans are rendered as 0/1 and
    non-numeric leaves (strings, None) are skipped.  Top-level scalars
    (e.g. ``schema``) export as ``<prefix>_<name>``.
    """
    lines: list[str] = []

    def emit(name: str, value) -> None:
        if isinstance(value, bool):
            value = int(value)
        if not isinstance(value, (int, float)):
            return
        metric = _sanitize(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {value}")

    for section, content in snapshot.items():
        if isinstance(content, dict):
            for name, value in content.items():
                emit(f"{prefix}_{section}_{name}", value)
        else:
            emit(f"{prefix}_{section}", content)
    return "\n".join(lines) + "\n"


def write_metrics(path: str | Path, snapshot: dict) -> Path:
    """Write a snapshot to ``path``; ``.prom`` selects Prometheus text,
    anything else JSON."""
    import json

    path = Path(path)
    if path.suffix == ".prom":
        path.write_text(to_prometheus_text(snapshot), encoding="utf-8")
    else:
        path.write_text(json.dumps(snapshot, indent=2, sort_keys=True)
                        + "\n", encoding="utf-8")
    return path
