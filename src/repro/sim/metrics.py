"""Simulation result metrics.

Collects the quantities the paper reports: per-core IPC, weighted speedup
for multiprogrammed workloads, in-DRAM cache hit rate (Figure 9), DRAM
row-buffer hit rate (Figure 10), average memory latency, and the energy
breakdown (Figure 11).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dram.counters import CommandCounters
from repro.energy.system_energy import SystemEnergyBreakdown


@dataclass
class CoreResult:
    """Per-core outcome of one simulation."""

    core_id: int
    instructions: int
    cycles: int
    llc_misses: int
    memory_instructions: int

    @property
    def ipc(self) -> float:
        """Instructions per cycle for this core."""
        if self.cycles <= 0:
            return 0.0
        return self.instructions / self.cycles

    @property
    def mpki(self) -> float:
        """LLC misses per kilo-instruction."""
        if self.instructions <= 0:
            return 0.0
        return 1000.0 * self.llc_misses / self.instructions


@dataclass
class SimulationResult:
    """Full outcome of simulating one workload on one configuration."""

    #: Configuration name (Base, FIGCache-Fast, ...).
    configuration: str
    #: Workload name.
    workload: str
    #: Per-core results, in core order.
    cores: list[CoreResult]
    #: Total simulated cycles (the longest core's finish time).
    total_cycles: int
    #: Simulated wall-clock time in nanoseconds.
    elapsed_ns: float
    #: Aggregate DRAM command counters.
    dram_counters: CommandCounters
    #: In-DRAM cache hit rate (0.0 for systems without a cache).
    in_dram_cache_hit_rate: float
    #: In-DRAM cache lookups and hits (absolute counts).
    cache_lookups: int
    cache_hits: int
    #: Mean read latency observed at the memory controller, in cycles.
    average_read_latency_cycles: float
    #: Reads and writes serviced by the memory system.
    memory_reads: int
    memory_writes: int
    #: Relocation work performed by the caching mechanism.
    relocation_operations: int
    relocation_cycles: int
    #: Energy breakdown (filled in by the system runner).
    energy: SystemEnergyBreakdown | None = None
    #: Optional extra per-experiment data.
    extra: dict = field(default_factory=dict)

    @property
    def row_buffer_hit_rate(self) -> float:
        """DRAM row-buffer hit rate over all column accesses."""
        return self.dram_counters.row_buffer_hit_rate

    @property
    def instructions(self) -> int:
        """Total instructions executed across cores."""
        return sum(core.instructions for core in self.cores)

    @property
    def ipc_sum(self) -> float:
        """Sum of per-core IPCs (throughput metric for identical cores)."""
        return sum(core.ipc for core in self.cores)

    def ipc_of(self, core_id: int) -> float:
        """IPC of one core."""
        return self.cores[core_id].ipc


def weighted_speedup(shared: SimulationResult,
                     alone_ipcs: list[float]) -> float:
    """Weighted speedup of a multiprogrammed run (Snavely & Tullsen).

    ``alone_ipcs[i]`` is core *i*'s IPC when its application runs alone on
    the baseline system.  The paper uses weighted speedup as its system
    performance metric for the eight-core workloads.
    """
    if len(alone_ipcs) != len(shared.cores):
        raise ValueError("need one alone-IPC per core")
    total = 0.0
    for core, alone in zip(shared.cores, alone_ipcs):
        if alone <= 0:
            raise ValueError("alone IPC must be positive")
        total += core.ipc / alone
    return total


def speedup_over(result: SimulationResult, baseline: SimulationResult) -> float:
    """Single-core speedup: IPC ratio against a baseline run."""
    if len(result.cores) != 1 or len(baseline.cores) != 1:
        raise ValueError("speedup_over is defined for single-core runs")
    base_ipc = baseline.cores[0].ipc
    if base_ipc <= 0:
        raise ValueError("baseline IPC must be positive")
    return result.cores[0].ipc / base_ipc
