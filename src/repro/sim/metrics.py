"""Simulation result metrics.

Collects the quantities the paper reports: per-core IPC, weighted speedup
for multiprogrammed workloads, in-DRAM cache hit rate (Figure 9), DRAM
row-buffer hit rate (Figure 10), average memory latency, and the energy
breakdown (Figure 11).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dram.counters import CommandCounters
from repro.energy.system_energy import SystemEnergyBreakdown
from repro.sim.telemetry import TelemetryResult


@dataclass
class CoreResult:
    """Per-core outcome of one simulation."""

    core_id: int
    instructions: int
    cycles: int
    llc_misses: int
    memory_instructions: int

    @property
    def ipc(self) -> float:
        """Instructions per cycle for this core."""
        if self.cycles <= 0:
            return 0.0
        return self.instructions / self.cycles

    @property
    def mpki(self) -> float:
        """LLC misses per kilo-instruction."""
        if self.instructions <= 0:
            return 0.0
        return 1000.0 * self.llc_misses / self.instructions

    def to_dict(self) -> dict:
        """JSON-serialisable form (used by the persistent result cache)."""
        return {
            "core_id": self.core_id,
            "instructions": self.instructions,
            "cycles": self.cycles,
            "llc_misses": self.llc_misses,
            "memory_instructions": self.memory_instructions,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CoreResult":
        """Rebuild a per-core result from :meth:`to_dict` output.

        Fields newer than the payload fall back to their zero defaults, so
        cached JSON written by an older code version still loads.
        """
        return cls(core_id=data["core_id"],
                   instructions=data["instructions"],
                   cycles=data["cycles"],
                   llc_misses=data.get("llc_misses", 0),
                   memory_instructions=data.get("memory_instructions", 0))


@dataclass
class SimulationResult:
    """Full outcome of simulating one workload on one configuration."""

    #: Configuration name (Base, FIGCache-Fast, ...).
    configuration: str
    #: Workload name.
    workload: str
    #: Per-core results, in core order.
    cores: list[CoreResult]
    #: Total simulated cycles (the longest core's finish time).
    total_cycles: int
    #: Simulated wall-clock time in nanoseconds.
    elapsed_ns: float
    #: Aggregate DRAM command counters.
    dram_counters: CommandCounters
    #: In-DRAM cache hit rate (0.0 for systems without a cache).
    in_dram_cache_hit_rate: float
    #: In-DRAM cache lookups and hits (absolute counts).
    cache_lookups: int
    cache_hits: int
    #: Mean read latency observed at the memory controller, in cycles.
    average_read_latency_cycles: float
    #: Reads and writes serviced by the memory system.
    memory_reads: int
    memory_writes: int
    #: Relocation work performed by the caching mechanism.
    relocation_operations: int
    relocation_cycles: int
    #: Energy breakdown (filled in by the system runner).
    energy: SystemEnergyBreakdown | None = None
    #: Telemetry section (latency distributions + epoch time series), only
    #: attached when the system configuration enables telemetry.
    telemetry: TelemetryResult | None = None
    #: Optional extra per-experiment data.
    extra: dict = field(default_factory=dict)

    @property
    def row_buffer_hit_rate(self) -> float:
        """DRAM row-buffer hit rate over all column accesses."""
        return self.dram_counters.row_buffer_hit_rate

    @property
    def instructions(self) -> int:
        """Total instructions executed across cores."""
        return sum(core.instructions for core in self.cores)

    @property
    def ipc_sum(self) -> float:
        """Sum of per-core IPCs (throughput metric for identical cores)."""
        return sum(core.ipc for core in self.cores)

    def ipc_of(self, core_id: int) -> float:
        """IPC of one core."""
        return self.cores[core_id].ipc

    def to_dict(self) -> dict:
        """JSON-serialisable form, exact to the bit for every metric.

        ``extra`` must itself be JSON-serialisable for the round trip to be
        lossless; the experiment engine never stores anything else in it.

        The ``telemetry`` key is only present when a telemetry section was
        collected: results simulated with telemetry off serialise exactly
        as they did before the telemetry subsystem existed, which is what
        keeps the pre-refactor golden fixtures comparable bit for bit.
        """
        data = {
            "configuration": self.configuration,
            "workload": self.workload,
            "cores": [core.to_dict() for core in self.cores],
            "total_cycles": self.total_cycles,
            "elapsed_ns": self.elapsed_ns,
            "dram_counters": self.dram_counters.to_dict(),
            "in_dram_cache_hit_rate": self.in_dram_cache_hit_rate,
            "cache_lookups": self.cache_lookups,
            "cache_hits": self.cache_hits,
            "average_read_latency_cycles": self.average_read_latency_cycles,
            "memory_reads": self.memory_reads,
            "memory_writes": self.memory_writes,
            "relocation_operations": self.relocation_operations,
            "relocation_cycles": self.relocation_cycles,
            "energy": self.energy.to_dict() if self.energy else None,
            "extra": self.extra,
        }
        if self.telemetry is not None:
            data["telemetry"] = self.telemetry.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "SimulationResult":
        """Rebuild a result from :meth:`to_dict` output.

        Tolerant of payloads written by *older* code versions: any field
        added after the payload was serialised falls back to its neutral
        default instead of raising ``KeyError``.  Only the identity fields
        (``configuration``, ``workload``, ``cores``, ``total_cycles``) are
        required — a payload without those does not describe a result.
        """
        from repro.energy.system_energy import SystemEnergyBreakdown

        energy = data.get("energy")
        telemetry = data.get("telemetry")
        counters = data.get("dram_counters")
        return cls(
            configuration=data["configuration"],
            workload=data["workload"],
            cores=[CoreResult.from_dict(core) for core in data["cores"]],
            total_cycles=data["total_cycles"],
            elapsed_ns=data.get("elapsed_ns", 0.0),
            dram_counters=CommandCounters.from_dict(counters)
            if counters is not None else CommandCounters(),
            in_dram_cache_hit_rate=data.get("in_dram_cache_hit_rate", 0.0),
            cache_lookups=data.get("cache_lookups", 0),
            cache_hits=data.get("cache_hits", 0),
            average_read_latency_cycles=data.get(
                "average_read_latency_cycles", 0.0),
            memory_reads=data.get("memory_reads", 0),
            memory_writes=data.get("memory_writes", 0),
            relocation_operations=data.get("relocation_operations", 0),
            relocation_cycles=data.get("relocation_cycles", 0),
            energy=SystemEnergyBreakdown.from_dict(energy) if energy
            else None,
            telemetry=TelemetryResult.from_dict(telemetry) if telemetry
            else None,
            extra=data.get("extra") or {},
        )


def weighted_speedup(shared: SimulationResult,
                     alone_ipcs: list[float]) -> float:
    """Weighted speedup of a multiprogrammed run (Snavely & Tullsen).

    ``alone_ipcs[i]`` is core *i*'s IPC when its application runs alone on
    the baseline system.  The paper uses weighted speedup as its system
    performance metric for the eight-core workloads.
    """
    if len(alone_ipcs) != len(shared.cores):
        raise ValueError("need one alone-IPC per core")
    total = 0.0
    for core, alone in zip(shared.cores, alone_ipcs):
        if alone <= 0:
            raise ValueError("alone IPC must be positive")
        total += core.ipc / alone
    return total


def speedup_over(result: SimulationResult, baseline: SimulationResult) -> float:
    """Single-core speedup: IPC ratio against a baseline run."""
    if len(result.cores) != 1 or len(baseline.cores) != 1:
        raise ValueError("speedup_over is defined for single-core runs")
    base_ipc = baseline.cores[0].ipc
    if base_ipc <= 0:
        raise ValueError("baseline IPC must be positive")
    return result.cores[0].ipc / base_ipc
