"""System configuration: the evaluated mechanisms and their DRAM setups.

The paper evaluates six configurations (Section 8): Base, LISA-VILLA,
FIGCache-Slow, FIGCache-Fast, FIGCache-Ideal, and LL-DRAM.  Each one is a
combination of a DRAM organization (how many fast subarrays exist, whether
every subarray is fast) and a caching mechanism (none, LISA-VILLA row
caching, or FIGCache with a placement option).

Configurations live in a registry (mirroring
:func:`repro.dram.standards.register_profile`): each
:class:`ConfigurationSpec` couples a mechanism factory with an optional
``prepare`` hook that adjusts the DRAM organization and mechanism configs
for that configuration.  :func:`register_configuration` adds
project-specific configurations at runtime; :data:`CONFIGURATION_NAMES` is
derived from the registry rather than hand-maintained.
:func:`make_system_config` builds the right combination by name.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, replace
from typing import Callable

from repro.baselines.base import BaseMechanism
from repro.baselines.lisa_villa import LISAVillaConfig, LISAVillaMechanism
from repro.controller.scheduler import SchedulerConfig
from repro.core.figcache import FIGCache, FIGCacheConfig
from repro.core.mechanism import CachingMechanism
from repro.cpu.core import CoreConfig
from repro.dram.config import DRAMConfig
from repro.dram.standards import get_profile
from repro.energy.dram_power import DRAMEnergyParams
from repro.sim.telemetry import DEFAULT_EPOCH_CYCLES, TelemetryConfig


@dataclass(frozen=True)
class MechanismKnobs:
    """The sensitivity knobs a configuration's ``prepare`` hook may use.

    These are the Figure 12–15 sweep parameters of
    :func:`make_system_config`; bundling them keeps the ``prepare``
    signature stable when knobs are added.
    """

    segment_blocks: int = 16
    cache_rows_per_bank: int = 64
    fast_subarrays: int = 2
    replacement_policy: str = "RowBenefit"
    insertion_threshold: int = 1


@dataclass(frozen=True)
class ConfigurationSpec:
    """One registered system configuration.

    ``prepare(dram, knobs)`` returns the possibly-adjusted
    ``(dram, figcache_config, lisa_villa_config)`` triple used to build
    the :class:`SystemConfig`; ``mechanism_factory(config)`` instantiates
    one per-channel caching mechanism for a built configuration.
    """

    name: str
    mechanism_factory: Callable[["SystemConfig"], CachingMechanism]
    prepare: Callable[[DRAMConfig, MechanismKnobs],
                      tuple[DRAMConfig, FIGCacheConfig | None,
                            LISAVillaConfig | None]] | None = None
    description: str = ""


#: Registered configurations by name, in registration (presentation)
#: order.  The paper's six configurations are registered below; runtime
#: extensions go through :func:`register_configuration`.
MECHANISM_REGISTRY: dict[str, ConfigurationSpec] = {}


def register_configuration(name: str,
                           mechanism_factory: Callable,
                           prepare: Callable | None = None,
                           description: str = "") -> ConfigurationSpec:
    """Register a system configuration (extension point).

    Mirrors :func:`repro.dram.standards.register_profile`: after
    registration the configuration is buildable with
    :func:`make_system_config`, listed by :func:`configuration_names`, and
    usable anywhere a configuration name is accepted.  Re-registering an
    existing name is rejected to keep experiment identities stable.
    """
    if name in MECHANISM_REGISTRY:
        raise ValueError(f"configuration {name!r} is already registered")
    spec = ConfigurationSpec(name=name, mechanism_factory=mechanism_factory,
                             prepare=prepare, description=description)
    MECHANISM_REGISTRY[name] = spec
    return spec


def configuration_names() -> tuple[str, ...]:
    """Every registered configuration name, in registration order."""
    return tuple(MECHANISM_REGISTRY)


# ----------------------------------------------------------------------
# The paper's six configurations (Section 8).
# ----------------------------------------------------------------------
def _prepare_ll_dram(dram, knobs):
    del knobs
    return replace(dram, all_subarrays_fast=True), None, None


def _prepare_lisa_villa(dram, knobs):
    del knobs
    lisa_config = LISAVillaConfig()
    dram = replace(
        dram,
        fast_subarrays_per_bank=lisa_config.fast_subarrays_per_bank,
        rows_per_fast_subarray=32)
    return dram, None, lisa_config


def _prepare_figcache(placement: str):
    """Build a ``prepare`` hook for one FIGCache placement option."""
    def prepare(dram, knobs):
        if placement != "slow":
            rows_per_fast = 32
            needed_fast_subarrays = max(
                knobs.fast_subarrays,
                -(-knobs.cache_rows_per_bank // rows_per_fast))  # ceiling
            dram = replace(dram,
                           fast_subarrays_per_bank=needed_fast_subarrays,
                           rows_per_fast_subarray=rows_per_fast)
        figcache_config = FIGCacheConfig(
            segment_blocks=knobs.segment_blocks,
            cache_rows_per_bank=knobs.cache_rows_per_bank,
            placement=placement,
            replacement_policy=knobs.replacement_policy,
            insertion_threshold=knobs.insertion_threshold)
        return dram, figcache_config, None
    return prepare


def _base_mechanism(config: "SystemConfig") -> CachingMechanism:
    del config
    return BaseMechanism()


def _lisa_villa_mechanism(config: "SystemConfig") -> CachingMechanism:
    return LISAVillaMechanism(config.dram, config.lisa_villa)


def _figcache_mechanism(config: "SystemConfig") -> CachingMechanism:
    return FIGCache(config.dram, config.figcache)


register_configuration(
    "Base", _base_mechanism,
    description="conventional DRAM, no in-DRAM cache")
register_configuration(
    "LISA-VILLA", _lisa_villa_mechanism, _prepare_lisa_villa,
    description="LISA row-granularity in-DRAM cache baseline")
register_configuration(
    "FIGCache-Slow", _figcache_mechanism, _prepare_figcache("slow"),
    description="FIGCache with cache rows in normal (slow) subarrays")
register_configuration(
    "FIGCache-Fast", _figcache_mechanism, _prepare_figcache("fast"),
    description="FIGCache with cache rows in fast subarrays")
register_configuration(
    "FIGCache-Ideal", _figcache_mechanism, _prepare_figcache("ideal"),
    description="FIGCache with idealised placement")
register_configuration(
    "LL-DRAM", _base_mechanism, _prepare_ll_dram,
    description="every subarray fast, no caching (latency upper bound)")

#: Names of the built-in configurations, in presentation order — derived
#: from the registry at import (a snapshot, mirroring
#: ``standards.STANDARD_NAMES``; consumers that must see
#: runtime-registered configurations too should call
#: :func:`configuration_names` instead).
CONFIGURATION_NAMES = configuration_names()


@dataclass(frozen=True)
class SystemConfig:
    """Everything needed to build one simulated system."""

    #: Configuration name (a :data:`MECHANISM_REGISTRY` key).
    name: str
    #: DRAM organization (includes fast subarray layout).
    dram: DRAMConfig
    #: Core front-end and cache hierarchy configuration.
    core: CoreConfig = field(default_factory=CoreConfig)
    #: Memory controller queue/scheduling configuration.
    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    #: FIGCache configuration (only used by FIGCache-* systems).
    figcache: FIGCacheConfig | None = None
    #: LISA-VILLA configuration (only used by the LISA-VILLA system).
    lisa_villa: LISAVillaConfig | None = None
    #: Enable DRAM refresh (tREFI/tRFC).
    refresh_enabled: bool = True
    #: Track per-row activation counts (RowHammer-style analysis only).
    track_row_activations: bool = False
    #: Device-catalog standard the DRAM organization was built from (see
    #: :mod:`repro.dram.standards`).  Redundant with ``dram.standard`` but
    #: kept at the top level so sweeps and cache keys read naturally.
    standard: str = "DDR4-1600"
    #: Per-standard DRAM energy parameters from the device profile; None
    #: falls back to the base DDR4 table.
    dram_energy: DRAMEnergyParams | None = None
    #: Telemetry collection (latency distributions + epoch time series);
    #: None (the default) keeps telemetry off.  Collection is pure
    #: observation, so this knob never changes simulated results — but it
    #: changes what the result *contains*, which is why it is part of the
    #: configuration (and thus of the experiment engine's cache key).
    telemetry: TelemetryConfig | None = None
    #: Simulation backend (a :data:`repro.sim.backend.BACKEND_REGISTRY`
    #: key); None defers to the ``REPRO_SIM_BACKEND`` environment variable
    #: and then the default (``"python"``).  Backends are bit-identical by
    #: contract, so this field is *excluded* from :func:`config_digest` —
    #: same physics, same cache key.
    backend: str | None = None


def config_digest(config: SystemConfig) -> str:
    """Stable content hash of a fully-built system configuration.

    Every field of the configuration (including the nested DRAM organization,
    timings, core, scheduler, and mechanism configs) contributes to the
    digest, so any knob that changes simulated behaviour changes the hash.
    The experiment engine uses this as part of its persistent cache key.

    The one exception is the simulation ``backend``: backends are
    bit-identical by contract (enforced against ``tests/golden/``), so the
    digest deliberately ignores it — results computed by one backend are
    valid cache hits for another.
    """
    fields = asdict(config)
    fields.pop("backend", None)
    payload = json.dumps(fields, sort_keys=True,
                         separators=(",", ":"), default=str)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _registry_spec(name: str) -> ConfigurationSpec:
    spec = MECHANISM_REGISTRY.get(name)
    if spec is None:
        raise ValueError(f"unknown configuration {name!r}; choose one of "
                         f"{configuration_names()}")
    return spec


def make_mechanism(config: SystemConfig) -> list[CachingMechanism]:
    """Instantiate one caching-mechanism object per channel."""
    spec = _registry_spec(config.name)
    return [spec.mechanism_factory(config)
            for _ in range(config.dram.channels)]


def make_system_config(name: str, channels: int = 1,
                       core: CoreConfig | None = None,
                       segment_blocks: int = 16,
                       cache_rows_per_bank: int = 64,
                       fast_subarrays: int = 2,
                       replacement_policy: str = "RowBenefit",
                       insertion_threshold: int = 1,
                       refresh_enabled: bool = True,
                       track_row_activations: bool = False,
                       standard: str = "DDR4-1600",
                       telemetry: bool = False,
                       telemetry_epoch_cycles: int = DEFAULT_EPOCH_CYCLES,
                       dram_overrides: dict | None = None,
                       backend: str | None = None) -> SystemConfig:
    """Build the named configuration (paper Section 8).

    Parameters other than ``name`` and ``channels`` are the sensitivity
    knobs used by the Figure 12–15 studies; the defaults reproduce the
    paper's Table 1 configuration.  ``standard`` selects a device-catalog
    profile (:mod:`repro.dram.standards`) — organization, timing table,
    refresh mode, and energy parameters — with ``"DDR4-1600"`` being
    bit-identical to the historical defaults.  ``telemetry=True`` attaches
    a :class:`~repro.sim.telemetry.TelemetryConfig` sampling every
    ``telemetry_epoch_cycles`` cycles; telemetry never changes simulated
    results, only what the result reports.  ``backend`` selects the
    simulation event core (:mod:`repro.sim.backend`); backends never change
    simulated results, only how fast they are produced.
    """
    spec = _registry_spec(name)
    core = core or CoreConfig()
    profile = get_profile(standard)
    dram = DRAMConfig.from_profile(profile, channels=channels)
    if dram_overrides:
        dram = replace(dram, **dram_overrides)

    figcache_config: FIGCacheConfig | None = None
    lisa_config: LISAVillaConfig | None = None
    if spec.prepare is not None:
        knobs = MechanismKnobs(segment_blocks=segment_blocks,
                               cache_rows_per_bank=cache_rows_per_bank,
                               fast_subarrays=fast_subarrays,
                               replacement_policy=replacement_policy,
                               insertion_threshold=insertion_threshold)
        dram, figcache_config, lisa_config = spec.prepare(dram, knobs)

    telemetry_config = TelemetryConfig(epoch_cycles=telemetry_epoch_cycles) \
        if telemetry else None
    return SystemConfig(name=name, dram=dram, core=core,
                        figcache=figcache_config, lisa_villa=lisa_config,
                        refresh_enabled=refresh_enabled,
                        track_row_activations=track_row_activations,
                        standard=standard, dram_energy=profile.energy,
                        telemetry=telemetry_config, backend=backend)
