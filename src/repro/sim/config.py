"""System configuration: the evaluated mechanisms and their DRAM setups.

The paper evaluates six configurations (Section 8): Base, LISA-VILLA,
FIGCache-Slow, FIGCache-Fast, FIGCache-Ideal, and LL-DRAM.  Each one is a
combination of a DRAM organization (how many fast subarrays exist, whether
every subarray is fast) and a caching mechanism (none, LISA-VILLA row
caching, or FIGCache with a placement option).  :func:`make_system_config`
builds the right combination by name.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, replace

from repro.baselines.base import BaseMechanism
from repro.baselines.lisa_villa import LISAVillaConfig, LISAVillaMechanism
from repro.controller.scheduler import SchedulerConfig
from repro.core.figcache import FIGCache, FIGCacheConfig
from repro.core.mechanism import CachingMechanism
from repro.cpu.core import CoreConfig
from repro.dram.config import DRAMConfig
from repro.dram.standards import get_profile
from repro.energy.dram_power import DRAMEnergyParams

#: Names of the configurations evaluated in the paper, in presentation order.
CONFIGURATION_NAMES = (
    "Base",
    "LISA-VILLA",
    "FIGCache-Slow",
    "FIGCache-Fast",
    "FIGCache-Ideal",
    "LL-DRAM",
)


@dataclass(frozen=True)
class SystemConfig:
    """Everything needed to build one simulated system."""

    #: Configuration name (one of :data:`CONFIGURATION_NAMES`).
    name: str
    #: DRAM organization (includes fast subarray layout).
    dram: DRAMConfig
    #: Core front-end and cache hierarchy configuration.
    core: CoreConfig = field(default_factory=CoreConfig)
    #: Memory controller queue/scheduling configuration.
    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    #: FIGCache configuration (only used by FIGCache-* systems).
    figcache: FIGCacheConfig | None = None
    #: LISA-VILLA configuration (only used by the LISA-VILLA system).
    lisa_villa: LISAVillaConfig | None = None
    #: Enable DRAM refresh (tREFI/tRFC).
    refresh_enabled: bool = True
    #: Track per-row activation counts (RowHammer-style analysis only).
    track_row_activations: bool = False
    #: Device-catalog standard the DRAM organization was built from (see
    #: :mod:`repro.dram.standards`).  Redundant with ``dram.standard`` but
    #: kept at the top level so sweeps and cache keys read naturally.
    standard: str = "DDR4-1600"
    #: Per-standard DRAM energy parameters from the device profile; None
    #: falls back to the base DDR4 table.
    dram_energy: DRAMEnergyParams | None = None


def config_digest(config: SystemConfig) -> str:
    """Stable content hash of a fully-built system configuration.

    Every field of the configuration (including the nested DRAM organization,
    timings, core, scheduler, and mechanism configs) contributes to the
    digest, so any knob that changes simulated behaviour changes the hash.
    The experiment engine uses this as part of its persistent cache key.
    """
    payload = json.dumps(asdict(config), sort_keys=True,
                         separators=(",", ":"), default=str)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def make_mechanism(config: SystemConfig) -> list[CachingMechanism]:
    """Instantiate one caching-mechanism object per channel."""
    mechanisms: list[CachingMechanism] = []
    for _ in range(config.dram.channels):
        if config.name in ("Base", "LL-DRAM"):
            mechanisms.append(BaseMechanism())
        elif config.name == "LISA-VILLA":
            mechanisms.append(LISAVillaMechanism(config.dram,
                                                 config.lisa_villa))
        elif config.name.startswith("FIGCache"):
            mechanisms.append(FIGCache(config.dram, config.figcache))
        else:
            raise ValueError(f"unknown configuration name {config.name!r}")
    return mechanisms


def make_system_config(name: str, channels: int = 1,
                       core: CoreConfig | None = None,
                       segment_blocks: int = 16,
                       cache_rows_per_bank: int = 64,
                       fast_subarrays: int = 2,
                       replacement_policy: str = "RowBenefit",
                       insertion_threshold: int = 1,
                       refresh_enabled: bool = True,
                       track_row_activations: bool = False,
                       standard: str = "DDR4-1600",
                       dram_overrides: dict | None = None) -> SystemConfig:
    """Build the named configuration (paper Section 8).

    Parameters other than ``name`` and ``channels`` are the sensitivity
    knobs used by the Figure 12–15 studies; the defaults reproduce the
    paper's Table 1 configuration.  ``standard`` selects a device-catalog
    profile (:mod:`repro.dram.standards`) — organization, timing table,
    refresh mode, and energy parameters — with ``"DDR4-1600"`` being
    bit-identical to the historical defaults.
    """
    if name not in CONFIGURATION_NAMES:
        raise ValueError(f"unknown configuration {name!r}; choose one of "
                         f"{CONFIGURATION_NAMES}")
    core = core or CoreConfig()
    profile = get_profile(standard)
    dram = DRAMConfig.from_profile(profile, channels=channels)
    if dram_overrides:
        dram = replace(dram, **dram_overrides)

    figcache_config: FIGCacheConfig | None = None
    lisa_config: LISAVillaConfig | None = None

    if name == "Base":
        pass
    elif name == "LL-DRAM":
        dram = replace(dram, all_subarrays_fast=True)
    elif name == "LISA-VILLA":
        lisa_config = LISAVillaConfig()
        dram = replace(dram,
                       fast_subarrays_per_bank=lisa_config.fast_subarrays_per_bank,
                       rows_per_fast_subarray=32)
    elif name == "FIGCache-Slow":
        figcache_config = FIGCacheConfig(
            segment_blocks=segment_blocks,
            cache_rows_per_bank=cache_rows_per_bank,
            placement="slow",
            replacement_policy=replacement_policy,
            insertion_threshold=insertion_threshold)
    elif name in ("FIGCache-Fast", "FIGCache-Ideal"):
        rows_per_fast = 32
        needed_fast_subarrays = max(
            fast_subarrays,
            -(-cache_rows_per_bank // rows_per_fast))  # ceiling division
        dram = replace(dram, fast_subarrays_per_bank=needed_fast_subarrays,
                       rows_per_fast_subarray=rows_per_fast)
        figcache_config = FIGCacheConfig(
            segment_blocks=segment_blocks,
            cache_rows_per_bank=cache_rows_per_bank,
            placement="fast" if name == "FIGCache-Fast" else "ideal",
            replacement_policy=replacement_policy,
            insertion_threshold=insertion_threshold)

    return SystemConfig(name=name, dram=dram, core=core,
                        figcache=figcache_config, lisa_villa=lisa_config,
                        refresh_enabled=refresh_enabled,
                        track_row_activations=track_row_activations,
                        standard=standard, dram_energy=profile.energy)
