"""Pluggable simulation backends.

The event core that advances a simulation is a *backend*: an object with
the same contract as :class:`~repro.sim.simulator.Simulator` (``run()``
plus a ``processed_events`` attribute), selected by name at
:meth:`System.run <repro.sim.system.System.run>` time.  Two backends ship
with the repository:

* ``"python"`` — the reference event loop in :mod:`repro.sim.simulator`
  (the default; unchanged behaviour).
* ``"turbo"`` — the accelerated core in :mod:`repro.sim.turbo`:
  stream-merged calendar event scheduling, precompiled flat timing tables,
  and request freelists.  Bit-identical results, substantially faster.

Selection precedence: an explicit ``SystemConfig.backend`` wins; otherwise
the ``REPRO_SIM_BACKEND`` environment variable; otherwise
:data:`DEFAULT_BACKEND`.  The environment hook exists so whole test and CI
runs can be flipped to another backend without touching configs — and it
propagates to the experiment engine's worker processes for free.

Backends are *physics-neutral* by contract: every backend must produce
bit-identical :meth:`SimulationResult.to_dict` output for the same
configuration and traces (enforced by ``tests/test_backend.py`` against
the pinned golden fixtures).  Because the backend never changes simulated
results, it is deliberately **excluded** from
:func:`repro.sim.config.config_digest` — the experiment engine's cache key
— so results computed by one backend are valid cache hits for another.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable

#: Environment variable consulted when ``SystemConfig.backend`` is unset.
BACKEND_ENV_VAR = "REPRO_SIM_BACKEND"

#: Backend used when neither the config nor the environment selects one.
DEFAULT_BACKEND = "python"


@dataclass(frozen=True)
class SimulationBackend:
    """One registered simulation backend.

    ``factory(cores, controller, limits, telemetry)`` builds a simulator
    object exposing ``run() -> int`` (final core finish cycle) and an
    integer ``processed_events`` attribute, exactly like
    :class:`~repro.sim.simulator.Simulator`.
    """

    name: str
    factory: Callable
    description: str = ""

    def create(self, cores, controller, limits=None, telemetry=None):
        """Instantiate this backend's simulator for one run."""
        return self.factory(cores, controller, limits, telemetry=telemetry)


#: Registered backends by name, in registration order.
BACKEND_REGISTRY: dict[str, SimulationBackend] = {}


def register_backend(name: str, factory: Callable,
                     description: str = "") -> SimulationBackend:
    """Register a simulation backend (extension point).

    Mirrors :func:`repro.sim.config.register_configuration`: after
    registration the backend is selectable by name through
    ``SystemConfig.backend`` or :data:`BACKEND_ENV_VAR`.  Re-registering
    an existing name is rejected so backend identities stay stable.
    """
    if name in BACKEND_REGISTRY:
        raise ValueError(f"backend {name!r} is already registered")
    spec = SimulationBackend(name=name, factory=factory,
                             description=description)
    BACKEND_REGISTRY[name] = spec
    return spec


def backend_names() -> tuple[str, ...]:
    """Every registered backend name, in registration order."""
    return tuple(BACKEND_REGISTRY)


def resolve_backend(name: str | None = None) -> SimulationBackend:
    """Resolve a backend by name, environment, or default (in that order).

    ``name=None`` consults :data:`BACKEND_ENV_VAR`; an empty environment
    value falls through to :data:`DEFAULT_BACKEND`.  Unknown names raise a
    ``ValueError`` listing the registered choices.
    """
    if name is None:
        name = os.environ.get(BACKEND_ENV_VAR) or DEFAULT_BACKEND
    spec = BACKEND_REGISTRY.get(name)
    if spec is None:
        raise ValueError(f"unknown simulation backend {name!r}; choose one "
                         f"of {backend_names()}")
    return spec


def backend_build_info(name: str | None = None) -> dict:
    """How the resolved backend's code executes: interpreted or compiled.

    ``compiled`` is True when the turbo backend's modules were imported
    from ahead-of-time compiled extensions (the optional ``[aot]`` build
    — see ``setup.py`` and docs/performance.md); pure-Python imports
    report False, as does the reference backend.  Bench reports record
    this flag so pinned numbers are attributable to a build mode.
    """
    spec = resolve_backend(name)
    compiled = False
    if spec.name == "turbo":
        from repro.sim import turbo
        compiled = turbo.__file__.endswith((".so", ".pyd"))
    return {"backend": spec.name, "compiled": compiled}


# ----------------------------------------------------------------------
# Built-in backends.
# ----------------------------------------------------------------------
def _python_factory(cores, controller, limits=None, telemetry=None):
    from repro.sim.simulator import Simulator
    return Simulator(cores, controller, limits, telemetry=telemetry)


def _turbo_factory(cores, controller, limits=None, telemetry=None):
    from repro.sim.turbo import TurboSimulator
    return TurboSimulator(cores, controller, limits, telemetry=telemetry)


register_backend(
    "python", _python_factory,
    description="reference event loop (repro.sim.simulator)")
register_backend(
    "turbo", _turbo_factory,
    description="batch-stepped calendar event core with precompiled "
                "timing tables (repro.sim.turbo); bit-identical, faster")
